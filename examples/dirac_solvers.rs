//! The §4 benchmark suite: CG solves with all four fermion
//! discretizations on one gauge configuration, with residual histories,
//! flop ledgers, and the sustained-efficiency table (experiment E1).
//!
//! ```text
//! cargo run --release --example dirac_solvers
//! ```

use qcdoc::core::perf::{DiracPerf, Precision, PAPER_EFFICIENCIES};
use qcdoc::lattice::clover::CloverDirac;
use qcdoc::lattice::counts::{operator_counts, Action};
use qcdoc::lattice::dwf::{DwfDirac, DwfField};
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice, StaggeredField};
use qcdoc::lattice::gauge::{average_plaquette, evolve, EvolveParams};
use qcdoc::lattice::solver::{solve_cgne, CgParams, CgReport};
use qcdoc::lattice::staggered::{AsqtadCoeffs, AsqtadDirac, AsqtadLinks, StaggeredDirac};
use qcdoc::lattice::wilson::WilsonDirac;

fn show(report: &CgReport) {
    let first = report.residuals.first().copied().unwrap_or(1.0);
    println!(
        "  {:<10} {:>5} iterations, residual {:.2e} -> {:.2e}, {} operator applications",
        report.operator,
        report.iterations,
        first,
        report.final_residual,
        report.operator_applications
    );
}

fn main() {
    // A mildly thermalized quenched configuration (not free field, not
    // random noise).
    let lat = Lattice::new([4, 4, 4, 4]);
    let mut gauge = GaugeField::hot(lat, 1);
    evolve(&mut gauge, EvolveParams::default(), 11, 5);
    println!(
        "configuration: 4^4 quenched, beta = 5.7, plaquette = {:.4}\n",
        average_plaquette(&gauge)
    );

    let params = CgParams {
        tolerance: 1e-8,
        max_iterations: 4000,
    };

    println!("CG on the normal equations, double precision:");
    // Naive Wilson.
    let wilson = WilsonDirac::new(&gauge, 0.12);
    let b = FermionField::gaussian(lat, 100);
    let mut x = FermionField::zero(lat);
    show(&solve_cgne(&wilson, &mut x, &b, params));

    // Clover-improved Wilson.
    let clover = CloverDirac::new(&gauge, 0.12, 1.0);
    let mut x = FermionField::zero(lat);
    show(&solve_cgne(&clover, &mut x, &b, params));

    // Naive staggered and ASQTAD.
    let bs = StaggeredField::gaussian(lat, 101);
    let stag = StaggeredDirac::new(&gauge, 0.1);
    let mut xs = StaggeredField::zero(lat);
    show(&solve_cgne(&stag, &mut xs, &bs, params));

    let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
    let asqtad = AsqtadDirac::new(&links, 0.1);
    let mut xs = StaggeredField::zero(lat);
    show(&solve_cgne(&asqtad, &mut xs, &bs, params));

    // Domain wall fermions (Ls = 8).
    let dwf = DwfDirac::new(&gauge, 1.8, 0.1, 8);
    let bd = DwfField::gaussian(lat, 8, 102);
    let mut xd = DwfField::zero(lat, 8);
    show(&solve_cgne(&dwf, &mut xd, &bd, params));

    // Per-site operation ledgers (the machine model's inputs).
    println!("\nper-site operation ledgers (one operator application):");
    println!(
        "  {:<10} {:>7} {:>12} {:>10} {:>6}",
        "action", "flops", "bytes", "face B", "halo"
    );
    for action in [
        Action::Wilson,
        Action::Clover,
        Action::Staggered,
        Action::Asqtad,
        Action::Dwf { ls: 8 },
    ] {
        let c = operator_counts(action);
        println!(
            "  {:<10} {:>7} {:>12} {:>10} {:>6}",
            action.name(),
            c.flops,
            c.read_bytes + c.write_bytes,
            c.face_bytes,
            c.halo_depth
        );
    }

    // The paper's efficiency table (E1).
    println!("\nsustained efficiency model (128 nodes, 4^4 local volume, 450 MHz, double):");
    let perf = DiracPerf::paper_bench();
    print!("{}", perf.render_table());
    println!("paper (§4): Wilson 40%, ASQTAD 38%, clover 46.5%");
    for (action, paper) in PAPER_EFFICIENCIES {
        let got = perf.evaluate(action).efficiency;
        println!(
            "  {:<10} model {:>5.1}%  paper {:>5.1}%  (delta {:+.1} pp)",
            action.name(),
            100.0 * got,
            100.0 * paper,
            100.0 * (got - paper)
        );
    }

    // Single precision is "slightly higher" (§4).
    let mut sp = DiracPerf::paper_bench();
    sp.precision = Precision::Single;
    println!(
        "\nsingle precision Wilson: {:.1}% (double: {:.1}%) — \"slightly higher\" per §4",
        100.0 * sp.evaluate(Action::Wilson).efficiency,
        100.0 * DiracPerf::paper_bench().evaluate(Action::Wilson).efficiency
    );
}
