//! Chaos soak: the autonomic failure-management loop under sustained fire.
//!
//! Runs the seeded chaos harness — a multi-tenant job mix with dead
//! links, node crashes, wedges, machine checks, link corruption and
//! storage faults all striking on schedule while the scheduler
//! checkpoints, requeues and the repair pipeline returns nodes to
//! service — and prints the machine-level report: losses (must be zero),
//! bit-identity of the tracked CG solves, goodput, requeue latency and
//! end-of-soak capacity.
//!
//! ```text
//! cargo run --release --example chaos_soak [seed] [fault_period] [soak_ticks]
//! cargo run --release --example chaos_soak --curve   # E17 goodput curve
//! ```

use qcdoc::host::{run_chaos, ChaosConfig};

fn print_report(cfg: &ChaosConfig, report: &qcdoc::host::ChaosReport) {
    println!(
        "chaos soak: seed {}, machine {} ({} nodes), {} jobs + {} tracked solves",
        cfg.seed, cfg.machine, report.node_count, cfg.jobs, cfg.tracked_solves
    );
    println!(
        "fire:      {} machine strikes, {} storage strikes ({} checkpoint writes failed)",
        report.failures_injected, report.storage_faults_injected, report.storage_failures
    );
    println!(
        "requeue:   {} requeues, latency p50/p99 {}/{} ticks",
        report.requeues,
        report.requeue_latency.quantile(0.50),
        report.requeue_latency.p99()
    );
    println!(
        "repair:    {} nodes returned to service, {} blacklisted lemons",
        report.repaired, report.blacklisted
    );
    println!(
        "outcome:   {} completed, {} lost, drained={}, {} ticks",
        report.completed, report.lost, report.drained, report.clock
    );
    println!(
        "solves:    {}/{} tracked CG solves bit-identical to the fault-free reference",
        report.tracked_matches, report.tracked_total
    );
    println!(
        "machine:   goodput {:.1}%, end capacity {}/{} nodes ({:.1}%)",
        100.0 * report.goodput,
        report.capacity_end,
        report.node_count,
        100.0 * report.capacity_ratio()
    );
    if let Some(resumed) = report.restart_log_resumed {
        println!("restart:   qdaemon killed mid-soak, event log resumed = {resumed}");
    }
    println!(
        "history:   {} events, digest {:#018x}",
        report.event_count, report.event_digest
    );
}

/// E17's measured curve: goodput and losses as the strike rate rises.
fn curve() {
    println!(
        "{:>12} {:>8} {:>9} {:>5} {:>9} {:>10} {:>9}",
        "fault_period", "strikes", "requeues", "lost", "goodput", "blacklisted", "capacity"
    );
    for fault_period in [29, 23, 17, 11, 7] {
        let cfg = ChaosConfig {
            fault_period,
            ..ChaosConfig::default()
        };
        let report = run_chaos(cfg);
        println!(
            "{:>12} {:>8} {:>9} {:>5} {:>8.1}% {:>10} {:>8.1}%",
            fault_period,
            report.failures_injected + report.storage_faults_injected,
            report.requeues,
            report.lost,
            100.0 * report.goodput,
            report.blacklisted,
            100.0 * report.capacity_ratio()
        );
        assert_eq!(report.lost, 0, "a lost job is a failed experiment");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--curve") {
        curve();
        return;
    }
    let mut cfg = ChaosConfig::default();
    if let Some(seed) = args.first().and_then(|a| a.parse().ok()) {
        cfg.seed = seed;
    }
    if let Some(period) = args.get(1).and_then(|a| a.parse().ok()) {
        cfg.fault_period = period;
    }
    if let Some(ticks) = args.get(2).and_then(|a| a.parse().ok()) {
        cfg.soak_ticks = ticks;
    }
    let report = run_chaos(cfg.clone());
    print_report(&cfg, &report);
    assert_eq!(report.lost, 0, "a lost job is a failed soak");
}
