//! Chrome-trace of one distributed CG solve.
//!
//! Runs the distributed Wilson CG on a four-node functional machine with
//! telemetry enabled, then writes `trace_dslash.json` — a Chrome tracing
//! file (load it at `chrome://tracing` or <https://ui.perfetto.dev>) in
//! which every Dslash application decomposes into the §4 efficiency
//! terms: a `dslash.compute` span, an `scu.complete` comms span for the
//! face exchange, and `comm.global_sum` spans for the CG inner products.
//!
//! ```text
//! cargo run --release --example trace_dslash
//! ```

use qcdoc::core::distributed::{wilson_solve_cg, BlockGeom};
use qcdoc::core::functional::{FunctionalMachine, TelemetryConfig};
use qcdoc::geometry::TorusShape;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::telemetry::Phase;

fn main() {
    let global = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::hot(global, 314);
    let b = FermionField::gaussian(global, 315);
    let machine =
        FunctionalMachine::new(TorusShape::new(&[2, 2])).with_telemetry(TelemetryConfig::default());
    let (reports, _ledger, telemetry) = machine.run_with_telemetry(|ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        let (_, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.12, 1e-8, 2000);
        report
    });
    let report = &reports[0];
    println!(
        "distributed CG on 4 nodes: {} iterations, residual {:.3e}, converged={}",
        report.iterations, report.final_residual, report.converged
    );

    // The §4 decomposition, straight from the depth-0 spans.
    let phases = telemetry.phase_summary();
    let total: u64 = phases.iter().map(|&(_, _, c)| c).sum();
    println!(
        "\n{:>12}  {:>8}  {:>14}  {:>7}",
        "phase", "spans", "cycles", "share"
    );
    for (phase, spans, cycles) in &phases {
        println!(
            "{:>12}  {:>8}  {:>14}  {:>6.1}%",
            phase.name(),
            spans,
            cycles,
            100.0 * *cycles as f64 / total.max(1) as f64
        );
    }
    let compute: u64 = phases
        .iter()
        .filter(|(p, _, _)| *p == Phase::Compute)
        .map(|&(_, _, c)| c)
        .sum();
    println!(
        "\ncompute efficiency on the telemetry clock: {:.1}%",
        100.0 * compute as f64 / total.max(1) as f64
    );

    let trace = telemetry.chrome_trace();
    let path = std::path::Path::new("target").join("trace_dslash.json");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write(&path, &trace).expect("write target/trace_dslash.json");
    println!(
        "wrote {} ({} bytes, {} spans) — open in chrome://tracing",
        path.display(),
        trace.len(),
        telemetry.spans.len()
    );
}
