//! Quickstart: boot a 64-node QCDOC, carve a 4-D partition, run a Wilson
//! CG solve on the functional machine, and print the performance report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qcdoc::core::comm::global_sum_f64;
use qcdoc::core::distributed::{wilson_solve_cg, BlockGeom};
use qcdoc::core::functional::FunctionalMachine;
use qcdoc::core::perf::DiracPerf;
use qcdoc::geometry::{PartitionSpec, TorusShape};
use qcdoc::host::qdaemon::Qdaemon;
use qcdoc::lattice::counts::Action;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};

fn main() {
    // --- 1. Boot the machine through the qdaemon (Ethernet/JTAG path).
    let machine_shape = TorusShape::motherboard_64(); // 2^6 hypercube
    let mut qdaemon = Qdaemon::new(machine_shape.clone());
    let boot = qdaemon.boot(&[]);
    println!(
        "booted {} nodes with {} UDP packets ({} per node), est. {:.2} s",
        boot.booted,
        boot.packets_sent,
        boot.packets_sent / boot.booted as u64,
        boot.boot_seconds
    );

    // --- 2. Remap the native 6-D mesh to a 4-D machine in software.
    let spec = PartitionSpec::whole_machine(&machine_shape, &[&[0], &[1], &[2], &[3, 4, 5]]);
    let id = qdaemon.allocate(spec).expect("partition allocation");
    let logical = qdaemon.partition(id).unwrap().logical_shape().clone();
    println!("partition {id}: logical machine {logical} (dilation 1, no cables moved)");

    // --- 3. Run a distributed Wilson solve on a small functional machine
    //        (thread-per-node engine, real SCU link protocol). 16 nodes keeps the
    //        demo quick; the protocol path is identical at any size.
    let demo_shape = TorusShape::new(&[2, 2, 2, 2]);
    let global = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::hot(global, 2004);
    let b = FermionField::gaussian(global, 7);
    println!(
        "\nsolving M x = b (Wilson, kappa = 0.12) on a {} functional machine, lattice 4^4 ...",
        demo_shape
    );
    let machine = FunctionalMachine::new(demo_shape);
    let results = machine.run(|ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        let (x, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.12, 1e-8, 2000);
        let local_norm: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        let global_norm = global_sum_f64(ctx, local_norm);
        (report, global_norm)
    });
    let (report, norm) = &results[0];
    println!(
        "CG converged: {} iterations, final residual {:.2e}, |x|^2 = {:.6}, link errors: {}",
        report.iterations, report.final_residual, norm, report.link_errors
    );

    // --- 4. The paper's §4 performance table from the calibrated model.
    println!("\nprojected sustained efficiency (128 nodes, 4^4 local volume, 450 MHz):");
    let perf = DiracPerf::paper_bench();
    print!("{}", perf.render_table());
    let wilson = perf.evaluate(Action::Wilson);
    println!(
        "Wilson CG: {:.1} Gflops/node sustained, {:.1} us per iteration",
        wilson.sustained_gflops_per_node, wilson.iteration_us
    );
}
