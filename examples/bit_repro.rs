//! Bit-reproducibility (experiment E7) — the paper's §4 verification run,
//! in miniature: "A five day simulation was completed on a 128 node
//! machine in December, 2003 and then redone, with the requirement that
//! the resulting QCD configuration be identical in all bits. This was
//! found to be the case. No hardware errors on the SCU links were
//! reported."
//!
//! We go one step further: the second run injects bit errors on the mesh
//! links; the SCU's automatic parity-resend heals them, so the physics is
//! *still* identical in all bits while the hardware status reports the
//! faults.
//!
//! ```text
//! cargo run --release --example bit_repro
//! ```

use qcdoc::core::distributed::{block_fingerprint, wilson_solve_cg, BlockGeom};
use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine};
use qcdoc::geometry::TorusShape;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::lattice::gauge::{average_plaquette, evolve, EvolveParams};

fn main() {
    // --- Part 1: the gauge evolution rerun (the paper's actual test).
    let lat = Lattice::new([4, 4, 4, 4]);
    println!("evolving a 4^4 quenched configuration twice from the same seed ...");
    let mut first = GaugeField::hot(lat, 2003);
    let h1 = evolve(&mut first, EvolveParams::default(), 12, 10);
    let mut second = GaugeField::hot(lat, 2003);
    let h2 = evolve(&mut second, EvolveParams::default(), 12, 10);
    assert_eq!(first.fingerprint(), second.fingerprint());
    println!(
        "  run 1 fingerprint {:016x}\n  run 2 fingerprint {:016x}  -> identical in all bits",
        first.fingerprint(),
        second.fingerprint()
    );
    println!(
        "  plaquette history: {:.4} -> {:.4} (both runs bit-identical)\n",
        h1[0],
        h2.last().unwrap()
    );

    // --- Part 2: a distributed solve, rerun with injected link errors.
    let global = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(global, 99);
    let b = FermionField::gaussian(global, 98);
    println!(
        "distributed Wilson CG on a 2x2 functional machine (plaquette {:.4}) ...",
        average_plaquette(&gauge)
    );

    let solve = |plan: FaultPlan| {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2])).with_faults(plan);
        machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.12, 1e-8, 2000);
            (block_fingerprint(&x), report.iterations, report.link_errors)
        })
    };

    let clean = solve(FaultPlan::default());
    let noisy = solve(
        FaultPlan::new(2003)
            .with_event(FaultEvent::bit_flip(0, 0, 5, 13))
            .with_event(FaultEvent::bit_flip(1, 2, 40, 60))
            .with_event(FaultEvent::bit_flip(3, 1, 100, 7)),
    );

    let clean_errors: u64 = clean.iter().map(|r| r.2).sum();
    let noisy_errors: u64 = noisy.iter().map(|r| r.2).sum();
    println!(
        "  clean run : {} iterations, {} link errors",
        clean[0].1, clean_errors
    );
    println!(
        "  faulty run: {} iterations, {} link errors (injected 3 bit flips)",
        noisy[0].1, noisy_errors
    );

    for (node, (c, n)) in clean.iter().zip(&noisy).enumerate() {
        assert_eq!(c.0, n.0, "node {node} solution diverged under faults");
        assert_eq!(c.1, n.1, "iteration counts diverged");
    }
    println!(
        "  solutions identical in all bits on every node — the hardware resend made\n  \
         the corruption invisible to the physics, exactly as §2.2 promises."
    );
    assert!(noisy_errors >= 3);
}
