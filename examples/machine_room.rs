//! The machine room: assemble the 4096-node Columbia QCDOC, print the
//! packaging tree (Figures 3–5), the network schematic (Figure 2), the
//! itemized purchase-order cost, and the price/performance table
//! (experiments E3, E11, F2–F5).
//!
//! ```text
//! cargo run --release --example machine_room [--schematic]
//! ```

use qcdoc::machine::catalog;
use qcdoc::machine::cost::{columbia_4096, CostModel, PricePerformance, PAPER_PRICE_PERF};
use qcdoc::machine::packaging::MachineAssembly;
use qcdoc::machine::schematic;

fn main() {
    let schematic_only = std::env::args().any(|a| a == "--schematic");

    let spec = catalog::by_name("columbia-4096").expect("catalog entry");
    println!(
        "=== {} ({} nodes, native mesh {}) ===\n",
        spec.name, spec.nodes, spec.shape
    );

    if schematic_only {
        print!("{}", schematic::render(&spec.shape));
        return;
    }

    // Packaging (Figures 3-5).
    let assembly = MachineAssembly::new(spec.nodes);
    print!("{}", assembly.render_tree());

    // Network schematic (Figure 2) for one motherboard's worth.
    println!();
    print!(
        "{}",
        schematic::render(&qcdoc::geometry::TorusShape::motherboard_64())
    );

    // Cost (the §4 purchase orders).
    println!("\n=== itemized cost (Columbia purchase orders, §4) ===");
    let breakdown = CostModel::default().breakdown(&assembly);
    print!("{}", breakdown.render());
    println!(
        "paper quotes: hardware ${:.0}, with prorated R&D ${:.0}",
        columbia_4096::QUOTED_TOTAL,
        columbia_4096::QUOTED_TOTAL_WITH_RND
    );

    // Price/performance at the three §4 operating points.
    println!("\n=== price/performance (45% sustained CG efficiency) ===");
    println!(
        "{:>8} {:>16} {:>12} {:>10}",
        "clock", "sustained MF", "$ / MF", "paper"
    );
    for (clock, paper) in PAPER_PRICE_PERF {
        let pp = PricePerformance {
            clock_mhz: clock,
            efficiency: 0.45,
            total_cost: breakdown.total(),
            nodes: spec.nodes,
        };
        println!(
            "{:>5} MHz {:>16.0} {:>12.3} {:>10.2}",
            clock,
            pp.sustained_mflops(),
            pp.dollars_per_mflops(),
            paper
        );
    }

    // The 12,288-node projection (§4: volume discount -> ~$1/MF).
    println!("\n=== 12,288-node projection (7% volume discount on boards) ===");
    let big = MachineAssembly::new(12_288);
    let model = CostModel {
        volume_discount: 0.93,
        ..Default::default()
    };
    let b = model.breakdown(&big);
    let pp = PricePerformance {
        clock_mhz: 450.0,
        efficiency: 0.45,
        total_cost: b.total(),
        nodes: big.nodes,
    };
    println!(
        "{} nodes: total ${:.0}, sustained {:.1} Tflops-equivalent, ${:.3}/MF (target: ~$1)",
        big.nodes,
        b.total(),
        pp.sustained_mflops() / 1e6,
        pp.dollars_per_mflops()
    );

    // Power and floor space for the full installation.
    println!(
        "\npower: {:.1} kW; footprint: {:.0} ft²; peak {:.2} Tflops at 500 MHz",
        big.power_watts() / 1000.0,
        big.footprint_sqft(),
        big.peak_flops(500.0) / 1e12
    );
}
