//! A tour of the QCDOC ASIC (Figure 1): block diagram, per-block
//! datasheet, and the headline numbers of each subsystem.
//!
//! ```text
//! cargo run --release --example asic_tour
//! ```

use qcdoc::asic::blocks;
use qcdoc::asic::clock::Clock;
use qcdoc::asic::edram::{EdramConfig, EdramController, PORT_BYTES_PER_CYCLE};
use qcdoc::asic::memory::{DDR_MAX_SIZE, EDRAM_SIZE};
use qcdoc::scu::timing::LinkTimingConfig;

fn main() {
    print!("{}", blocks::render_diagram());
    println!();
    print!("{}", blocks::render_datasheet());

    let clock = Clock::DESIGN;
    let link = LinkTimingConfig::default();
    println!(
        "\nsubsystem headline numbers at the {} design point:",
        clock
    );
    println!(
        "  FPU            : 1 multiply + 1 add per cycle  = {:.1} Gflops peak",
        clock.peak_flops() / 1e9
    );
    println!(
        "  EDRAM          : {} MB on chip, {} B/cycle to the D-cache = {:.1} GB/s",
        EDRAM_SIZE / (1024 * 1024),
        PORT_BYTES_PER_CYCLE,
        PORT_BYTES_PER_CYCLE as f64 * clock.hz() as f64 / 1e9
    );
    println!(
        "  DDR            : 2.6 GB/s external, up to {} GB",
        DDR_MAX_SIZE / (1 << 30)
    );
    println!(
        "  mesh link      : bit-serial at {} -> {:.1} MB/s payload per direction",
        clock,
        link.channel_bandwidth(clock) / 1e6
    );
    println!(
        "  all 24 channels: {:.2} GB/s aggregate (paper: 1.3 GB/s)",
        link.node_bandwidth(clock) / 1e9
    );
    println!(
        "  latency        : {:.0} ns memory-to-memory nearest neighbour (paper: ~600 ns)",
        link.transfer_ns(1, clock)
    );
    println!(
        "  24-word message: {:.2} us total ({:.0} ns first word + {:.2} us tail; paper: 3.3 us tail)",
        link.transfer_ns(24, clock) / 1000.0,
        link.transfer_ns(1, clock),
        (link.transfer_ns(24, clock) - link.transfer_ns(1, clock)) / 1000.0
    );

    // The two-stream prefetch demonstration (§2.1: a(x) × b(x)).
    println!("\nEDRAM prefetch demonstration — interleaving N sequential streams:");
    for streams in 1..=4 {
        let mut ctl = EdramController::new(EdramConfig::default());
        let mut addrs: Vec<u64> = (0..streams).map(|s| s as u64 * 0x10_0000).collect();
        let mut cycles = 0u64;
        const BEATS: usize = 200;
        for _ in 0..BEATS {
            for a in &mut addrs {
                cycles += ctl.access(*a, 128).count();
                *a += 128;
            }
        }
        let bytes = (BEATS * streams * 128) as f64;
        println!(
            "  {} stream(s): {:>6.2} B/cycle effective ({} page misses)",
            streams,
            bytes / cycles as f64,
            ctl.page_misses()
        );
    }
    println!("  -> two streams run at the full port rate; a third thrashes the prefetcher,");
    println!("     which is why the Dirac kernels are blocked as two-operand streams (§2.1).");
}
