//! The complete paper-vs-measured record in one run: every §2.2/§3.1/§4
//! number, printed side by side with the model's value. This is the
//! programmatic version of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example paper_report
//! ```

use qcdoc::asic::clock::Clock;
use qcdoc::core::baseline::ClusterPerf;
use qcdoc::core::distributed::{wilson_cg_segment_async, BlockGeom};
use qcdoc::core::perf::{DiracPerf, Precision, PAPER_EFFICIENCIES};
use qcdoc::core::ShardedMachine;
use qcdoc::geometry::{PartitionSpec, TorusShape};
use qcdoc::host::qdaemon::Qdaemon;
use qcdoc::lattice::counts::Action;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::machine::catalog;
use qcdoc::machine::cost::{columbia_4096, CostModel, PricePerformance, PAPER_PRICE_PERF};
use qcdoc::machine::packaging::MachineAssembly;
use qcdoc::machine::wiring::wiring;
use qcdoc::scu::global::dimension_sum_hops;
use qcdoc::scu::timing::LinkTimingConfig;
use std::time::Instant;

fn row(claim: &str, paper: &str, measured: &str) {
    println!("  {claim:<46} {paper:>16} {measured:>18}");
}

fn main() {
    println!("QCDOC (SC 2004) — paper vs this reproduction\n");
    println!("  {:<46} {:>16} {:>18}", "claim", "paper", "measured");
    println!("  {:-<46} {:->16} {:->18}", "", "", "");

    // §2.1 / abstract.
    row(
        "node peak speed",
        "1 Gflops",
        &format!("{:.1} Gflops", Clock::DESIGN.peak_flops() / 1e9),
    );
    row(
        "12,288-node peak",
        "10+ Tflops",
        &format!(
            "{:.2} Tflops",
            MachineAssembly::new(12_288).peak_flops(500.0) / 1e12
        ),
    );
    let edram_bw = qcdoc::asic::edram::PORT_BYTES_PER_CYCLE as f64 * Clock::DESIGN.hz() as f64;
    row(
        "EDRAM bandwidth",
        "8 GB/s",
        &format!("{:.1} GB/s", edram_bw / 1e9),
    );
    row(
        "DDR bandwidth",
        "2.6 GB/s",
        &format!("{:.1} GB/s", qcdoc::asic::ddr::DDR_BYTES_PER_SEC / 1e9),
    );

    // §2.2 link numbers.
    let link = LinkTimingConfig::default();
    row(
        "nearest-neighbour latency",
        "~600 ns",
        &format!("{:.0} ns", link.transfer_ns(1, Clock::DESIGN)),
    );
    let tail = link.transfer_ns(24, Clock::DESIGN) - link.transfer_ns(1, Clock::DESIGN);
    row(
        "24-word transfer tail",
        "3.3 us",
        &format!("{:.2} us", tail / 1000.0),
    );
    row(
        "aggregate node bandwidth",
        "1.3 GB/s",
        &format!("{:.2} GB/s", link.node_bandwidth(Clock::DESIGN) / 1e9),
    );
    row(
        "global sum hops (8x8x8x16)",
        "36 / 20 doubled",
        &format!(
            "{} / {}",
            dimension_sum_hops(&[8, 8, 8, 16], false),
            dimension_sum_hops(&[8, 8, 8, 16], true)
        ),
    );

    // §3.1 boot.
    let mut q = Qdaemon::new(qcdoc::geometry::TorusShape::motherboard_64());
    let boot = q.boot(&[]);
    row(
        "boot packets per node",
        "~100 + ~100",
        &format!("{}", boot.packets_sent / 64),
    );

    // §4 efficiencies.
    let perf = DiracPerf::paper_bench();
    for (action, paper) in PAPER_EFFICIENCIES {
        row(
            &format!("{} CG efficiency (4^4, 450 MHz)", action.name()),
            &format!("{:.1} %", 100.0 * paper),
            &format!("{:.1} %", 100.0 * perf.evaluate(action).efficiency),
        );
    }
    row(
        "domain wall vs clover",
        "surpasses",
        &format!(
            "{:.1} % vs {:.1} %",
            100.0 * perf.evaluate(Action::Dwf { ls: 8 }).efficiency,
            100.0 * perf.evaluate(Action::Clover).efficiency
        ),
    );
    let mut sp = DiracPerf::paper_bench();
    sp.precision = Precision::Single;
    row(
        "single precision",
        "slightly higher",
        &format!(
            "+{:.1} pp",
            100.0
                * (sp.evaluate(Action::Wilson).efficiency
                    - perf.evaluate(Action::Wilson).efficiency)
        ),
    );
    println!("\n  single vs double precision (4^4, 450 MHz):");
    for line in perf.render_precision_table().lines() {
        println!("    {line}");
    }
    println!();
    let mut big = DiracPerf::paper_bench();
    big.local_dims = [8, 8, 8, 8];
    row(
        "DDR-resident efficiency (8^4)",
        "~30 %",
        &format!("{:.1} %", 100.0 * big.evaluate(Action::Wilson).efficiency),
    );

    // §4 cost.
    let assembly = MachineAssembly::new(4096);
    let b = CostModel::default().breakdown(&assembly);
    row(
        "4096-node hardware total",
        &format!("${:.0}", columbia_4096::QUOTED_TOTAL),
        &format!("${:.0}", b.hardware_total()),
    );
    row(
        "all-in with prorated R&D",
        &format!("${:.0}", columbia_4096::QUOTED_TOTAL_WITH_RND),
        &format!("${:.0}", b.total()),
    );
    for (clock, paper) in PAPER_PRICE_PERF {
        let pp = PricePerformance {
            clock_mhz: clock,
            efficiency: 0.45,
            total_cost: b.total(),
            nodes: 4096,
        };
        row(
            &format!("price/performance @ {clock} MHz"),
            &format!("${paper:.2}/MF"),
            &format!("${:.3}/MF", pp.dollars_per_mflops()),
        );
    }
    let w = wiring(&catalog::by_name("columbia-4096").unwrap().shape);
    row(
        "mesh cables (4096 nodes)",
        "768",
        &format!("{} ({} faces x 3)", w.cables, w.faces),
    );

    // Hard scaling headline.
    let mut hs = DiracPerf::paper_bench();
    hs.logical_dims = [8, 8, 8, 16];
    hs.local_dims = [4, 4, 4, 4];
    let qe = hs.evaluate(Action::Wilson).efficiency;
    let ce = ClusterPerf::matching(&hs)
        .evaluate(Action::Wilson)
        .efficiency;
    row(
        "8192-node hard scaling (32^3x64)",
        "mesh >> cluster",
        &format!("{:.1} % vs {:.1} %", 100.0 * qe, 100.0 * ce),
    );

    // Abstract: "a 10 Teraflops computer" — the 12,288-node machine, not a
    // model this time: boot every node through the qdaemon, fold the 6-D
    // [8,8,6,4,4,2] torus to a logical [8,8,8,24], and run a bounded
    // Wilson-CG segment at one site per node on the sharded virtual-node
    // engine (real SCU link protocol on every one of the 49,152 mesh
    // wires). The thread-per-node engine could not host this; the sharded
    // engine multiplexes all 12,288 node programs onto a few workers.
    let physical = TorusShape::new(&[8, 8, 6, 4, 4, 2]);
    let mut q = Qdaemon::new(physical.clone());
    let boot = q.boot(&[]);
    let id = q
        .allocate(PartitionSpec::whole_machine(
            &physical,
            &[&[0], &[1], &[3, 5], &[2, 4]],
        ))
        .expect("full-machine partition");
    let logical = q.partition(id).unwrap().logical_shape().clone();
    let global = Lattice::new([8, 8, 8, 24]);
    let gauge = GaugeField::hot(global, 11);
    let b = FermionField::gaussian(global, 12);
    let start = Instant::now();
    let outs = ShardedMachine::new(logical).run(async |ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        let out = wilson_cg_segment_async(ctx, &geom, &lg, &lb, 0.11, 1e-12, 10_000, None, 2).await;
        (out.rsq, out.wedged)
    });
    let seconds = start.elapsed().as_secs_f64();
    q.release(id);
    let rsq_bits = outs[0].0.to_bits();
    assert!(outs.iter().all(|o| !o.1 && o.0.to_bits() == rsq_bits));
    row(
        "full-machine run (boot+partition+solve)",
        "12,288 nodes",
        &format!("{} booted, {:.0} s", boot.booted, seconds),
    );
    row(
        "machine-wide residual agreement",
        "exact bits",
        &format!("12,288/12,288 @ {:.3e}", outs[0].0),
    );

    println!("\nEvery row is pinned by tests/paper_numbers.rs; details in EXPERIMENTS.md.");
}
