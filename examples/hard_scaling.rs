//! Hard scaling (experiment E8): a fixed 32³×64 lattice spread over ever
//! more nodes — the regime QCDOC was designed for (§1) — compared against
//! a commodity Ethernet cluster with identical node compute power.
//!
//! §4: "A 4⁴ local volume is a reasonable size for machines with a peak
//! speed of 10 Teraflops and translates into a 32³×64 lattice size for a
//! 8,192 node machine."
//!
//! ```text
//! cargo run --release --example hard_scaling
//! ```

use qcdoc::core::baseline::ClusterPerf;
use qcdoc::core::perf::{DiracPerf, Precision};
use qcdoc::lattice::counts::Action;

const GLOBAL: [usize; 4] = [32, 32, 32, 64];

fn main() {
    // Machine partitions of the fixed lattice, 512 to 8192 nodes.
    let configs: [(usize, [usize; 4]); 5] = [
        (512, [4, 4, 4, 8]),
        (1024, [4, 4, 8, 8]),
        (2048, [4, 8, 8, 8]),
        (4096, [8, 8, 8, 8]),
        (8192, [8, 8, 8, 16]),
    ];
    println!("hard scaling on a fixed {GLOBAL:?} lattice (Wilson CG, double precision, 450 MHz)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "nodes", "local", "EDRAM?", "qcdoc eff", "cluster eff", "qcdoc Tflops", "cluster Tflops"
    );
    for (nodes, mdims) in configs {
        let local: [usize; 4] = std::array::from_fn(|a| GLOBAL[a] / mdims[a]);
        let mut perf = DiracPerf::paper_bench();
        perf.logical_dims = mdims;
        perf.local_dims = local;
        perf.precision = Precision::Double;
        let q = perf.evaluate(Action::Wilson);
        let c = ClusterPerf::matching(&perf).evaluate(Action::Wilson);
        let peak_node = perf.machine.node.clock.peak_flops();
        println!(
            "{:>6} {:>10} {:>10} {:>11.1}% {:>11.1}% {:>14.2} {:>14.2}",
            nodes,
            format!("{}x{}x{}x{}", local[0], local[1], local[2], local[3]),
            if q.fits_edram { "yes" } else { "no" },
            100.0 * q.efficiency,
            100.0 * c.efficiency,
            nodes as f64 * peak_node * q.efficiency / 1e12,
            nodes as f64 * peak_node * c.efficiency / 1e12,
        );
    }
    println!(
        "\nthe cluster's message start-up cost (5-10 us, §2.2) stops amortizing as the local\n\
         volume shrinks; QCDOC's 600 ns zero-copy path and 24 concurrent links keep scaling.\n\
         (12,288-node machines use lattices with a divisible time extent; the paper's own\n\
         32^3x64 example stops at 8,192 nodes.)"
    );
}
