//! Hard scaling (experiment E8): a fixed 32³×64 lattice spread over ever
//! more nodes — the regime QCDOC was designed for (§1) — compared against
//! a commodity Ethernet cluster with identical node compute power.
//!
//! §4: "A 4⁴ local volume is a reasonable size for machines with a peak
//! speed of 10 Teraflops and translates into a 32³×64 lattice size for a
//! 8,192 node machine."
//!
//! Two sections: the analytic model's projection of the paper's machine,
//! and a **measured** sweep that actually executes the solver on the
//! functional engine — every node running the real SCU link protocol —
//! up to the full 12,288-node machine. The thread-per-node engine capped
//! this sweep at a few hundred nodes (a node cost an OS thread); the
//! sharded virtual-node engine (`qcdoc::core::ShardedMachine`) multiplexes
//! all 12,288 onto a handful of workers, so the full machine boots,
//! partitions, and solves for real. The measured points are exported in
//! the v2 bench schema (`BENCH_full_machine.json`) and gated by the bench
//! judge.
//!
//! ```text
//! cargo run --release --example hard_scaling
//! ```

use qcdoc::core::baseline::ClusterPerf;
use qcdoc::core::distributed::{wilson_cg_segment_async, BlockGeom};
use qcdoc::core::perf::{DiracPerf, Precision};
use qcdoc::core::ShardedMachine;
use qcdoc::geometry::{PartitionSpec, TorusShape};
use qcdoc::host::qdaemon::Qdaemon;
use qcdoc::lattice::counts::Action;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::telemetry::{bench_summary_json, MetricsRegistry};
use std::time::Instant;

const GLOBAL: [usize; 4] = [32, 32, 32, 64];

/// CG iterations per measured segment — enough to exercise face
/// exchanges, dimension-ordered global sums, and the κ recurrence on
/// every node without turning the example into a production solve.
const SEG_ITERS: usize = 3;

/// One measured point: boot the physical machine through the qdaemon,
/// carve the logical partition, run a bounded Wilson-CG segment on the
/// sharded engine, and check every node agrees on the residual bits.
fn measured_point(
    physical: &TorusShape,
    groups: &[&[usize]],
    global: Lattice,
    gauge: &GaugeField,
    b: &FermionField,
) -> (usize, f64, f64) {
    let mut qdaemon = Qdaemon::new(physical.clone());
    let boot = qdaemon.boot(&[]);
    assert_eq!(
        boot.booted,
        physical.node_count(),
        "boot must reach every node"
    );
    let id = qdaemon
        .allocate(PartitionSpec::whole_machine(physical, groups))
        .expect("whole-machine partition");
    let logical = qdaemon.partition(id).unwrap().logical_shape().clone();
    let nodes = logical.node_count();

    let start = Instant::now();
    let machine = ShardedMachine::new(logical);
    let outs = machine.run(async |ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(gauge);
        let lb = geom.extract_fermion(b);
        let out =
            wilson_cg_segment_async(ctx, &geom, &lg, &lb, 0.11, 1e-12, 10_000, None, SEG_ITERS)
                .await;
        (out.iterations, out.rsq, out.wedged)
    });
    let seconds = start.elapsed().as_secs_f64();
    qdaemon.release(id);

    assert_eq!(outs.len(), nodes);
    assert!(outs.iter().all(|o| !o.2), "no node may wedge");
    assert!(outs.iter().all(|o| o.0 == SEG_ITERS));
    let rsq_bits = outs[0].1.to_bits();
    assert!(
        outs.iter().all(|o| o.1.to_bits() == rsq_bits),
        "dimension-ordered sums must agree bitwise on all {nodes} nodes"
    );
    (nodes, outs[0].1, seconds)
}

fn main() {
    // Machine partitions of the fixed lattice, 512 to 8192 nodes.
    let configs: [(usize, [usize; 4]); 5] = [
        (512, [4, 4, 4, 8]),
        (1024, [4, 4, 8, 8]),
        (2048, [4, 8, 8, 8]),
        (4096, [8, 8, 8, 8]),
        (8192, [8, 8, 8, 16]),
    ];
    println!("hard scaling on a fixed {GLOBAL:?} lattice (Wilson CG, double precision, 450 MHz)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "nodes", "local", "EDRAM?", "qcdoc eff", "cluster eff", "qcdoc Tflops", "cluster Tflops"
    );
    for (nodes, mdims) in configs {
        let local: [usize; 4] = std::array::from_fn(|a| GLOBAL[a] / mdims[a]);
        let mut perf = DiracPerf::paper_bench();
        perf.logical_dims = mdims;
        perf.local_dims = local;
        perf.precision = Precision::Double;
        let q = perf.evaluate(Action::Wilson);
        let c = ClusterPerf::matching(&perf).evaluate(Action::Wilson);
        let peak_node = perf.machine.node.clock.peak_flops();
        println!(
            "{:>6} {:>10} {:>10} {:>11.1}% {:>11.1}% {:>14.2} {:>14.2}",
            nodes,
            format!("{}x{}x{}x{}", local[0], local[1], local[2], local[3]),
            if q.fits_edram { "yes" } else { "no" },
            100.0 * q.efficiency,
            100.0 * c.efficiency,
            nodes as f64 * peak_node * q.efficiency / 1e12,
            nodes as f64 * peak_node * c.efficiency / 1e12,
        );
    }
    println!(
        "\nthe cluster's message start-up cost (5-10 us, §2.2) stops amortizing as the local\n\
         volume shrinks; QCDOC's 600 ns zero-copy path and 24 concurrent links keep scaling.\n\
         (the paper's own 32^3x64 example stops at 8,192 nodes; the full 12,288-node\n\
         machine runs an [8,8,8,24] time extent — measured below.)"
    );

    // Measured sweep: boot, partition, and solve for real on the sharded
    // virtual-node engine, up to the full machine at one site per node.
    let global = Lattice::new([8, 8, 8, 24]);
    let gauge = GaugeField::hot(global, 11);
    let b = FermionField::gaussian(global, 12);
    println!(
        "\nmeasured on the functional engine (sharded virtual nodes, real SCU links,\n\
         {SEG_ITERS}-iteration Wilson-CG segment on a fixed {:?} lattice):\n",
        global.dims()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>22}",
        "nodes", "local", "seconds", "residual |r|^2"
    );
    let mut reg = MetricsRegistry::new();
    let points: Vec<(TorusShape, Vec<Vec<usize>>)> = vec![
        // 256 nodes: a 4-D development box, native partition.
        (
            TorusShape::new(&[4, 4, 4, 4]),
            vec![vec![0], vec![1], vec![2], vec![3]],
        ),
        // 4,096 nodes: one columbia-4096-scale half-rack row.
        (
            TorusShape::new(&[8, 8, 8, 8]),
            vec![vec![0], vec![1], vec![2], vec![3]],
        ),
        // 12,288 nodes: the paper's full machine, physically the 6-D
        // [8,8,6,4,4,2] torus, folded to a logical [8,8,8,24].
        (
            TorusShape::new(&[8, 8, 6, 4, 4, 2]),
            vec![vec![0], vec![1], vec![3, 5], vec![2, 4]],
        ),
    ];
    for (physical, groups) in &points {
        let group_refs: Vec<&[usize]> = groups.iter().map(|g| g.as_slice()).collect();
        let (nodes, rsq, seconds) = measured_point(physical, &group_refs, global, &gauge, &b);
        let local: [usize; 4] = {
            let mdims = match nodes {
                256 => [4, 4, 4, 4],
                4096 => [8, 8, 8, 8],
                _ => [8, 8, 8, 24],
            };
            std::array::from_fn(|a| global.dims()[a] / mdims[a])
        };
        println!(
            "{:>6} {:>10} {:>11.2}s {:>22.6e}",
            nodes,
            format!("{}x{}x{}x{}", local[0], local[1], local[2], local[3]),
            seconds,
            rsq,
        );
        let labels = [("nodes", nodes.to_string())];
        reg.gauge_set("full_machine_solve_seconds", &labels, seconds);
        reg.gauge_set("full_machine_segment_rsq", &labels, rsq);
    }
    reg.gauge_set("full_machine_nodes", &[], 12_288.0);
    reg.gauge_set("full_machine_segment_iterations", &[], SEG_ITERS as f64);
    let json = bench_summary_json("full_machine", &reg, &[]);
    std::fs::write("BENCH_full_machine.json", &json).expect("write BENCH_full_machine.json");
    println!(
        "\nall residual bits agreed machine-wide at every point (dimension-ordered sums);\n\
         wrote BENCH_full_machine.json ({} bytes)",
        json.len()
    );
}
