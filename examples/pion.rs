//! A physics run: compute a quark propagator and the pion correlator on a
//! quenched configuration — the measurement loop the production machines
//! spend their lives in, complete with configuration I/O over NFS.
//!
//! ```text
//! cargo run --release --example pion
//! ```

use qcdoc::host::nfs::NfsServer;
use qcdoc::lattice::field::{GaugeField, Lattice};
use qcdoc::lattice::gauge::{average_plaquette, evolve, EvolveParams};
use qcdoc::lattice::io::{read_config, write_config};
use qcdoc::lattice::measure::{effective_mass, pion_correlator, point_propagator};
use qcdoc::lattice::solver::CgParams;

fn main() {
    // Generate and archive a configuration.
    let lat = Lattice::new([4, 4, 4, 8]);
    println!(
        "thermalizing a {:?} quenched lattice at beta = 5.7 ...",
        lat.dims()
    );
    let mut gauge = GaugeField::hot(lat, 42);
    let history = evolve(&mut gauge, EvolveParams::default(), 7, 10);
    println!(
        "plaquette: {:.4} (sweep 1) -> {:.4} (sweep 10)",
        history[0],
        history.last().unwrap()
    );

    let mut nfs = NfsServer::paper_host();
    let handle = nfs.open("/data/ensembles/demo/lat.10").unwrap();
    let bytes = write_config(&gauge);
    nfs.write(handle, &bytes).unwrap();
    println!(
        "archived {} kB to /data/ensembles/demo/lat.10 (NERSC format, checksummed)",
        bytes.len() / 1024
    );

    // A "measurement job" restores it and computes the propagator.
    let restored = read_config(&nfs.read("/data/ensembles/demo/lat.10").unwrap()).unwrap();
    assert_eq!(restored.fingerprint(), gauge.fingerprint());
    println!(
        "restored bit-identically (plaquette {:.4}); solving 12 Dirac systems ...",
        average_plaquette(&restored)
    );

    let prop = point_propagator(
        &restored,
        0.11,
        CgParams {
            tolerance: 1e-8,
            max_iterations: 4000,
        },
    );
    let total_iters: usize = prop.reports.iter().map(|r| r.iterations).sum();
    println!(
        "propagator done: {} CG iterations over 12 source components (all converged: {})",
        total_iters,
        prop.reports.iter().all(|r| r.converged)
    );

    let corr = pion_correlator(&prop);
    let meff = effective_mass(&corr);
    println!("\n  t    C(t)          m_eff(t)");
    for (t, &c) in corr.iter().enumerate() {
        if t + 1 < corr.len() {
            println!("  {t:<3} {c:<13.6e} {:.4}", meff[t]);
        } else {
            println!("  {t:<3} {c:<13.6e}", c = c);
        }
    }
    println!("\nthe correlator falls from the source and flattens into cosh symmetry");
    println!("around t = T/2 — a pion propagating on the lattice.");
}
