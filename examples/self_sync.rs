//! Self-synchronization (§2.2): what the link-level handshake does to a
//! machine when a node stalls.
//!
//! "In a tightly coupled application involving extensive nearest-neighbor
//! communications, if a given node stops communicating with its neighbors,
//! the entire machine will shortly become stalled. Once the initial
//! blocked link resumes its transfers, the whole machine will proceed with
//! the calculation. This link-level handshaking also allows one node to
//! get slightly behind … say due to a memory refresh."
//!
//! ```text
//! cargo run --release --example self_sync
//! ```

use qcdoc::core::des::{run, DesConfig, Perturbation};

fn main() {
    // A 256-node 4-D machine iterating a CG-like workload.
    let base = DesConfig::homogeneous([4, 4, 4, 4], 900_000, 1_536, 3_000);
    const ITERS: usize = 20;

    let clean = run(&base, ITERS);
    println!(
        "clean machine      : {} iterations in {:.2} Mcycles ({} kcycles each)",
        ITERS,
        clean.total_cycles as f64 / 1e6,
        clean.steady_iteration_cycles() / 1000
    );

    // One node pauses once, for half an iteration.
    let mut once = base.clone();
    once.perturbations.push(Perturbation {
        node: 77,
        iteration: Some(5),
        extra_cycles: 450_000,
    });
    let r_once = run(&once, ITERS);
    println!(
        "one 450 kcycle stall on node 77 at iteration 5:\n\
         \x20                    total +{} kcycles (exactly the stall, paid once, then the\n\
         \x20                    machine proceeds — the self-synchronizing property)",
        (r_once.total_cycles - clean.total_cycles) / 1000
    );

    // A persistently slow node paces everyone.
    let mut slow = base.clone();
    slow.perturbations.push(Perturbation {
        node: 3,
        iteration: None,
        extra_cycles: 50_000,
    });
    let r_slow = run(&slow, ITERS);
    println!(
        "node 3 slower by 50 kcycles every iteration:\n\
         \x20                    total +{} kcycles ({} x 50k — the machine runs at the\n\
         \x20                    slowest node's pace)",
        (r_slow.total_cycles - clean.total_cycles) / 1000,
        ITERS
    );

    // A refresh pause inside a node's slack is invisible.
    let mut fast = base.clone();
    fast.compute_override.push((42, 900_000 - 60_000)); // node 42 has headroom
    let with_headroom = run(&fast, ITERS).total_cycles;
    let mut refresh = fast.clone();
    refresh.perturbations.push(Perturbation {
        node: 42,
        iteration: Some(9),
        extra_cycles: 40_000,
    });
    let r_refresh = run(&refresh, ITERS).total_cycles;
    println!(
        "a 40 kcycle DRAM-refresh pause on a node with 60 kcycles of slack:\n\
         \x20                    total +{} cycles — \"the majority of the machine will not\n\
         \x20                    see this pause by one node\" (§2.2)",
        r_refresh - with_headroom
    );
}
