//! Soak: a week of multi-tenant operations on the 12,288-node machine,
//! compressed into seconds.
//!
//! §3.1's partitioning — independent user partitions carved from one 6-D
//! mesh "without moving cables" — pays off operationally only when many
//! physics groups share the installation. This example generates a
//! seeded stream of mixed-tenant batch jobs (production solves, standard
//! runs, scavenger filler, sizes from 4 nodes to the full machine),
//! feeds them to the `qcdoc-sched` scheduler against a simulated mesh,
//! and prints the operations report: per-tenant service, waits,
//! preemptions and quota high-water marks, plus machine-wide occupancy
//! and fragmentation.
//!
//! ```text
//! cargo run --release --example soak [jobs] [seed]
//! ```

use qcdoc::geometry::TorusShape;
use qcdoc::sched::{
    JobSpec, JobStatus, Priority, SchedConfig, Scheduler, ShapeRequest, SimMesh, TenantConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shape(extents: &[usize], groups: &[&[usize]]) -> ShapeRequest {
    ShapeRequest {
        extents: extents.to_vec(),
        groups: groups.iter().map(|g| g.to_vec()).collect(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2004);

    // The full installation of the paper: 8 x 8 x 6 x 4 x 4 x 2.
    let machine = TorusShape::new(&[8, 8, 6, 4, 4, 2]);
    println!(
        "soak: {} jobs, seed {}, machine {} ({} nodes)\n",
        jobs,
        seed,
        machine,
        machine.node_count()
    );

    let mut sched = Scheduler::new(
        machine.clone(),
        SchedConfig {
            aging_ticks: 48,
            window: 8,
            ..SchedConfig::default()
        },
    );
    let tenants: [(&str, TenantConfig); 4] = [
        (
            "alpha",
            TenantConfig {
                weight: 2.0,
                node_quota: 12_288,
                max_queued: usize::MAX,
            },
        ),
        (
            "beta",
            TenantConfig {
                weight: 1.0,
                node_quota: 6_144,
                max_queued: usize::MAX,
            },
        ),
        (
            "gamma",
            TenantConfig {
                weight: 1.0,
                node_quota: 3_072,
                max_queued: usize::MAX,
            },
        ),
        (
            "scav",
            TenantConfig {
                weight: 0.25,
                node_quota: 12_288,
                max_queued: usize::MAX,
            },
        ),
    ];
    for (name, cfg) in &tenants {
        sched.add_tenant(name, *cfg);
    }
    let mut mesh = SimMesh::new(machine.clone());

    // Valid partition shapes, largest first (each multi-axis group ends
    // on an extent-2 axis so its ring closes with unit dilation).
    let menu = [
        shape(&[8, 8, 6, 4, 4, 2], &[&[0], &[1], &[2], &[3], &[4], &[5]]),
        shape(&[8, 8, 6, 4, 4, 1], &[&[0], &[1], &[2], &[3], &[4]]),
        shape(&[8, 8, 6, 4, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),
        shape(&[8, 8, 6, 2, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),
        shape(&[8, 8, 6, 2, 1, 1], &[&[0], &[1], &[2, 3]]),
        shape(&[8, 8, 2, 2, 1, 1], &[&[0], &[1], &[2, 3]]),
        shape(&[8, 2, 2, 1, 1, 1], &[&[0], &[1, 2]]),
        shape(&[2, 2, 1, 1, 1, 1], &[&[0, 1]]),
    ];

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..jobs {
        let t = rng.gen_range(0..tenants.len());
        let (tenant, cfg) = &tenants[t];
        let priority = match rng.gen_range(0..10) {
            0 => Priority::Production,
            1..=6 => Priority::Standard,
            _ => Priority::Scavenger,
        };
        let affordable: Vec<&ShapeRequest> = menu
            .iter()
            .filter(|s| s.node_count() <= cfg.node_quota)
            .collect();
        let first = rng.gen_range(0..affordable.len());
        let shapes: Vec<ShapeRequest> = affordable[first..]
            .iter()
            .take(2)
            .map(|&s| s.clone())
            .collect();
        let work = rng.gen_range(2..=24u64);
        sched
            .submit(JobSpec {
                tenant: (*tenant).into(),
                priority,
                shapes,
                work,
                preemptible: true,
            })
            .expect("generated jobs are admissible");
        let lull = rng.gen_range(0..=2u64);
        if lull > 0 {
            let dt = lull.min(sched.next_completion_in().unwrap_or(lull));
            sched.advance(dt, &mut mesh);
        }
    }
    let drained = sched.drain(&mut mesh, 1_000_000);
    assert!(drained, "queue failed to drain");

    println!(
        "{:<8} {:>5} {:>5} {:>7} {:>12} {:>10} {:>9} {:>11}",
        "tenant", "jobs", "done", "preempt", "node-ticks", "wait-ticks", "max-wait", "peak-nodes"
    );
    for (name, _) in &tenants {
        let s = sched.tenant_stats(name).unwrap();
        let max_wait = sched
            .jobs()
            .filter(|j| j.spec.tenant == *name)
            .map(|j| j.wait_ticks)
            .max()
            .unwrap_or(0);
        println!(
            "{:<8} {:>5} {:>5} {:>7} {:>12} {:>10} {:>9} {:>11}",
            name,
            s.submitted,
            s.completed,
            s.preemptions,
            s.node_ticks,
            s.wait_ticks,
            max_wait,
            s.max_running_nodes
        );
    }
    let unfinished = sched
        .jobs()
        .filter(|j| j.status != JobStatus::Completed)
        .count();
    println!(
        "\nmakespan {} ticks, occupancy {:.1}%, {} placement decisions, {} preemptions, {} unfinished",
        sched.clock(),
        100.0 * sched.occupancy_ratio(),
        sched.decisions(),
        sched.preemptions(),
        unfinished
    );
    println!("\n--- scheduler metrics (Prometheus) ---");
    print!(
        "{}",
        qcdoc::telemetry::prometheus_text(sched.export_metrics())
    );
}
