//! Fault sweep: sustained Dslash throughput versus link bit-error rate.
//!
//! §2.2 argues the machine can afford its automatic parity-resend because
//! real HSSL error rates are tiny: each corrupted frame costs one
//! go-back-N rewind (a window's worth of words), so throughput degrades
//! gracefully with the error rate instead of falling off a cliff. This
//! example plays that out on the timing engine: a 256-node machine runs a
//! Wilson-Dslash-shaped workload while one link's bit-error rate sweeps
//! from 0 (the healthy machine) up to rates no real cable would survive,
//! and we watch the sustained per-node Gflops respond.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use qcdoc::core::des::{run_with_faults, DesConfig};
use qcdoc::core::perf::DiracPerf;
use qcdoc::fault::{FaultEvent, FaultPlan};
use qcdoc::lattice::counts::Action;

fn main() {
    // Price one CG iteration with the paper-benchmark machine, then hand
    // the same pieces to the DES (as in the engine's cross-check test).
    let perf = DiracPerf::paper_bench();
    let report = perf.evaluate(Action::Wilson);
    let local = report.total_cycles - report.comm_cycles - report.gsum_cycles;
    let cfg = DesConfig {
        machine_dims: perf.logical_dims,
        compute_cycles: local,
        compute_override: vec![],
        face_words: report.comm_cycles / 72,
        link: perf.machine.link,
        global_sum_cycles: report.gsum_cycles,
        perturbations: vec![],
    };
    const ITERS: usize = 50;
    let clock_hz = perf.machine.node.clock.hz() as f64;
    let nodes: usize = perf.logical_dims.iter().product();
    println!(
        "{} nodes, Wilson Dslash, {} iterations; {:.3} Gflops/node on clean links\n",
        nodes, ITERS, report.sustained_gflops_per_node
    );
    println!(
        "{:>12}  {:>10}  {:>10}  {:>14}  {:>9}",
        "BER/word", "errors", "resent wds", "Gflops/node", "slowdown"
    );

    let clean = run_with_faults(&cfg, ITERS, &FaultPlan::new(2004))
        .0
        .total_cycles;
    for rate in [0.0, 1e-6, 1e-4, 1e-3, 1e-2, 5e-2, 2e-1] {
        let plan = FaultPlan::new(2004).with_event(FaultEvent::bit_error_rate(5, 0, rate));
        let (result, ledger) = run_with_faults(&cfg, ITERS, &plan);
        let seconds = result.total_cycles as f64 / clock_hz;
        let gflops = report.flops_per_iteration as f64 * ITERS as f64 / seconds / 1e9;
        println!(
            "{:>12.0e}  {:>10}  {:>10}  {:>14.3}  {:>8.2}%",
            rate,
            ledger.total_injected(),
            ledger.total_resends(),
            gflops,
            100.0 * (result.total_cycles as f64 / clean as f64 - 1.0),
        );
    }

    println!(
        "\nEach error rewinds the three-in-the-air window, so even a 1e-2 per-word\n\
         error rate on one wire barely moves machine throughput — while the same\n\
         sweep's health ledger pins every corrupted word to the guilty link."
    );
}
