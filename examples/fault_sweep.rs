//! Fault sweep: sustained Dslash throughput versus link bit-error rate.
//!
//! §2.2 argues the machine can afford its automatic parity-resend because
//! real HSSL error rates are tiny: each corrupted frame costs one
//! go-back-N rewind (a window's worth of words), so throughput degrades
//! gracefully with the error rate instead of falling off a cliff. This
//! example plays that out on the timing engine: a 256-node machine runs a
//! Wilson-Dslash-shaped workload while one link's bit-error rate sweeps
//! from 0 (the healthy machine) up to rates no real cable would survive,
//! and we watch the sustained per-node Gflops respond.
//!
//! Every sweep point runs through the traced engine, so the whole
//! BER-vs-throughput curve lands in one telemetry registry (gauges
//! labelled by `ber`) and is written to `BENCH_fault_sweep.json` via the
//! stamped v2 exporter — the file a host-side dashboard would scrape,
//! and one `bench-judge` can diff once a baseline is blessed for it.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use qcdoc::core::des::{run_traced, DesConfig, DesTelemetry};
use qcdoc::core::distributed::{
    assemble_checkpoint, resume_blocks, wilson_cg_segment, BlockGeom, CgResume, CgSegmentOut,
};
use qcdoc::core::functional::{FunctionalMachine, NodeCtx};
use qcdoc::core::perf::DiracPerf;
use qcdoc::core::recovery::{RecoveryConfig, Replacement, SegmentVerdict};
use qcdoc::fault::{FaultEvent, FaultPlan};
use qcdoc::geometry::TorusShape;
use qcdoc::lattice::checkpoint::CgCheckpoint;
use qcdoc::lattice::counts::Action;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::telemetry::{bench_summary_json, MetricsRegistry, RingSink, TraceSink};

fn main() {
    // Price one CG iteration with the paper-benchmark machine, then hand
    // the same pieces to the DES (as in the engine's cross-check test).
    let perf = DiracPerf::paper_bench();
    let report = perf.evaluate(Action::Wilson);
    let local = report.total_cycles - report.comm_cycles - report.gsum_cycles;
    let cfg = DesConfig {
        machine_dims: perf.logical_dims,
        compute_cycles: local,
        compute_override: vec![],
        face_words: report.comm_cycles / 72,
        link: perf.machine.link,
        global_sum_cycles: report.gsum_cycles,
        perturbations: vec![],
    };
    const ITERS: usize = 50;
    let clock_hz = perf.machine.node.clock.hz() as f64;
    let nodes: usize = perf.logical_dims.iter().product();
    println!(
        "{} nodes, Wilson Dslash, {} iterations; {:.3} Gflops/node on clean links\n",
        nodes, ITERS, report.sustained_gflops_per_node
    );
    println!(
        "{:>12}  {:>10}  {:>10}  {:>14}  {:>9}",
        "BER/word", "errors", "resent wds", "Gflops/node", "slowdown"
    );

    // One registry accumulates the whole sweep; each point stamps its
    // series with a `ber` label. Spans are kept for the clean run only —
    // enough to see the compute/comms/global-sum decomposition without a
    // seven-fold trace.
    let mut sweep = MetricsRegistry::new();
    let mut clean_spans = Vec::new();
    let mut clean_cycles = 0u64;
    for rate in [0.0, 1e-6, 1e-4, 1e-3, 1e-2, 5e-2, 2e-1] {
        let plan = FaultPlan::new(2004).with_event(FaultEvent::bit_error_rate(5, 0, rate));
        let mut sink = RingSink::new(3 * nodes * ITERS);
        let mut metrics = MetricsRegistry::new();
        let (result, ledger) = run_traced(
            &cfg,
            ITERS,
            &plan,
            Some(DesTelemetry {
                sink: &mut sink,
                metrics: &mut metrics,
            }),
        );
        if rate == 0.0 {
            clean_spans = sink.drain();
            clean_cycles = result.total_cycles;
        }
        let seconds = result.total_cycles as f64 / clock_hz;
        let gflops = report.flops_per_iteration as f64 * ITERS as f64 / seconds / 1e9;
        let slowdown = 100.0 * (result.total_cycles as f64 / clean_cycles as f64 - 1.0);
        let ber = [("ber", format!("{rate:e}"))];
        sweep.gauge_set("fault_sweep_gflops_per_node", &ber, gflops);
        sweep.gauge_set("fault_sweep_injected", &ber, ledger.total_injected() as f64);
        sweep.gauge_set("fault_sweep_resends", &ber, ledger.total_resends() as f64);
        sweep.gauge_set("fault_sweep_slowdown_pct", &ber, slowdown);
        sweep.gauge_set("fault_sweep_total_cycles", &ber, result.total_cycles as f64);
        println!(
            "{:>12.0e}  {:>10}  {:>10}  {:>14.3}  {:>8.2}%",
            rate,
            ledger.total_injected(),
            ledger.total_resends(),
            gflops,
            slowdown,
        );
    }

    recovery_demo(&mut sweep);
    integrity_demo(&mut sweep);

    let json = bench_summary_json("fault_sweep", &sweep, &clean_spans);
    std::fs::write("BENCH_fault_sweep.json", &json).expect("write BENCH_fault_sweep.json");
    println!(
        "\nWrote BENCH_fault_sweep.json ({} bytes): the BER-vs-throughput curve as\n\
         `ber`-labelled gauges plus the clean run's compute/comms/global-sum\n\
         phase decomposition.",
        json.len()
    );
    println!(
        "\nEach error rewinds the three-in-the-air window, so even a 1e-2 per-word\n\
         error rate on one wire barely moves machine throughput — while the same\n\
         sweep's health ledger pins every corrupted word to the guilty link."
    );
}

/// One recovery segment of the distributed Wilson CG (fresh or restored
/// from the last checkpoint), shared by every severity below.
fn cg_segment(
    ctx: &mut NodeCtx,
    gauge: &GaugeField,
    b: &FermionField,
    global: Lattice,
    state: &Option<CgCheckpoint>,
) -> CgSegmentOut {
    let geom = BlockGeom::new(ctx, global);
    let lg = geom.extract_gauge(gauge);
    let lb = geom.extract_fermion(b);
    let resume_state = state.as_ref().map(|ck| (resume_blocks(&geom, ck), ck));
    let resume = resume_state.as_ref().map(|((x, r, p), ck)| CgResume {
        x,
        r,
        p,
        rsq: ck.rsq,
        bref: ck.bref,
        iterations: ck.iterations,
    });
    wilson_cg_segment(ctx, &geom, &lg, &lb, 0.12, 1e-7, 400, resume, 5)
}

/// Recovered-vs-unrecovered runs across fault severities: a healthy
/// machine, link noise the protocol heals in place, and a dead wire that
/// needs quarantine-and-resume — plus the same dead wire with recovery
/// disabled, which simply loses the run.
fn recovery_demo(sweep: &mut MetricsRegistry) {
    let global = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(global, 71);
    let b = FermionField::gaussian(global, 72);
    let noise = || {
        FaultPlan::new(5)
            .with_event(FaultEvent::bit_flip(1, 0, 40, 9))
            .with_event(FaultEvent::bit_flip(2, 1, 90, 17))
    };
    let dead = || FaultPlan::new(5).with_event(FaultEvent::dead_link(1, 0, 120));
    println!(
        "\nSelf-healing runs (distributed Wilson CG, 4-node partition, 5-iteration\n\
         segments; 'wasted' = discarded segments per useful one):\n"
    );
    println!(
        "{:>22}  {:>8}  {:>10}  {:>9}  {:>9}",
        "severity", "segments", "recoveries", "wasted", "outcome"
    );
    let cases = [
        ("none", FaultPlan::default(), 4usize),
        ("link-noise", noise(), 4),
        ("dead-link", dead(), 4),
        ("dead-link-unrecovered", dead(), 0),
    ];
    for (severity, plan, max_recoveries) in cases {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]))
            .with_faults(plan)
            .with_wedge_timeout(5_000);
        let mut prior: Vec<f64> = Vec::new();
        let outcome = machine.run_with_recovery(
            RecoveryConfig { max_recoveries },
            None,
            |ctx, state: &Option<CgCheckpoint>| cg_segment(ctx, &gauge, &b, global, state),
            |shape, outs: Vec<CgSegmentOut>| {
                let ckpt = assemble_checkpoint(shape, global, &outs, &prior);
                prior = ckpt.residuals.clone();
                if ckpt.converged {
                    SegmentVerdict::Done(ckpt)
                } else {
                    SegmentVerdict::Continue(Some(ckpt))
                }
            },
            // The operator's repair: swap the broken daughterboard, keep
            // the machine shape.
            |_| {
                Some(Replacement {
                    shape: TorusShape::new(&[2, 2]),
                    faults: FaultPlan::default(),
                    degraded: false,
                })
            },
        );
        let labels = [("severity", severity.to_string())];
        let (segments, recoveries, converged) = match &outcome {
            Ok((ckpt, report)) => (report.segments, report.recoveries, ckpt.converged),
            Err(_) => (0, 0, false),
        };
        let wasted = if segments > 0 {
            100.0 * recoveries as f64 / segments as f64
        } else {
            0.0
        };
        sweep.gauge_set("recovery_run_segments", &labels, segments as f64);
        sweep.gauge_set("recovery_run_recoveries", &labels, recoveries as f64);
        sweep.gauge_set("recovery_run_wasted_pct", &labels, wasted);
        sweep.gauge_set(
            "recovery_run_converged",
            &labels,
            if converged { 1.0 } else { 0.0 },
        );
        println!(
            "{:>22}  {:>8}  {:>10}  {:>8.1}%  {:>9}",
            severity,
            segments,
            recoveries,
            wasted,
            if converged { "converged" } else { "lost" },
        );
    }
    println!(
        "\nLink noise heals inside the protocol (no segments lost); a dead wire\n\
         costs exactly the segments in flight when it died, and with recovery\n\
         disabled the same fault loses the whole run."
    );
}

/// Silent-data-corruption rates before and after the end-to-end block
/// checksums: a batch of seeded parity-evading payload bursts strikes a
/// Wilson CG, and a run is *silent* when the delivered solution differs
/// from the fault-free bits without any detection counter firing. With
/// the checksums on, every burst is caught at the receive unit and the
/// block replayed, so the after column is zero by construction.
fn integrity_demo(sweep: &mut MetricsRegistry) {
    let global = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(global, 81);
    let b = FermionField::gaussian(global, 82);
    let solve = |machine: FunctionalMachine| {
        machine.run_with_health(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            wilson_cg_segment(ctx, &geom, &lg, &lb, 0.12, 1e-7, 400, None, usize::MAX)
        })
    };
    let shape = TorusShape::new(&[2, 2]);
    let (ref_outs, _) = solve(FunctionalMachine::new(shape.clone()));
    let reference = assemble_checkpoint(&shape, global, &ref_outs, &[]).digest();

    let bursts: Vec<FaultPlan> = (0..5)
        .map(|i| {
            FaultPlan::new(100 + i as u64).with_event(FaultEvent::payload_burst(
                (i % 4) as u32,
                0,
                30 + 25 * i as u64,
                5 + i,
                2,
            ))
        })
        .collect();
    let mut silent = [0usize; 2];
    let mut caught = 0u64;
    for plan in &bursts {
        for (def, defended) in [(0usize, false), (1, true)] {
            let mut machine = FunctionalMachine::new(shape.clone()).with_faults(plan.clone());
            if defended {
                machine = machine.with_block_checksums();
            }
            let (outs, ledger) = solve(machine);
            let digest = assemble_checkpoint(&shape, global, &outs, &[]).digest();
            caught += if defended {
                ledger.total_block_rejects()
            } else {
                0
            };
            if digest != reference && ledger.total_block_rejects() == 0 {
                silent[def] += 1;
            }
        }
    }
    println!(
        "\nSilent data corruption ({} seeded parity-evading bursts mid-CG):\n",
        bursts.len()
    );
    println!("{:>22}  {:>10}  {:>10}", "defense", "silent", "caught");
    println!(
        "{:>22}  {:>7}/{}  {:>10}",
        "frame parity only",
        silent[0],
        bursts.len(),
        0
    );
    println!(
        "{:>22}  {:>7}/{}  {:>10}",
        "+ block checksums",
        silent[1],
        bursts.len(),
        caught
    );
    for (name, val) in [("off", silent[0]), ("on", silent[1])] {
        sweep.gauge_set(
            "integrity_sdc_silent_runs",
            &[("block_checksums", name.to_string())],
            val as f64,
        );
    }
    sweep.gauge_set("integrity_sdc_blocks_caught", &[], caught as f64);
    println!(
        "\nA burst with an even number of flips per parity class sails through the\n\
         frame parity; only the end-to-end block checksum at the receive unit sees\n\
         it, replays the block, and hands the solver the reference bits."
    );
}
