//! Offline shim for `bytes`: the subset the SCU frame codec and host RPC
//! layer use — `BytesMut` as a growable byte buffer, big-endian
//! `BufMut::put_*` writers, and `Buf::get_*` readers over `&[u8]` cursors.

use std::ops::Deref;

/// Growable byte buffer, a thin wrapper over `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// A buffer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append every byte of `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side cursor operations (big-endian, like the real crate).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
}

/// Read-side cursor operations over a shrinking slice. The `get_*`
/// methods panic when too few bytes remain (callers bounds-check first,
/// matching the real crate's contract).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian u16.
    fn get_u16(&mut self) -> u16;
    /// Consume a big-endian u32.
    fn get_u32(&mut self) -> u32;
    /// Consume a big-endian u64.
    fn get_u64(&mut self) -> u64;
}

macro_rules! impl_get_be {
    ($name:ident, $t:ty) => {
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let (head, rest) = self.split_at(N);
            let v = <$t>::from_be_bytes(head.try_into().expect("sized slice"));
            *self = rest;
            v
        }
    };
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }

    impl_get_be!(get_u16, u16);
    impl_get_be!(get_u32, u32);
    impl_get_be!(get_u64, u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_u64(0x0102_0304_0506_0708);
        b.extend_from_slice(&[1, 2]);
        assert_eq!(b.len(), 17);
        let mut cur: &[u8] = &b;
        assert_eq!(cur.remaining(), 17);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0x0304_0506);
        assert_eq!(cur.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cur, &[1, 2]);
    }
}
