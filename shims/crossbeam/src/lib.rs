//! Offline shim for `crossbeam`: the `channel` module only. Unlike
//! `std::sync::mpsc`, crossbeam channels are multi-consumer and both ends
//! are `Clone`, so the shim implements a small mpmc queue over
//! `Mutex<VecDeque>` + `Condvar` rather than re-exporting std.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: Mutex<usize>,
    }

    /// The sending half of a channel. Cloning adds a producer.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Cloning adds a consumer; each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`]; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is drained and every sender has been dropped.
        Disconnected,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: Mutex::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            *self.0.senders.lock().unwrap() += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            *self.0.senders.lock().unwrap() -= 1;
            // Wake blocked receivers so they can observe disconnection.
            self.0.ready.notify_all();
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Queue `value`. Never blocks; the error variant exists only for
        /// API compatibility and is not produced by the shim.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pop the oldest queued message, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if *self.0.senders.lock().unwrap() == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if *self.0.senders.lock().unwrap() == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(7u64).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn both_ends_clone_and_disconnect() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(1u32).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx2.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(42u8).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
