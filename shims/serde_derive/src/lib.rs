//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking annotation — no code path serializes through serde — so
//! an empty expansion keeps every type compiling without the real proc-macro
//! stack (syn/quote are unavailable offline).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
