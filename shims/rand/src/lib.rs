//! Offline shim for `rand` 0.8: the subset the workspace uses — the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and [`rngs::StdRng`].
//!
//! The generator core is SplitMix64: tiny, fast, passes the statistical
//! tests that matter for fault sampling, and — crucially for this
//! workspace — fully deterministic from a `u64` seed on every platform.
//! It is **not** the real StdRng (ChaCha12); streams differ from upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Map 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// A value uniform in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step: mixes `state` forward and returns the output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64 core; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One mixing step decorrelates small consecutive seeds.
            let mut state = seed;
            splitmix64(&mut state);
            StdRng { state }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: u64 = r.gen_range(0..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
