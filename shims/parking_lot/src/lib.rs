//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free API (`lock()` returns the guard directly), implemented over
//! the std primitives. A poisoned std lock is recovered transparently,
//! matching parking_lot's behaviour of not propagating panics as poison.

use std::sync::PoisonError;

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
