//! Offline shim for `serde`: the `Serialize`/`Deserialize` trait names and
//! (behind the `derive` feature) no-op derive macros with the same names.
//!
//! The derives expand to nothing, so no type actually implements these
//! traits — which is fine, because nothing in the workspace takes a
//! `T: Serialize` bound or serializes through serde.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
