//! Offline shim for `criterion`: the API surface the workspace benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `sample_size`, the `criterion_group!`/`criterion_main!` macros), backed
//! by a plain wall-clock loop. It reports a mean ns/iter per benchmark on
//! stdout and does no statistics, plotting, or baseline storage — the
//! point is that `cargo bench` compiles and runs offline, not that the
//! numbers are publication-grade.

use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(&id.into(), DEFAULT_SAMPLES, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// End the group. (No-op in the shim; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and fault in lazy state.
        black_box(routine());
        // Scale the timed batch so fast routines aren't all-noise.
        let probe = Instant::now();
        black_box(routine());
        let once_ns = probe.elapsed().as_nanos().max(1);
        let iters = (1_000_000 / once_ns).clamp(1, 1_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        means.push(b.mean_ns);
    }
    let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
    println!("bench {id:<48} {mean:>14.1} ns/iter ({samples} samples)");
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_function(format!("fmt_{}", 3), |b| b.iter(|| black_box(3u64) * 2));
        group.finish();
    }
}
