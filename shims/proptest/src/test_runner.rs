//! Test execution: deterministic per-test RNG, case loop, and the
//! failure/rejection plumbing behind `prop_assert!`/`prop_assume!`.

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; the shim trades coverage for CI time.
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for the drawn inputs.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; draw fresh ones.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic generator handed to strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so every run of a given
    /// test draws the same inputs.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed session seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9CD0_C0DE_5EED_2026,
        }
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next() % bound
    }

    /// A float uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Execute `case` until `config.cases` cases pass, panicking on the first
/// failure. Rejected cases are skipped and retried with fresh draws, up to
/// a global attempt cap.
pub fn run(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::for_test(name);
    let max_attempts = (config.cases as u64).saturating_mul(20).max(64);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;

    for attempt in 0..max_attempts {
        if passed >= config.cases {
            return;
        }
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "property `{name}` failed at case {} (attempt {attempt}): {reason}",
                    passed + 1
                );
            }
        }
    }

    if passed < config.cases {
        panic!(
            "property `{name}` rejected too many inputs: {passed}/{} cases passed, \
             {rejected} rejections in {max_attempts} attempts",
            config.cases
        );
    }
}
