//! Offline shim for `proptest`: the subset this workspace's property tests
//! use. Each test runs a fixed number of cases with inputs drawn from a
//! deterministic per-test generator (seeded from the test name), so runs
//! are reproducible. Unlike upstream proptest there is **no shrinking**:
//! a failing case panics with the case index and the assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each generated `v`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.sample(rng))
    }
}

/// Chooses uniformly among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `variants`, each equally likely.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union(variants)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + (rng.next() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value covering the whole domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats over a wide range; avoids NaN/inf surprises.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// The full-domain strategy for `T` (shim of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`](fn@vec): a fixed length, `lo..hi`,
    /// or `lo..=hi`.
    pub trait SizeRange {
        /// Inclusive `(lo, hi)` bounds on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// A strategy yielding vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64 + 1;
            let len = self.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

/// A strategy choosing uniformly among the listed strategies, which must
/// all produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}

/// Discard the current case (does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: an optional
/// `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), &$config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                let __proptest_body =
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                __proptest_body()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..8, 0u64..20), c in 1usize..=6) {
            prop_assert!(a < 8);
            prop_assert!(b < 20, "b out of range: {}", b);
            prop_assert!((1..=6).contains(&c));
        }

        #[test]
        fn vec_oneof_map(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..4),
            w in prop::collection::vec(any::<u8>(), 1..=3),
            m in (0usize..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(v.len() < 4);
            prop_assert!(!w.is_empty() && w.len() <= 3);
            prop_assert_eq!(m % 2, 0);
            prop_assert_ne!(m, 11);
            if v.is_empty() {
                return Ok(());
            }
            prop_assume!(v[0] >= 1);
            prop_assert!(v[0] <= 2);
        }
    }

    #[test]
    fn same_name_same_draws() {
        let cfg = crate::test_runner::ProptestConfig::with_cases(4);
        let mut seen = Vec::new();
        crate::test_runner::run("stable", &cfg, |rng| {
            seen.push((5u64..100).sample(rng));
            Ok(())
        });
        let mut again = Vec::new();
        crate::test_runner::run("stable", &cfg, |rng| {
            again.push((5u64..100).sample(rng));
            Ok(())
        });
        assert_eq!(seen, again);
        assert_eq!(seen.len(), 4);
    }
}
