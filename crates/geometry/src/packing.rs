//! Torus-aware partition packing: free-region search, placement scoring
//! and fragmentation accounting over the physical mesh.
//!
//! The paper's partitioning story (§2.2/§3.1) lets the host carve the
//! 6-D machine into many concurrent logical partitions "without moving
//! cables". Once several tenants compete for the same 12,288 nodes, the
//! host needs more than the mapping math: it must know *where* a
//! requested sub-box still fits, which of the feasible placements
//! fragments the remaining free mesh least, and how shattered the free
//! space has become. [`OccupancyMap`] is that layer — a plain busy/free
//! mask over the physical torus with deterministic box search on top.
//! The scheduler (`qcdoc-sched`) drives it; the map itself knows nothing
//! about jobs or tenants.
//!
//! All searches are deterministic: origins are enumerated in rank order
//! (axis 0 fastest), ties break toward the lexicographically first
//! origin, so the same request stream always produces the same packing.

use crate::{Axis, NodeCoord, NodeId, PartitionSpec, TorusShape};

/// Upper bound on how many feasible origins [`OccupancyMap::best_fit`]
/// scores before settling. Origins are enumerated corner-first, so the
/// cap keeps the search `O(cap · volume)` on a near-empty machine while
/// still preferring snug placements; on a busy machine far fewer origins
/// fit in the first place.
pub const BEST_FIT_SCORE_CAP: usize = 64;

/// A busy/free mask over the nodes of a physical torus, with box-fit
/// search and packing heuristics. "Taken" covers anything the caller
/// cannot allocate over: busy, faulty, or unbooted nodes alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyMap {
    shape: TorusShape,
    taken: Vec<bool>,
}

impl OccupancyMap {
    /// An all-free map over `shape`.
    pub fn new(shape: TorusShape) -> OccupancyMap {
        let n = shape.node_count();
        OccupancyMap {
            shape,
            taken: vec![false; n],
        }
    }

    /// A map with the given taken mask (indexed by node rank). Panics if
    /// the mask length does not match the shape's node count.
    pub fn from_mask(shape: TorusShape, taken: Vec<bool>) -> OccupancyMap {
        assert_eq!(
            taken.len(),
            shape.node_count(),
            "mask length must match node count"
        );
        OccupancyMap { shape, taken }
    }

    /// The underlying torus shape.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Whether a node is free.
    pub fn is_free(&self, id: NodeId) -> bool {
        !self.taken[id.index()]
    }

    /// Mark one node taken or free.
    pub fn set_taken(&mut self, id: NodeId, taken: bool) {
        self.taken[id.index()] = taken;
    }

    /// Number of free nodes.
    pub fn free_count(&self) -> usize {
        self.taken.iter().filter(|&&t| !t).count()
    }

    /// Visit every node of the axis-aligned box at `origin` with the
    /// given `extents` (extents beyond the machine rank must be 1).
    fn for_each_box_node<F: FnMut(NodeCoord) -> bool>(
        &self,
        origin: NodeCoord,
        extents: &[usize],
        mut f: F,
    ) {
        let rank = self.shape.rank();
        let mut cursor = vec![0usize; rank];
        loop {
            let mut c = origin;
            for (axis, &off) in cursor.iter().enumerate() {
                c.set(axis, origin.get(axis) + off);
            }
            if !f(c) {
                return;
            }
            // Odometer over the box extents, axis 0 fastest.
            let mut axis = 0;
            loop {
                if axis == rank {
                    return;
                }
                cursor[axis] += 1;
                if cursor[axis] < extents.get(axis).copied().unwrap_or(1) {
                    break;
                }
                cursor[axis] = 0;
                axis += 1;
            }
        }
    }

    /// Whether the box fits inside the machine bounds at `origin`.
    pub fn box_in_bounds(&self, origin: NodeCoord, extents: &[usize]) -> bool {
        (0..self.shape.rank()).all(|axis| {
            origin.get(axis) + extents.get(axis).copied().unwrap_or(1) <= self.shape.extent(axis)
        }) && extents.len() <= 6
            && extents.iter().skip(self.shape.rank()).all(|&e| e == 1)
    }

    /// Whether every node of the box is free (the box must be in bounds).
    pub fn box_free(&self, origin: NodeCoord, extents: &[usize]) -> bool {
        let mut free = true;
        self.for_each_box_node(origin, extents, |c| {
            free = !self.taken[self.shape.rank_of(c).index()];
            free
        });
        free
    }

    /// Mark every node of the box taken.
    pub fn occupy_box(&mut self, origin: NodeCoord, extents: &[usize]) {
        let shape = self.shape.clone();
        let mut ids = Vec::new();
        self.for_each_box_node(origin, extents, |c| {
            ids.push(shape.rank_of(c));
            true
        });
        for id in ids {
            self.taken[id.index()] = true;
        }
    }

    /// Mark every node of the box free again.
    pub fn vacate_box(&mut self, origin: NodeCoord, extents: &[usize]) {
        let shape = self.shape.clone();
        let mut ids = Vec::new();
        self.for_each_box_node(origin, extents, |c| {
            ids.push(shape.rank_of(c));
            true
        });
        for id in ids {
            self.taken[id.index()] = false;
        }
    }

    /// Every origin (in rank order) at which the box is in bounds and
    /// entirely free, stopping after `limit` hits (`usize::MAX` for all).
    pub fn fit_origins(&self, extents: &[usize], limit: usize) -> Vec<NodeCoord> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let rank = self.shape.rank();
        let mut slack = Vec::with_capacity(rank);
        for axis in 0..rank {
            let ext = extents.get(axis).copied().unwrap_or(1);
            if ext > self.shape.extent(axis) {
                return out;
            }
            slack.push(self.shape.extent(axis) - ext);
        }
        if extents.iter().skip(rank).any(|&e| e != 1) {
            return out;
        }
        // Odometer over the slack volume, axis 0 fastest (rank order).
        let mut cursor = vec![0usize; rank];
        loop {
            let mut origin = NodeCoord::ORIGIN;
            for (axis, &off) in cursor.iter().enumerate() {
                origin.set(axis, off);
            }
            if self.box_free(origin, extents) {
                out.push(origin);
                if out.len() >= limit {
                    return out;
                }
            }
            let mut axis = 0;
            loop {
                if axis == rank {
                    return out;
                }
                cursor[axis] += 1;
                if cursor[axis] <= slack[axis] {
                    break;
                }
                cursor[axis] = 0;
                axis += 1;
            }
        }
    }

    /// Packing score of a feasible placement: the number of *free* nodes
    /// adjacent (over the 12 torus links) to the box but outside it.
    /// Lower is better — a snug placement flush against occupied nodes
    /// or closing a torus axis leaves the free mesh less fragmented than
    /// one floating in open space.
    pub fn placement_score(&self, origin: NodeCoord, extents: &[usize]) -> usize {
        let mut inside = std::collections::HashSet::new();
        self.for_each_box_node(origin, extents, |c| {
            inside.insert(c);
            true
        });
        let mut adjacent_free = std::collections::HashSet::new();
        for &c in &inside {
            for axis in 0..self.shape.rank() {
                for d in [Axis(axis as u8).plus(), Axis(axis as u8).minus()] {
                    let nb = self.shape.neighbour(c, d);
                    if !inside.contains(&nb) && !self.taken[self.shape.rank_of(nb).index()] {
                        adjacent_free.insert(nb);
                    }
                }
            }
        }
        adjacent_free.len()
    }

    /// The best feasible origin for the box under the packing score
    /// (ties break toward the lexicographically first origin), or `None`
    /// when the box fits nowhere. At most [`BEST_FIT_SCORE_CAP`]
    /// candidate origins are scored, corner-first.
    pub fn best_fit(&self, extents: &[usize]) -> Option<NodeCoord> {
        let candidates = self.fit_origins(extents, BEST_FIT_SCORE_CAP);
        let mut best: Option<(usize, NodeCoord)> = None;
        for origin in candidates {
            let score = self.placement_score(origin, extents);
            let better = match best {
                None => true,
                // Strict inequality keeps the earliest origin on ties.
                Some((s, _)) => score < s,
            };
            if better {
                if score == 0 {
                    return Some(origin);
                }
                best = Some((score, origin));
            }
        }
        best.map(|(_, origin)| origin)
    }

    /// How shattered the free mesh is with respect to a probe box:
    /// `1 − packable / free`, where `packable` is the number of free
    /// nodes covered by greedily best-fitting disjoint copies of the
    /// probe until none fits. `0.0` means every free node is reachable
    /// by some probe placement; `1.0` means none is (or nothing is
    /// free). Deterministic for a given map.
    pub fn fragmentation(&self, probe_extents: &[usize]) -> f64 {
        let free = self.free_count();
        if free == 0 {
            return 1.0;
        }
        let volume: usize = probe_extents.iter().product();
        let mut scratch = self.clone();
        let mut packed = 0usize;
        while let Some(origin) = scratch.best_fit(probe_extents) {
            scratch.occupy_box(origin, probe_extents);
            packed += volume;
        }
        1.0 - packed as f64 / free as f64
    }

    /// Whether the sub-box of a [`PartitionSpec`] is entirely free.
    pub fn spec_free(&self, spec: &PartitionSpec) -> bool {
        self.box_in_bounds(spec.origin, &spec.extents) && self.box_free(spec.origin, &spec.extents)
    }

    /// Occupy the sub-box of a validated spec.
    pub fn occupy_spec(&mut self, spec: &PartitionSpec) {
        self.occupy_box(spec.origin, &spec.extents);
    }

    /// Free the sub-box of a previously occupied spec.
    pub fn vacate_spec(&mut self, spec: &PartitionSpec) {
        self.vacate_box(spec.origin, &spec.extents);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_442() -> TorusShape {
        TorusShape::new(&[4, 4, 2])
    }

    #[test]
    fn empty_map_fits_everywhere_in_rank_order() {
        let map = OccupancyMap::new(shape_442());
        let fits = map.fit_origins(&[2, 2, 1], usize::MAX);
        // Slack 2 × slack 2 × slack 1 → 3 * 3 * 2 origins.
        assert_eq!(fits.len(), 18);
        assert_eq!(fits[0], NodeCoord::ORIGIN);
        // Axis 0 runs fastest.
        assert_eq!(fits[1], NodeCoord::from_slice(&[1, 0, 0]));
    }

    #[test]
    fn occupied_boxes_are_excluded() {
        let mut map = OccupancyMap::new(shape_442());
        map.occupy_box(NodeCoord::ORIGIN, &[4, 4, 1]);
        let fits = map.fit_origins(&[4, 4, 1], usize::MAX);
        assert_eq!(fits, vec![NodeCoord::from_slice(&[0, 0, 1])]);
        map.vacate_box(NodeCoord::ORIGIN, &[4, 4, 1]);
        assert_eq!(map.fit_origins(&[4, 4, 1], usize::MAX).len(), 2);
    }

    #[test]
    fn free_count_tracks_boxes() {
        let mut map = OccupancyMap::new(shape_442());
        assert_eq!(map.free_count(), 32);
        map.occupy_box(NodeCoord::from_slice(&[2, 2, 0]), &[2, 2, 2]);
        assert_eq!(map.free_count(), 24);
        assert!(!map.box_free(NodeCoord::from_slice(&[2, 2, 0]), &[1, 1, 1]));
        assert!(map.box_free(NodeCoord::ORIGIN, &[2, 2, 2]));
    }

    #[test]
    fn best_fit_prefers_snug_placements() {
        let mut map = OccupancyMap::new(TorusShape::new(&[8, 2]));
        // Occupy the left 2-column; a new 2x2 box packs snugly beside it
        // rather than in the middle of open space.
        map.occupy_box(NodeCoord::ORIGIN, &[2, 2]);
        let best = map.best_fit(&[2, 2]).unwrap();
        // Origins 2 (beside the occupied block, one open flank) and 6
        // (wrapping neighbour of the block on the other side) are both
        // snug; rank order prefers the first.
        assert_eq!(best, NodeCoord::from_slice(&[2, 0]));
    }

    #[test]
    fn whole_machine_placement_scores_zero() {
        let map = OccupancyMap::new(shape_442());
        assert_eq!(map.placement_score(NodeCoord::ORIGIN, &[4, 4, 2]), 0);
    }

    #[test]
    fn fragmentation_sees_shattered_free_space() {
        let mut map = OccupancyMap::new(TorusShape::new(&[4, 1]));
        assert_eq!(map.fragmentation(&[2, 1]), 0.0);
        // Take the two middle nodes: two isolated free nodes remain, and
        // no 2-box fits (boxes do not wrap).
        map.occupy_box(NodeCoord::from_slice(&[1, 0]), &[2, 1]);
        assert_eq!(map.fragmentation(&[2, 1]), 1.0);
        // Full machine: defined as fully fragmented.
        map.occupy_box(NodeCoord::ORIGIN, &[1, 1]);
        map.occupy_box(NodeCoord::from_slice(&[3, 0]), &[1, 1]);
        assert_eq!(map.fragmentation(&[1, 1]), 1.0);
    }

    #[test]
    fn oversized_boxes_fit_nowhere() {
        let map = OccupancyMap::new(shape_442());
        assert!(map.fit_origins(&[5, 1, 1], usize::MAX).is_empty());
        assert!(map.best_fit(&[4, 4, 4]).is_none());
    }

    #[test]
    fn spec_round_trip() {
        let mut map = OccupancyMap::new(shape_442());
        let spec = PartitionSpec {
            origin: NodeCoord::from_slice(&[0, 2, 0]),
            extents: vec![4, 2, 2],
            groups: vec![vec![0], vec![1, 2]],
        };
        assert!(map.spec_free(&spec));
        map.occupy_spec(&spec);
        assert!(!map.spec_free(&spec));
        assert_eq!(map.free_count(), 16);
        map.vacate_spec(&spec);
        assert!(map.spec_free(&spec));
    }
}
