//! Block decomposition of a physics lattice onto a machine partition.
//!
//! "On a four-dimensional machine, each processor becomes responsible for the
//! local variables associated with a space-time hypercube" (§1). The mapping
//! is the trivial load-balanced one: the global lattice is cut into equal
//! hyper-rectangles, one per node, with lattice axis *i* running along
//! logical machine axis *i*. Nearest-neighbour (and second/third-neighbour,
//! for improved discretizations) couplings then only ever touch the twelve
//! mesh links of a node.

use crate::{NodeCoord, TorusShape};
use serde::{Deserialize, Serialize};

/// The local hyper-rectangle of lattice sites owned by one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalVolume {
    dims: Vec<usize>,
}

impl LocalVolume {
    /// A local volume with the given per-axis extents.
    pub fn new(dims: &[usize]) -> LocalVolume {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 1));
        LocalVolume {
            dims: dims.to_vec(),
        }
    }

    /// The canonical `4^4` local volume of the paper's 128-node benchmarks.
    pub fn hyper4() -> LocalVolume {
        LocalVolume::new(&[4, 4, 4, 4])
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of local sites.
    pub fn sites(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of boundary sites on the face normal to `axis` — the sites
    /// whose neighbour in that direction lives on the adjacent node. This is
    /// the per-direction communication surface for nearest-neighbour
    /// stencils.
    pub fn surface(&self, axis: usize) -> usize {
        self.sites() / self.dims[axis]
    }

    /// Total number of face sites over all `2 × rank` directions.
    pub fn total_surface(&self) -> usize {
        (0..self.dims.len()).map(|a| 2 * self.surface(a)).sum()
    }

    /// Surface-to-volume ratio — the hard-scaling figure of merit (§1): as
    /// nodes are added to a fixed problem, this grows and communication
    /// dominates unless latency is low.
    pub fn surface_to_volume(&self) -> f64 {
        self.total_surface() as f64 / self.sites() as f64
    }
}

/// Errors from lattice → machine mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// Lattice rank differs from machine rank.
    RankMismatch {
        /// Lattice rank.
        lattice: usize,
        /// Machine rank.
        machine: usize,
    },
    /// A lattice extent is not divisible by the machine extent on that axis.
    NotDivisible {
        /// Offending axis.
        axis: usize,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::RankMismatch { lattice, machine } => {
                write!(f, "lattice rank {lattice} != machine rank {machine}")
            }
            MappingError::NotDivisible { axis } => {
                write!(
                    f,
                    "lattice extent not divisible by machine extent on axis {axis}"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A validated decomposition of a global lattice over a logical machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatticeMapping {
    global: Vec<usize>,
    machine: TorusShape,
    local: LocalVolume,
}

impl LatticeMapping {
    /// Decompose a `global` lattice over `machine`, axis by axis.
    pub fn new(global: &[usize], machine: &TorusShape) -> Result<LatticeMapping, MappingError> {
        if global.len() != machine.rank() {
            return Err(MappingError::RankMismatch {
                lattice: global.len(),
                machine: machine.rank(),
            });
        }
        let mut local = Vec::with_capacity(global.len());
        for (axis, &extent) in global.iter().enumerate() {
            if !extent.is_multiple_of(machine.extent(axis)) {
                return Err(MappingError::NotDivisible { axis });
            }
            local.push(extent / machine.extent(axis));
        }
        Ok(LatticeMapping {
            global: global.to_vec(),
            machine: machine.clone(),
            local: LocalVolume::new(&local),
        })
    }

    /// Global lattice extents.
    pub fn global_dims(&self) -> &[usize] {
        &self.global
    }

    /// The machine shape this mapping targets.
    pub fn machine(&self) -> &TorusShape {
        &self.machine
    }

    /// The per-node local volume.
    pub fn local(&self) -> &LocalVolume {
        &self.local
    }

    /// Total number of global lattice sites.
    pub fn global_sites(&self) -> usize {
        self.global.iter().product()
    }

    /// The machine node owning global site `site` (per-axis coordinates).
    pub fn owner(&self, site: &[usize]) -> NodeCoord {
        assert_eq!(site.len(), self.global.len());
        let mut c = NodeCoord::ORIGIN;
        for (axis, &s) in site.iter().enumerate() {
            debug_assert!(s < self.global[axis]);
            c.set(axis, s / self.local.dims()[axis]);
        }
        c
    }

    /// Local coordinates of global site `site` within its owner's volume.
    pub fn local_site(&self, site: &[usize]) -> Vec<usize> {
        site.iter()
            .zip(self.local.dims())
            .map(|(&g, &l)| g % l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_benchmark_mapping() {
        // §4: "A 4^4 local volume … translates into a 32^3 x 64 lattice size
        // for a 8,192 node machine" — machine 8x8x8x16.
        let machine = TorusShape::new(&[8, 8, 8, 16]);
        assert_eq!(machine.node_count(), 8192);
        let m = LatticeMapping::new(&[32, 32, 32, 64], &machine).unwrap();
        assert_eq!(m.local().dims(), &[4, 4, 4, 4]);
        assert_eq!(m.local().sites(), 256);
    }

    #[test]
    fn surface_counts() {
        let v = LocalVolume::hyper4();
        for axis in 0..4 {
            assert_eq!(v.surface(axis), 64);
        }
        assert_eq!(v.total_surface(), 8 * 64);
        assert!((v.surface_to_volume() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn surface_shrinks_with_volume() {
        // Hard scaling in reverse: bigger local volume, smaller ratio.
        let small = LocalVolume::new(&[2, 2, 2, 2]);
        let big = LocalVolume::new(&[8, 8, 8, 8]);
        assert!(small.surface_to_volume() > big.surface_to_volume());
    }

    #[test]
    fn owner_and_local_site() {
        let machine = TorusShape::new(&[2, 2, 2, 2]);
        let m = LatticeMapping::new(&[8, 8, 8, 8], &machine).unwrap();
        let site = [5, 0, 3, 7];
        let owner = m.owner(&site);
        assert_eq!(owner.get(0), 1);
        assert_eq!(owner.get(1), 0);
        assert_eq!(owner.get(2), 0);
        assert_eq!(owner.get(3), 1);
        assert_eq!(m.local_site(&site), vec![1, 0, 3, 3]);
    }

    #[test]
    fn indivisible_rejected() {
        let machine = TorusShape::new(&[3, 2]);
        assert_eq!(
            LatticeMapping::new(&[8, 8], &machine),
            Err(MappingError::NotDivisible { axis: 0 })
        );
    }

    #[test]
    fn rank_mismatch_rejected() {
        let machine = TorusShape::new(&[2, 2]);
        assert_eq!(
            LatticeMapping::new(&[8, 8, 8], &machine),
            Err(MappingError::RankMismatch {
                lattice: 3,
                machine: 2
            })
        );
    }

    #[test]
    fn every_site_has_exactly_one_owner() {
        let machine = TorusShape::new(&[2, 4]);
        let m = LatticeMapping::new(&[4, 8], &machine).unwrap();
        let mut counts = std::collections::HashMap::new();
        for x in 0..4 {
            for y in 0..8 {
                *counts.entry(m.owner(&[x, y])).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts.len(), 8);
        assert!(counts.values().all(|&c| c == m.local().sites()));
    }
}
