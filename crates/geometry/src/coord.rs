//! Node identifiers and coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense rank of a node within a machine or partition, `0 .. node_count`.
///
/// Ranks follow lexicographic order of the node coordinate with axis 0
/// fastest, matching the order in which the host's `qdaemon` enumerates
/// nodes during boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Rank as usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Coordinate of a node in a torus of up to six dimensions.
///
/// Stored as a fixed six-element array; axes beyond the torus rank are held
/// at zero so a coordinate is meaningful only together with its
/// [`TorusShape`](crate::TorusShape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct NodeCoord(pub [u32; 6]);

impl NodeCoord {
    /// The origin coordinate.
    pub const ORIGIN: NodeCoord = NodeCoord([0; 6]);

    /// Build from a slice of at most six components (missing axes are zero).
    pub fn from_slice(c: &[u32]) -> NodeCoord {
        assert!(c.len() <= 6, "coordinate has more than 6 components");
        let mut arr = [0u32; 6];
        arr[..c.len()].copy_from_slice(c);
        NodeCoord(arr)
    }

    /// Component along `axis` as usize.
    #[inline]
    pub fn get(&self, axis: usize) -> usize {
        self.0[axis] as usize
    }

    /// Set the component along `axis`.
    #[inline]
    pub fn set(&mut self, axis: usize, v: usize) {
        self.0[axis] = v as u32;
    }
}

impl fmt::Display for NodeCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{},{},{})",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_pads_with_zeros() {
        let c = NodeCoord::from_slice(&[3, 1]);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(1), 1);
        for ax in 2..6 {
            assert_eq!(c.get(ax), 0);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut c = NodeCoord::ORIGIN;
        c.set(4, 7);
        assert_eq!(c.get(4), 7);
        assert_eq!(c.get(3), 0);
    }

    #[test]
    #[should_panic(expected = "more than 6")]
    fn from_slice_rejects_seven() {
        let _ = NodeCoord::from_slice(&[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(NodeCoord::from_slice(&[1, 2]).to_string(), "(1,2,0,0,0,0)");
    }
}
