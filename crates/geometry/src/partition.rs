//! Software partitioning of the physical 6-D mesh into logical machines.
//!
//! A [`PartitionSpec`] selects a sub-box of the physical torus and groups its
//! axes into logical dimensions. Each group is folded into a ring with a
//! [`FoldCycle`], so the logical machine is itself a
//! torus of rank 1..=6 whose nearest-neighbour hops are all physical
//! nearest-neighbour hops (unit dilation). This is the software realisation
//! of §2.2's "lower-dimensional partitions of the machine … without moving
//! cables" and of the qdaemon's remapping service (§3.1: "a user requests
//! that the qdaemon remap their partition to a dimensionality between one
//! and six, before program execution begins").

use crate::fold::{FoldCycle, FoldError};
use crate::{Direction, NodeCoord, NodeId, TorusShape};
use serde::{Deserialize, Serialize};

/// Selection of a sub-box of the physical machine plus an axis grouping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Origin of the sub-box in physical coordinates.
    pub origin: NodeCoord,
    /// Extent of the sub-box along each physical axis (must divide into the
    /// machine; `extent[a] == machine extent` means the full axis is used).
    pub extents: Vec<usize>,
    /// Logical axis groups: each inner vec lists physical axis indices, in
    /// fold order. Every non-degenerate physical axis must appear in exactly
    /// one group.
    pub groups: Vec<Vec<usize>>,
}

impl PartitionSpec {
    /// The whole machine folded to a logical torus with the given grouping.
    pub fn whole_machine(machine: &TorusShape, groups: &[&[usize]]) -> PartitionSpec {
        PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: machine.dims().to_vec(),
            groups: groups.iter().map(|g| g.to_vec()).collect(),
        }
    }

    /// The whole machine kept at its native rank (identity grouping).
    pub fn native(machine: &TorusShape) -> PartitionSpec {
        let groups = (0..machine.rank()).map(|a| vec![a]).collect();
        PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: machine.dims().to_vec(),
            groups,
        }
    }
}

/// Why a partition could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The sub-box does not fit inside the machine.
    OutOfBounds {
        /// Physical axis where the violation occurred.
        axis: usize,
    },
    /// A physical axis with extent > 1 was not assigned to any group, or was
    /// assigned twice.
    BadAxisCover {
        /// The offending physical axis.
        axis: usize,
    },
    /// A single-axis group uses only part of the physical axis, so its ring
    /// cannot close with unit dilation.
    PartialSingleAxis {
        /// The offending physical axis.
        axis: usize,
    },
    /// A fold inside a group failed.
    Fold(FoldError),
    /// The grouping produced a logical rank outside 1..=6.
    BadRank {
        /// The offending rank.
        rank: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::OutOfBounds { axis } => {
                write!(f, "partition sub-box exceeds machine extent on axis {axis}")
            }
            PartitionError::BadAxisCover { axis } => {
                write!(f, "physical axis {axis} must appear in exactly one group")
            }
            PartitionError::PartialSingleAxis { axis } => write!(
                f,
                "single-axis group on axis {axis} does not span the full physical extent; \
                 the logical ring cannot close"
            ),
            PartitionError::Fold(e) => write!(f, "fold error: {e}"),
            PartitionError::BadRank { rank } => {
                write!(f, "logical rank {rank} outside 1..=6")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<FoldError> for PartitionError {
    fn from(e: FoldError) -> Self {
        PartitionError::Fold(e)
    }
}

/// A validated logical machine carved out of the physical torus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    machine: TorusShape,
    spec: PartitionSpec,
    logical: TorusShape,
    folds: Vec<FoldCycle>,
}

impl Partition {
    /// Validate `spec` against `machine` and build the partition.
    pub fn new(machine: &TorusShape, spec: PartitionSpec) -> Result<Partition, PartitionError> {
        // Sub-box bounds.
        for axis in 0..machine.rank() {
            let ext = spec.extents.get(axis).copied().unwrap_or(1);
            if spec.origin.get(axis) + ext > machine.extent(axis) {
                return Err(PartitionError::OutOfBounds { axis });
            }
        }
        // Axis cover: every axis with sub-extent > 1 in exactly one group;
        // no axis in more than one group.
        let mut count = vec![0usize; machine.rank()];
        for g in &spec.groups {
            for &a in g {
                if a >= machine.rank() {
                    return Err(PartitionError::BadAxisCover { axis: a });
                }
                count[a] += 1;
            }
        }
        for (axis, &covered) in count.iter().enumerate() {
            let needed = spec.extents[axis] > 1;
            if (needed && covered != 1) || (!needed && covered > 1) {
                return Err(PartitionError::BadAxisCover { axis });
            }
        }
        let rank = spec.groups.len();
        if rank == 0 || rank > 6 {
            return Err(PartitionError::BadRank { rank });
        }
        // Single-axis groups must span the full physical extent (their ring
        // closes through the torus wrap). Multi-axis groups fold via Gray
        // cycles, which never use wrap links, so sub-boxes are fine.
        let mut folds = Vec::with_capacity(rank);
        let mut logical_dims = Vec::with_capacity(rank);
        for g in &spec.groups {
            let nontrivial: Vec<usize> =
                g.iter().copied().filter(|&a| spec.extents[a] > 1).collect();
            if let [axis] = nontrivial[..] {
                // The ring of a group with exactly one non-degenerate axis
                // closes through the torus wrap, which only exists if the
                // group spans the full physical extent.
                if spec.extents[axis] != machine.extent(axis) {
                    return Err(PartitionError::PartialSingleAxis { axis });
                }
            } else if let Some(&top) = nontrivial.last() {
                // A multi-axis fold closes through the wrap of its top axis
                // (the Gray cycle ends at (0,…,0,r_top−1)). That hop is a
                // plain box edge when the top extent is 2; otherwise the
                // group must span the full physical extent of the top axis
                // so the wrap cable is inside the partition.
                if spec.extents[top] != 2 && spec.extents[top] != machine.extent(top) {
                    return Err(PartitionError::PartialSingleAxis { axis: top });
                }
            }
            let dims: Vec<usize> = g.iter().map(|&a| spec.extents[a]).collect();
            let fold = FoldCycle::new(&dims)?;
            logical_dims.push(fold.len());
            folds.push(fold);
        }
        Ok(Partition {
            machine: machine.clone(),
            logical: TorusShape::new(&logical_dims),
            spec,
            folds,
        })
    }

    /// The logical torus shape of this partition.
    pub fn logical_shape(&self) -> &TorusShape {
        &self.logical
    }

    /// The physical machine this partition lives in.
    pub fn machine_shape(&self) -> &TorusShape {
        &self.machine
    }

    /// The spec this partition was built from.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Number of nodes in the partition.
    pub fn node_count(&self) -> usize {
        self.logical.node_count()
    }

    /// Physical coordinate of the node at logical coordinate `lc`.
    pub fn physical_of(&self, lc: NodeCoord) -> NodeCoord {
        let mut pc = self.spec.origin;
        for (li, (group, fold)) in self.spec.groups.iter().zip(&self.folds).enumerate() {
            let within = fold.coord_at(lc.get(li));
            for (&axis, &off) in group.iter().zip(&within) {
                pc.set(axis, self.spec.origin.get(axis) + off);
            }
        }
        pc
    }

    /// Logical coordinate of the node at physical coordinate `pc`, if it is
    /// inside the partition.
    pub fn logical_of(&self, pc: NodeCoord) -> Option<NodeCoord> {
        // Bounds check.
        for axis in 0..self.machine.rank() {
            let rel = pc.get(axis).checked_sub(self.spec.origin.get(axis))?;
            if rel >= self.spec.extents[axis] {
                return None;
            }
        }
        let mut lc = NodeCoord::ORIGIN;
        for (li, (group, fold)) in self.spec.groups.iter().zip(&self.folds).enumerate() {
            let within: Vec<usize> = group
                .iter()
                .map(|&a| pc.get(a) - self.spec.origin.get(a))
                .collect();
            lc.set(li, fold.pos_of(&within));
        }
        Some(lc)
    }

    /// Physical node id of the logical node `id` (rank in the logical shape).
    pub fn physical_id(&self, id: NodeId) -> NodeId {
        self.machine
            .rank_of(self.physical_of(self.logical.coord_of(id)))
    }

    /// Logical coordinate of the neighbour of `lc` in logical direction `d`.
    pub fn logical_neighbour(&self, lc: NodeCoord, d: Direction) -> NodeCoord {
        self.logical.neighbour(lc, d)
    }

    /// Whether this partition's physical sub-box intersects `other`'s.
    /// Placement never wraps a sub-box around the torus (origins are
    /// bounds-checked against the extents), so this is a plain interval
    /// intersection per axis. Two partitions that overlap cannot be
    /// concurrently allocated — the qdaemon refuses the second.
    pub fn overlaps(&self, other: &Partition) -> bool {
        debug_assert_eq!(
            self.machine, other.machine,
            "overlap is only meaningful within one machine"
        );
        (0..self.machine.rank()).all(|axis| {
            let a_lo = self.spec.origin.get(axis);
            let a_hi = a_lo + self.spec.extents[axis];
            let b_lo = other.spec.origin.get(axis);
            let b_hi = b_lo + other.spec.extents[axis];
            a_lo < b_hi && b_lo < a_hi
        })
    }

    /// Maximum physical hop distance between any pair of logical
    /// nearest-neighbours — the *dilation* of the embedding. A valid QCDOC
    /// partition always has dilation 1.
    pub fn dilation(&self) -> usize {
        let mut worst = 0;
        for lc in self.logical.coords() {
            for axis in 0..self.logical.rank() {
                for dir in [
                    crate::Axis(axis as u8).plus(),
                    crate::Axis(axis as u8).minus(),
                ] {
                    if self.logical.extent(axis) == 1 {
                        continue;
                    }
                    let nb = self.logical_neighbour(lc, dir);
                    let d = self
                        .machine
                        .distance(self.physical_of(lc), self.physical_of(nb));
                    worst = worst.max(d);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Axis;

    fn rack() -> TorusShape {
        TorusShape::rack_1024()
    }

    #[test]
    fn native_partition_is_identity() {
        let m = rack();
        let p = Partition::new(&m, PartitionSpec::native(&m)).unwrap();
        assert_eq!(p.logical_shape(), &m);
        for id in 0..64 {
            assert_eq!(p.physical_id(NodeId(id)), NodeId(id));
        }
        assert_eq!(p.dilation(), 1);
    }

    #[test]
    fn rack_folds_to_4d() {
        // 8x4x4x2x2x2 -> logical 8x4x4x8 by folding the last three axes.
        let m = rack();
        let spec = PartitionSpec::whole_machine(&m, &[&[0], &[1], &[2], &[3, 4, 5]]);
        let p = Partition::new(&m, spec).unwrap();
        assert_eq!(p.logical_shape().dims(), &[8, 4, 4, 8]);
        assert_eq!(p.node_count(), 1024);
        assert_eq!(
            p.dilation(),
            1,
            "fold must preserve nearest-neighbour adjacency"
        );
    }

    #[test]
    fn rack_folds_to_1d_ring() {
        let m = rack();
        let spec = PartitionSpec::whole_machine(&m, &[&[0, 1, 2, 3, 4, 5]]);
        let p = Partition::new(&m, spec).unwrap();
        assert_eq!(p.logical_shape().dims(), &[1024]);
        assert_eq!(p.dilation(), 1);
    }

    #[test]
    fn logical_physical_bijection() {
        let m = rack();
        let spec = PartitionSpec::whole_machine(&m, &[&[0], &[1, 2], &[3, 4, 5]]);
        let p = Partition::new(&m, spec).unwrap();
        let mut seen = std::collections::HashSet::new();
        for lc in p.logical_shape().coords() {
            let pc = p.physical_of(lc);
            assert!(seen.insert(pc), "physical node mapped twice");
            assert_eq!(p.logical_of(pc), Some(lc));
        }
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    fn sub_box_partition() {
        // Half the rack along axis 0, folded 4D; multi-axis groups avoid
        // wrap links so the sub-box closes fine.
        let m = rack();
        let mut origin = NodeCoord::ORIGIN;
        origin.set(0, 4);
        let spec = PartitionSpec {
            origin,
            extents: vec![4, 4, 4, 2, 2, 2],
            groups: vec![vec![0, 3], vec![1], vec![2], vec![4, 5]],
        };
        let p = Partition::new(&m, spec).unwrap();
        assert_eq!(p.logical_shape().dims(), &[8, 4, 4, 4]);
        assert_eq!(p.node_count(), 512);
        assert_eq!(p.dilation(), 1);
        // Node outside the sub-box is not in the partition.
        assert_eq!(p.logical_of(NodeCoord::ORIGIN), None);
    }

    #[test]
    fn partial_single_axis_rejected() {
        let m = rack();
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: vec![4, 4, 4, 2, 2, 2], // axis 0 is half of 8
            groups: vec![vec![0], vec![1], vec![2], vec![3, 4, 5]],
        };
        assert_eq!(
            Partition::new(&m, spec),
            Err(PartitionError::PartialSingleAxis { axis: 0 })
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = rack();
        let mut origin = NodeCoord::ORIGIN;
        origin.set(1, 2);
        let spec = PartitionSpec {
            origin,
            extents: vec![8, 4, 4, 2, 2, 2], // origin 2 + extent 4 > 4
            groups: vec![vec![0], vec![1], vec![2], vec![3, 4, 5]],
        };
        assert_eq!(
            Partition::new(&m, spec),
            Err(PartitionError::OutOfBounds { axis: 1 })
        );
    }

    #[test]
    fn double_cover_rejected() {
        let m = rack();
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: m.dims().to_vec(),
            groups: vec![vec![0, 1], vec![1, 2], vec![3, 4, 5]],
        };
        assert_eq!(
            Partition::new(&m, spec),
            Err(PartitionError::BadAxisCover { axis: 1 })
        );
    }

    #[test]
    fn missing_axis_rejected() {
        let m = rack();
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: m.dims().to_vec(),
            groups: vec![vec![0], vec![1], vec![2], vec![3, 4]], // axis 5 missing
        };
        assert_eq!(
            Partition::new(&m, spec),
            Err(PartitionError::BadAxisCover { axis: 5 })
        );
    }

    #[test]
    fn neighbour_in_folded_axis_is_physical_neighbour() {
        let m = rack();
        let spec = PartitionSpec::whole_machine(&m, &[&[0], &[1], &[2], &[3, 4, 5]]);
        let p = Partition::new(&m, spec).unwrap();
        let t_axis = Axis(3);
        for lc in p.logical_shape().coords() {
            let nb = p.logical_neighbour(lc, t_axis.plus());
            assert_eq!(m.distance(p.physical_of(lc), p.physical_of(nb)), 1);
        }
    }
}
