//! Dimension folding: Hamiltonian cycles through sub-tori.
//!
//! To carve a 4-D machine out of the 6-D mesh *in software* (§2.2: "we chose
//! to make the mesh network six dimensional, so we can make lower-dimensional
//! partitions of the machine in software, without moving cables"), several
//! physical axes are folded into one logical axis. The logical axis must be a
//! *ring* (lattice QCD is periodic) and every logical hop must be a physical
//! nearest-neighbour hop (unit dilation), so the fold is a Hamiltonian cycle
//! through the folded sub-box.
//!
//! We use the reflected mixed-radix Gray code: consecutive codewords differ
//! by ±1 in exactly one digit, so every interior step is a mesh edge. When
//! **all radices are even**, the final codeword is `(0, …, 0, r_top − 1)`,
//! which is adjacent to the first codeword `(0, …, 0)` through the torus
//! wrap of the top axis (and through an ordinary box edge when
//! `r_top == 2`). Partitions therefore order each fold so its top axis
//! either spans the full physical extent (wrap cable available) or has
//! extent 2 (wrap coincides with the box edge).

use serde::{Deserialize, Serialize};

/// A Hamiltonian cycle through a `dims[0] × … × dims[k-1]` box.
///
/// Positions along the cycle map bijectively to box coordinates; consecutive
/// positions (cyclically) differ by exactly one unit in one coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldCycle {
    dims: Vec<usize>,
    len: usize,
}

/// Reasons a fold cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// A multi-axis fold contained an odd extent ≥ 3; the Gray-code cycle
    /// cannot close.
    OddExtent {
        /// The offending extent.
        extent: usize,
    },
    /// The fold had no axes.
    Empty,
}

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::OddExtent { extent } => write!(
                f,
                "cannot fold axes with odd extent {extent}: Gray-code cycle does not close"
            ),
            FoldError::Empty => write!(f, "fold must contain at least one axis"),
        }
    }
}

impl std::error::Error for FoldError {}

impl FoldCycle {
    /// Build a fold cycle through a box with the given extents.
    ///
    /// Extents of 1 are allowed (they are degenerate). If more than one
    /// extent exceeds 1, all extents greater than 1 must be even.
    pub fn new(dims: &[usize]) -> Result<FoldCycle, FoldError> {
        if dims.is_empty() {
            return Err(FoldError::Empty);
        }
        let nontrivial: Vec<usize> = dims.iter().copied().filter(|&d| d > 1).collect();
        if nontrivial.len() > 1 {
            if let Some(&odd) = nontrivial.iter().find(|&&d| d % 2 == 1) {
                return Err(FoldError::OddExtent { extent: odd });
            }
        }
        Ok(FoldCycle {
            dims: dims.to_vec(),
            len: dims.iter().product(),
        })
    }

    /// Length of the cycle (= product of extents).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cycle is a single point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extents of the folded box.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinate at position `pos` along the cycle (reflected mixed-radix
    /// Gray code, digit 0 fastest).
    ///
    /// The reflected construction: the top digit steps through its radix in
    /// order, and each time it takes an odd value the entire lower-digit
    /// sub-sequence is traversed in reverse, so consecutive positions differ
    /// by exactly ±1 in exactly one digit.
    pub fn coord_at(&self, pos: usize) -> Vec<usize> {
        assert!(
            pos < self.len,
            "fold position {pos} out of range {}",
            self.len
        );
        let k = self.dims.len();
        let mut digits = vec![0usize; k];
        let mut idx = pos;
        let mut total = self.len;
        let mut reversed = false;
        for j in (0..k).rev() {
            if reversed {
                idx = total - 1 - idx;
            }
            let lower = total / self.dims[j];
            digits[j] = idx / lower;
            idx %= lower;
            reversed = digits[j] % 2 == 1;
            total = lower;
        }
        digits
    }

    /// Position along the cycle of a box coordinate (inverse of
    /// [`FoldCycle::coord_at`]).
    pub fn pos_of(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.dims.len(), "coordinate rank mismatch");
        // Rebuild the index bottom-up, undoing each level's reversal. Level
        // j is traversed in reverse exactly when the digit above it is odd.
        let mut idx = 0usize;
        let mut total = 1usize;
        for j in 0..coord.len() {
            debug_assert!(coord[j] < self.dims[j], "coordinate out of bounds");
            let level_total = total * self.dims[j];
            let fwd = coord[j] * total + idx;
            let reversed = if j + 1 < coord.len() {
                coord[j + 1] % 2 == 1
            } else {
                false
            };
            idx = if reversed { level_total - 1 - fwd } else { fwd };
            total = level_total;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Torus adjacency: exactly one digit differs, by ±1 or by a wrap.
    fn torus_adjacent(a: &[usize], b: &[usize], dims: &[usize]) -> bool {
        let mut diffs = 0;
        let mut unit = true;
        for ((&x, &y), &r) in a.iter().zip(b).zip(dims) {
            if x != y {
                diffs += 1;
                let d = x.abs_diff(y);
                unit &= d == 1 || d == r - 1;
            }
        }
        diffs == 1 && unit
    }

    /// Box adjacency: exactly one digit differs, by ±1 (no wrap).
    fn box_adjacent(a: &[usize], b: &[usize]) -> bool {
        let mut diffs = 0;
        let mut unit = true;
        for (&x, &y) in a.iter().zip(b) {
            if x != y {
                diffs += 1;
                unit &= x.abs_diff(y) == 1;
            }
        }
        diffs == 1 && unit
    }

    #[test]
    fn binary_gray_code() {
        let f = FoldCycle::new(&[2, 2]).unwrap();
        let seq: Vec<_> = (0..4).map(|i| f.coord_at(i)).collect();
        assert_eq!(seq, vec![vec![0, 0], vec![1, 0], vec![1, 1], vec![0, 1]]);
    }

    #[test]
    fn cycle_is_hamiltonian_and_closes() {
        for dims in [
            vec![4, 2],
            vec![2, 2, 2],
            vec![8, 4],
            vec![4, 2, 2],
            vec![2, 4, 2, 2],
        ] {
            let f = FoldCycle::new(&dims).unwrap();
            let n = f.len();
            let mut seen = vec![false; n];
            for i in 0..n {
                let c = f.coord_at(i);
                let next = f.coord_at((i + 1) % n);
                assert!(
                    torus_adjacent(&c, &next, &dims),
                    "{dims:?}: step {i} not adjacent: {c:?} -> {next:?}"
                );
                let mut flat = 0usize;
                for j in (0..dims.len()).rev() {
                    flat = flat * dims[j] + c[j];
                }
                assert!(!seen[flat], "{dims:?}: coordinate visited twice");
                seen[flat] = true;
            }
            assert!(seen.iter().all(|&s| s), "{dims:?}: not Hamiltonian");
        }
    }

    #[test]
    fn interior_steps_are_box_edges() {
        // Only the closing step may use a wrap link, and only on the top
        // axis — the property the partition validity rules rely on.
        for dims in [vec![4, 2], vec![8, 4], vec![4, 4, 2], vec![2, 2, 2, 2]] {
            let f = FoldCycle::new(&dims).unwrap();
            let n = f.len();
            for i in 0..n - 1 {
                let a = f.coord_at(i);
                let b = f.coord_at(i + 1);
                assert!(
                    box_adjacent(&a, &b),
                    "{dims:?}: interior step {i} used a wrap"
                );
            }
            // Closing step: all digits equal except the top one, which goes
            // from r_top - 1 back to 0.
            let last = f.coord_at(n - 1);
            let first = f.coord_at(0);
            let top = dims.len() - 1;
            assert_eq!(&last[..top], &first[..top]);
            assert_eq!(last[top], dims[top] - 1);
            assert_eq!(first[top], 0);
        }
    }

    #[test]
    fn pos_of_inverts_coord_at() {
        for dims in [
            vec![4, 2],
            vec![2, 2, 2],
            vec![6, 2],
            vec![3],
            vec![1, 4, 2],
        ] {
            let f = FoldCycle::new(&dims).unwrap();
            for i in 0..f.len() {
                assert_eq!(f.pos_of(&f.coord_at(i)), i, "dims {dims:?} pos {i}");
            }
        }
    }

    #[test]
    fn single_axis_is_identity_path() {
        let f = FoldCycle::new(&[5]).unwrap();
        for i in 0..5 {
            assert_eq!(f.coord_at(i), vec![i]);
        }
    }

    #[test]
    fn trivial_extents_are_skipped() {
        let f = FoldCycle::new(&[1, 4, 1, 2]).unwrap();
        assert_eq!(f.len(), 8);
        // Still a Hamiltonian cycle over the 4x2 sub-box.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            seen.insert(f.coord_at(i));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn odd_multi_axis_fold_rejected() {
        assert_eq!(
            FoldCycle::new(&[3, 3]),
            Err(FoldError::OddExtent { extent: 3 })
        );
        assert_eq!(
            FoldCycle::new(&[4, 3]),
            Err(FoldError::OddExtent { extent: 3 })
        );
    }

    #[test]
    fn empty_fold_rejected() {
        assert_eq!(FoldCycle::new(&[]), Err(FoldError::Empty));
    }

    #[test]
    fn extent_two_top_axis_closes_without_wrap() {
        // When the top axis has extent 2 the closing hop (1 -> 0) is an
        // ordinary box edge, so such folds work in any sub-box.
        let f = FoldCycle::new(&[4, 4, 2]).unwrap();
        let n = f.len();
        for i in 0..n {
            let a = f.coord_at(i);
            let b = f.coord_at((i + 1) % n);
            assert!(box_adjacent(&a, &b), "step {i}: {a:?} -> {b:?}");
        }
    }
}
