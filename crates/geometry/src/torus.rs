//! Torus shapes and the coordinate ↔ rank bijection.

use crate::{Direction, NodeCoord, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a torus of rank 1..=6: the extent of each axis.
///
/// The physical QCDOC machines in the paper are all rank-6 (e.g. the first
/// 1024-node rack is `8×4×4×2×2×2`, §4); logical partitions carved out in
/// software may have lower rank.
///
/// ```
/// use qcdoc_geometry::{Axis, TorusShape};
///
/// let rack = TorusShape::rack_1024();
/// assert_eq!(rack.node_count(), 1024);
/// // Wrap-around neighbours on every axis.
/// let origin = rack.coord_of(qcdoc_geometry::NodeId(0));
/// let back = rack.neighbour(origin, Axis(0).minus());
/// assert_eq!(back.get(0), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TorusShape {
    dims: Vec<usize>,
}

impl TorusShape {
    /// Create a torus shape. Every extent must be ≥ 1 and rank must be 1..=6.
    pub fn new(dims: &[usize]) -> TorusShape {
        assert!(
            !dims.is_empty() && dims.len() <= 6,
            "torus rank must be 1..=6, got {}",
            dims.len()
        );
        assert!(dims.iter().all(|&d| d >= 1), "torus extents must be >= 1");
        TorusShape {
            dims: dims.to_vec(),
        }
    }

    /// The canonical 1024-node rack shape from §4: `8×4×4×2×2×2`.
    pub fn rack_1024() -> TorusShape {
        TorusShape::new(&[8, 4, 4, 2, 2, 2])
    }

    /// The 64-node motherboard wired as a `2^6` hypercube (Figure 4).
    pub fn motherboard_64() -> TorusShape {
        TorusShape::new(&[2, 2, 2, 2, 2, 2])
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent along `axis`.
    #[inline]
    pub fn extent(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Lexicographic rank of a coordinate (axis 0 fastest).
    pub fn rank_of(&self, c: NodeCoord) -> NodeId {
        let mut rank = 0usize;
        for axis in (0..self.rank()).rev() {
            debug_assert!(c.get(axis) < self.dims[axis], "coordinate out of bounds");
            rank = rank * self.dims[axis] + c.get(axis);
        }
        NodeId(rank as u32)
    }

    /// Inverse of [`TorusShape::rank_of`].
    pub fn coord_of(&self, id: NodeId) -> NodeCoord {
        let mut rest = id.index();
        let mut c = NodeCoord::ORIGIN;
        for axis in 0..self.rank() {
            c.set(axis, rest % self.dims[axis]);
            rest /= self.dims[axis];
        }
        debug_assert_eq!(rest, 0, "node id out of bounds");
        c
    }

    /// Coordinate of the nearest neighbour of `c` in direction `d`,
    /// wrapping around the torus.
    pub fn neighbour(&self, c: NodeCoord, d: Direction) -> NodeCoord {
        let axis = d.axis.index();
        assert!(
            axis < self.rank(),
            "direction {d} outside torus rank {}",
            self.rank()
        );
        let ext = self.dims[axis];
        let cur = c.get(axis);
        let next = if d.negative {
            (cur + ext - 1) % ext
        } else {
            (cur + 1) % ext
        };
        let mut out = c;
        out.set(axis, next);
        out
    }

    /// Iterate over every coordinate in lexicographic (rank) order.
    pub fn coords(&self) -> impl Iterator<Item = NodeCoord> + '_ {
        (0..self.node_count()).map(|i| self.coord_of(NodeId(i as u32)))
    }

    /// Minimal hop distance between two coordinates on the torus
    /// (sum over axes of the wrap-aware 1-D distance).
    pub fn distance(&self, a: NodeCoord, b: NodeCoord) -> usize {
        (0..self.rank())
            .map(|axis| {
                let ext = self.dims[axis];
                let d = a.get(axis).abs_diff(b.get(axis));
                d.min(ext - d)
            })
            .sum()
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Axis;

    #[test]
    fn rack_shape_has_1024_nodes() {
        assert_eq!(TorusShape::rack_1024().node_count(), 1024);
        assert_eq!(TorusShape::rack_1024().to_string(), "8x4x4x2x2x2");
    }

    #[test]
    fn rank_coord_bijection() {
        let t = TorusShape::new(&[3, 4, 2]);
        for i in 0..t.node_count() {
            let id = NodeId(i as u32);
            assert_eq!(t.rank_of(t.coord_of(id)), id);
        }
    }

    #[test]
    fn axis0_is_fastest() {
        let t = TorusShape::new(&[4, 2]);
        assert_eq!(t.coord_of(NodeId(1)), NodeCoord::from_slice(&[1, 0]));
        assert_eq!(t.coord_of(NodeId(4)), NodeCoord::from_slice(&[0, 1]));
    }

    #[test]
    fn neighbour_wraps() {
        let t = TorusShape::new(&[4, 4]);
        let origin = NodeCoord::ORIGIN;
        let minus = t.neighbour(origin, Axis(0).minus());
        assert_eq!(minus.get(0), 3);
        let plus = t.neighbour(minus, Axis(0).plus());
        assert_eq!(plus, origin);
    }

    #[test]
    fn neighbour_of_extent_one_axis_is_self() {
        // Degenerate extent-1 axes wrap to themselves; the SCU uses this for
        // partitions that don't span an axis.
        let t = TorusShape::new(&[1, 4]);
        let c = NodeCoord::from_slice(&[0, 2]);
        assert_eq!(t.neighbour(c, Axis(0).plus()), c);
    }

    #[test]
    fn distance_wraps() {
        let t = TorusShape::new(&[8, 4]);
        let a = NodeCoord::from_slice(&[0, 0]);
        let b = NodeCoord::from_slice(&[7, 3]);
        // 1 hop in x (wrap) + 1 hop in y (wrap).
        assert_eq!(t.distance(a, b), 2);
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn coords_cover_all_nodes_once() {
        let t = TorusShape::new(&[2, 3, 2]);
        let all: Vec<_> = t.coords().collect();
        assert_eq!(all.len(), 12);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(t.rank_of(*c), NodeId(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "rank must be 1..=6")]
    fn reject_rank_7() {
        let _ = TorusShape::new(&[2; 7]);
    }
}
