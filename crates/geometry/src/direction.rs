//! Axes and signed link directions of the six-dimensional mesh.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six axes of the physical QCDOC torus.
///
/// The paper labels the physics directions `x, y, z, t` (plus a fifth for
/// domain-wall fermions); the machine axes are purely topological, so we
/// simply number them 0..6. [`Axis::PHYSICS_NAMES`] supplies conventional
/// names when a 4-D partition is mapped onto physics coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Axis(pub u8);

impl Axis {
    /// All six machine axes in order.
    pub const ALL: [Axis; 6] = [Axis(0), Axis(1), Axis(2), Axis(3), Axis(4), Axis(5)];

    /// Conventional physics names for the first five logical axes.
    pub const PHYSICS_NAMES: [&'static str; 5] = ["x", "y", "z", "t", "s"];

    /// Axis index as usize, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive-sense direction along this axis.
    #[inline]
    pub fn plus(self) -> Direction {
        Direction {
            axis: self,
            negative: false,
        }
    }

    /// The negative-sense direction along this axis.
    #[inline]
    pub fn minus(self) -> Direction {
        Direction {
            axis: self,
            negative: true,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "axis{}", self.0)
    }
}

/// A signed link direction: one of the 12 nearest-neighbour links of a node.
///
/// QCDOC supports concurrent sends and receives on each of these, so the SCU
/// manages `2 × 12 = 24` independent uni-directional channels per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Direction {
    /// The axis this direction runs along.
    pub axis: Axis,
    /// `true` for the minus sense, `false` for the plus sense.
    pub negative: bool,
}

impl Direction {
    /// All 12 directions: plus then minus for each axis.
    pub fn all() -> impl Iterator<Item = Direction> {
        Axis::ALL.into_iter().flat_map(|a| [a.plus(), a.minus()])
    }

    /// The opposite direction (same axis, flipped sense).
    #[inline]
    pub fn opposite(self) -> Direction {
        Direction {
            axis: self.axis,
            negative: !self.negative,
        }
    }

    /// Dense index in `0..12`: `2 * axis + (negative as usize)`.
    ///
    /// Used to index per-link state tables in the SCU.
    #[inline]
    pub fn link_index(self) -> usize {
        2 * self.axis.index() + usize::from(self.negative)
    }

    /// Inverse of [`Direction::link_index`].
    #[inline]
    pub fn from_link_index(idx: usize) -> Direction {
        assert!(idx < 12, "link index {idx} out of range");
        Direction {
            axis: Axis((idx / 2) as u8),
            negative: idx % 2 == 1,
        }
    }

    /// Signed unit step along the axis: `+1` or `-1`.
    #[inline]
    pub fn step(self) -> isize {
        if self.negative {
            -1
        } else {
            1
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.axis, if self.negative { "-" } else { "+" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_directions() {
        let dirs: Vec<_> = Direction::all().collect();
        assert_eq!(dirs.len(), 12);
        // All distinct.
        for (i, a) in dirs.iter().enumerate() {
            for b in &dirs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Direction::all() {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
            assert_eq!(d.opposite().axis, d.axis);
        }
    }

    #[test]
    fn link_index_roundtrip() {
        for d in Direction::all() {
            assert_eq!(Direction::from_link_index(d.link_index()), d);
        }
        let mut seen = [false; 12];
        for d in Direction::all() {
            assert!(!seen[d.link_index()], "duplicate link index");
            seen[d.link_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_signs() {
        assert_eq!(Axis(0).plus().step(), 1);
        assert_eq!(Axis(0).minus().step(), -1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_index_bound() {
        let _ = Direction::from_link_index(12);
    }
}
