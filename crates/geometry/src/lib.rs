//! Torus geometry for the QCDOC six-dimensional mesh network.
//!
//! QCDOC wires its processing nodes into a six-dimensional torus: every node
//! has twelve nearest neighbours (one in the plus and minus sense of each of
//! the six axes) and the machine wraps around in every dimension. The paper
//! (§2.2) chose six dimensions *above* the four or five required by lattice
//! QCD so that lower-dimensional machines can be carved out **in software,
//! without moving cables** — two or three physical axes are folded into one
//! logical axis by routing a Hamiltonian cycle through the folded sub-torus.
//!
//! This crate provides:
//!
//! * [`TorusShape`] / [`NodeCoord`] / [`NodeId`] — machine shapes, node
//!   coordinates, and the lexicographic rank bijection between them;
//! * [`Axis`] / [`Direction`] — the six axes and twelve signed link
//!   directions of the physical mesh;
//! * [`fold`] — Hamiltonian cycles through multi-dimensional sub-tori, the
//!   mechanism behind software partitioning;
//! * [`partition`] — carving logical 1-D .. 6-D machines out of the physical
//!   6-D torus with unit dilation (logical neighbours remain physical
//!   neighbours);
//! * [`mapping`] — block decomposition of a physics lattice onto a machine
//!   partition (each node owns a local hyper-rectangle of sites).
//!
//! Everything here is pure, deterministic combinatorics; the network
//! behaviour built on top of it lives in `qcdoc-scu` and `qcdoc-core`.

#![warn(missing_docs)]

pub mod coord;
pub mod direction;
pub mod fold;
pub mod mapping;
pub mod packing;
pub mod partition;
pub mod torus;

pub use coord::{NodeCoord, NodeId};
pub use direction::{Axis, Direction};
pub use mapping::{LatticeMapping, LocalVolume};
pub use packing::OccupancyMap;
pub use partition::{Partition, PartitionError, PartitionSpec};
pub use torus::TorusShape;

/// Number of dimensions of the physical QCDOC mesh.
pub const MESH_DIMS: usize = 6;

/// Number of uni-directional nearest-neighbour links per node (2 per axis).
pub const LINKS_PER_NODE: usize = 2 * MESH_DIMS;
