//! Property-based tests for torus geometry invariants.

use proptest::prelude::*;
use qcdoc_geometry::fold::FoldCycle;
use qcdoc_geometry::{
    Direction, LatticeMapping, NodeCoord, NodeId, Partition, PartitionSpec, TorusShape,
};

/// Strategy: a torus shape of rank 1..=6 with small even-ish extents.
fn torus_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(
        prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(6)],
        1..=6,
    )
    .prop_map(|dims| TorusShape::new(&dims))
}

/// Strategy: a torus with all-even extents (foldable).
fn even_torus_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(prop_oneof![Just(2usize), Just(4), Just(8)], 2..=6)
        .prop_map(|dims| TorusShape::new(&dims))
}

proptest! {
    #[test]
    fn rank_coord_roundtrip(shape in torus_shape(), seed in 0usize..10_000) {
        let n = shape.node_count();
        let id = NodeId((seed % n) as u32);
        prop_assert_eq!(shape.rank_of(shape.coord_of(id)), id);
    }

    #[test]
    fn neighbour_is_involution_via_opposite(shape in torus_shape(), seed in 0usize..10_000) {
        let id = NodeId((seed % shape.node_count()) as u32);
        let c = shape.coord_of(id);
        for d in Direction::all() {
            if d.axis.index() >= shape.rank() {
                continue;
            }
            let back = shape.neighbour(shape.neighbour(c, d), d.opposite());
            prop_assert_eq!(back, c);
        }
    }

    #[test]
    fn distance_is_symmetric_and_triangle(shape in torus_shape(), s1 in 0usize..10_000, s2 in 0usize..10_000, s3 in 0usize..10_000) {
        let n = shape.node_count();
        let a = shape.coord_of(NodeId((s1 % n) as u32));
        let b = shape.coord_of(NodeId((s2 % n) as u32));
        let c = shape.coord_of(NodeId((s3 % n) as u32));
        prop_assert_eq!(shape.distance(a, b), shape.distance(b, a));
        prop_assert!(shape.distance(a, c) <= shape.distance(a, b) + shape.distance(b, c));
        prop_assert_eq!(shape.distance(a, a), 0);
    }

    #[test]
    fn neighbour_distance_is_at_most_one(shape in torus_shape(), seed in 0usize..10_000) {
        let c = shape.coord_of(NodeId((seed % shape.node_count()) as u32));
        for axis in 0..shape.rank() {
            let d = qcdoc_geometry::Axis(axis as u8).plus();
            let nb = shape.neighbour(c, d);
            prop_assert!(shape.distance(c, nb) <= 1);
        }
    }

    #[test]
    fn fold_is_bijective(dims in prop::collection::vec(prop_oneof![Just(2usize), Just(4)], 1..=4)) {
        let f = FoldCycle::new(&dims).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..f.len() {
            let c = f.coord_at(i);
            prop_assert_eq!(f.pos_of(&c), i);
            prop_assert!(seen.insert(c));
        }
        prop_assert_eq!(seen.len(), f.len());
    }

    #[test]
    fn full_machine_fold_has_unit_dilation(shape in even_torus_shape(), split in 1usize..6) {
        // Group the axes into two contiguous groups at `split`.
        let rank = shape.rank();
        let cut = split.min(rank.saturating_sub(1)).max(1);
        if cut >= rank {
            return Ok(());
        }
        let g0: Vec<usize> = (0..cut).collect();
        let g1: Vec<usize> = (cut..rank).collect();
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: shape.dims().to_vec(),
            groups: vec![g0, g1],
        };
        let p = Partition::new(&shape, spec).unwrap();
        prop_assert_eq!(p.node_count(), shape.node_count());
        prop_assert_eq!(p.dilation(), 1);
    }

    #[test]
    fn partition_is_bijective(shape in even_torus_shape()) {
        let spec = PartitionSpec::whole_machine(
            &shape,
            &[&(0..shape.rank()).collect::<Vec<_>>()[..]],
        );
        let p = Partition::new(&shape, spec).unwrap();
        let mut phys = std::collections::HashSet::new();
        for lc in p.logical_shape().coords() {
            let pc = p.physical_of(lc);
            prop_assert_eq!(p.logical_of(pc), Some(lc));
            prop_assert!(phys.insert(pc));
        }
        prop_assert_eq!(phys.len(), shape.node_count());
    }

    /// Packing edge: a sub-box partition (multi-axis folds close without
    /// wrap links) keeps unit dilation wherever it is placed, and its
    /// `physical_of`/`logical_of` maps stay exact inverses.
    #[test]
    fn sub_box_partition_round_trips_with_unit_dilation(
        ox in 0usize..=2, ot in 0usize..=2, seed in 0usize..10_000
    ) {
        let shape = TorusShape::new(&[4, 4, 2, 2]);
        let mut origin = NodeCoord::ORIGIN;
        origin.set(0, ox);
        origin.set(1, ot);
        let spec = PartitionSpec {
            origin,
            extents: vec![2, 2, 2, 2],
            groups: vec![vec![0, 2], vec![1, 3]],
        };
        let p = Partition::new(&shape, spec).unwrap();
        prop_assert_eq!(p.node_count(), 16);
        // Dilation is bounded below by 1 (some neighbour pair is distinct)
        // and above by 1 (every fold hop is a physical hop).
        prop_assert_eq!(p.dilation(), 1);
        let lc = p.logical_shape().coord_of(NodeId((seed % 16) as u32));
        let pc = p.physical_of(lc);
        prop_assert_eq!(p.logical_of(pc), Some(lc));
        // A physical node outside the sub-box is not in the partition.
        let mut outside = origin;
        outside.set(2, 1);
        outside.set(0, (ox + 2) % 4);
        if outside.get(0) < ox || outside.get(0) >= ox + 2 {
            prop_assert_eq!(p.logical_of(outside), None);
        }
    }

    /// Packing edge: two concurrently placed sub-boxes either overlap —
    /// and then an occupancy map refuses the second — or are disjoint,
    /// and both place. `Partition::overlaps` must agree exactly with the
    /// mask arithmetic.
    #[test]
    fn overlapping_concurrent_specs_are_rejected(
        a0 in 0usize..=2, a1 in 0usize..=2, b0 in 0usize..=2, b1 in 0usize..=2
    ) {
        let shape = TorusShape::new(&[4, 4, 2, 2]);
        let mk = |x: usize, y: usize| {
            let mut origin = NodeCoord::ORIGIN;
            origin.set(0, x);
            origin.set(1, y);
            PartitionSpec {
                origin,
                extents: vec![2, 2, 2, 2],
                groups: vec![vec![0, 2], vec![1, 3]],
            }
        };
        let pa = Partition::new(&shape, mk(a0, a1)).unwrap();
        let pb = Partition::new(&shape, mk(b0, b1)).unwrap();
        let boxes_overlap = a0.abs_diff(b0) < 2 && a1.abs_diff(b1) < 2;
        prop_assert_eq!(pa.overlaps(&pb), boxes_overlap);
        prop_assert!(pa.overlaps(&pa));
        let mut map = qcdoc_geometry::OccupancyMap::new(shape);
        prop_assert!(map.spec_free(pa.spec()));
        map.occupy_spec(pa.spec());
        prop_assert_eq!(map.spec_free(pb.spec()), !boxes_overlap);
        // Vacating restores the map exactly.
        map.vacate_spec(pa.spec());
        prop_assert!(map.spec_free(pb.spec()));
        prop_assert_eq!(map.free_count(), 64);
    }

    /// Packing edge: `fit_origins` returns exactly the origins whose box
    /// is free, in rank order, and `best_fit` returns one of them.
    #[test]
    fn fit_origins_agree_with_box_free(taken_seed in 0u64..1_000) {
        let shape = TorusShape::new(&[4, 2, 2]);
        let n = shape.node_count();
        let mask: Vec<bool> = (0..n)
            .map(|i| (taken_seed >> (i % 10)) & 1 == 1 && i % 3 == 0)
            .collect();
        let map = qcdoc_geometry::OccupancyMap::from_mask(shape.clone(), mask);
        let extents = [2usize, 2, 1];
        let fits = map.fit_origins(&extents, usize::MAX);
        let mut expected = Vec::new();
        for id in 0..n {
            let c = shape.coord_of(NodeId(id as u32));
            if map.box_in_bounds(c, &extents) && map.box_free(c, &extents) {
                expected.push(c);
            }
        }
        prop_assert_eq!(&fits, &expected);
        match map.best_fit(&extents) {
            Some(origin) => prop_assert!(fits.contains(&origin)),
            None => prop_assert!(fits.is_empty()),
        }
    }

    #[test]
    fn mapping_owner_consistent(lx in 1usize..4, lt in 1usize..4, mx in 1usize..4, mt in 1usize..4) {
        let machine = TorusShape::new(&[mx, mt]);
        let global = [lx * mx, lt * mt];
        let m = LatticeMapping::new(&global, &machine).unwrap();
        // Each node owns exactly local().sites() sites.
        let mut counts = std::collections::HashMap::new();
        for x in 0..global[0] {
            for t in 0..global[1] {
                *counts.entry(m.owner(&[x, t])).or_insert(0usize) += 1;
            }
        }
        prop_assert_eq!(counts.len(), machine.node_count());
        for &c in counts.values() {
            prop_assert_eq!(c, m.local().sites());
        }
    }
}
