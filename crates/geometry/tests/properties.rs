//! Property-based tests for torus geometry invariants.

use proptest::prelude::*;
use qcdoc_geometry::fold::FoldCycle;
use qcdoc_geometry::{
    Direction, LatticeMapping, NodeCoord, NodeId, Partition, PartitionSpec, TorusShape,
};

/// Strategy: a torus shape of rank 1..=6 with small even-ish extents.
fn torus_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(
        prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(6)],
        1..=6,
    )
    .prop_map(|dims| TorusShape::new(&dims))
}

/// Strategy: a torus with all-even extents (foldable).
fn even_torus_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(prop_oneof![Just(2usize), Just(4), Just(8)], 2..=6)
        .prop_map(|dims| TorusShape::new(&dims))
}

proptest! {
    #[test]
    fn rank_coord_roundtrip(shape in torus_shape(), seed in 0usize..10_000) {
        let n = shape.node_count();
        let id = NodeId((seed % n) as u32);
        prop_assert_eq!(shape.rank_of(shape.coord_of(id)), id);
    }

    #[test]
    fn neighbour_is_involution_via_opposite(shape in torus_shape(), seed in 0usize..10_000) {
        let id = NodeId((seed % shape.node_count()) as u32);
        let c = shape.coord_of(id);
        for d in Direction::all() {
            if d.axis.index() >= shape.rank() {
                continue;
            }
            let back = shape.neighbour(shape.neighbour(c, d), d.opposite());
            prop_assert_eq!(back, c);
        }
    }

    #[test]
    fn distance_is_symmetric_and_triangle(shape in torus_shape(), s1 in 0usize..10_000, s2 in 0usize..10_000, s3 in 0usize..10_000) {
        let n = shape.node_count();
        let a = shape.coord_of(NodeId((s1 % n) as u32));
        let b = shape.coord_of(NodeId((s2 % n) as u32));
        let c = shape.coord_of(NodeId((s3 % n) as u32));
        prop_assert_eq!(shape.distance(a, b), shape.distance(b, a));
        prop_assert!(shape.distance(a, c) <= shape.distance(a, b) + shape.distance(b, c));
        prop_assert_eq!(shape.distance(a, a), 0);
    }

    #[test]
    fn neighbour_distance_is_at_most_one(shape in torus_shape(), seed in 0usize..10_000) {
        let c = shape.coord_of(NodeId((seed % shape.node_count()) as u32));
        for axis in 0..shape.rank() {
            let d = qcdoc_geometry::Axis(axis as u8).plus();
            let nb = shape.neighbour(c, d);
            prop_assert!(shape.distance(c, nb) <= 1);
        }
    }

    #[test]
    fn fold_is_bijective(dims in prop::collection::vec(prop_oneof![Just(2usize), Just(4)], 1..=4)) {
        let f = FoldCycle::new(&dims).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..f.len() {
            let c = f.coord_at(i);
            prop_assert_eq!(f.pos_of(&c), i);
            prop_assert!(seen.insert(c));
        }
        prop_assert_eq!(seen.len(), f.len());
    }

    #[test]
    fn full_machine_fold_has_unit_dilation(shape in even_torus_shape(), split in 1usize..6) {
        // Group the axes into two contiguous groups at `split`.
        let rank = shape.rank();
        let cut = split.min(rank.saturating_sub(1)).max(1);
        if cut >= rank {
            return Ok(());
        }
        let g0: Vec<usize> = (0..cut).collect();
        let g1: Vec<usize> = (cut..rank).collect();
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: shape.dims().to_vec(),
            groups: vec![g0, g1],
        };
        let p = Partition::new(&shape, spec).unwrap();
        prop_assert_eq!(p.node_count(), shape.node_count());
        prop_assert_eq!(p.dilation(), 1);
    }

    #[test]
    fn partition_is_bijective(shape in even_torus_shape()) {
        let spec = PartitionSpec::whole_machine(
            &shape,
            &[&(0..shape.rank()).collect::<Vec<_>>()[..]],
        );
        let p = Partition::new(&shape, spec).unwrap();
        let mut phys = std::collections::HashSet::new();
        for lc in p.logical_shape().coords() {
            let pc = p.physical_of(lc);
            prop_assert_eq!(p.logical_of(pc), Some(lc));
            prop_assert!(phys.insert(pc));
        }
        prop_assert_eq!(phys.len(), shape.node_count());
    }

    #[test]
    fn mapping_owner_consistent(lx in 1usize..4, lt in 1usize..4, mx in 1usize..4, mt in 1usize..4) {
        let machine = TorusShape::new(&[mx, mt]);
        let global = [lx * mx, lt * mt];
        let m = LatticeMapping::new(&global, &machine).unwrap();
        // Each node owns exactly local().sites() sites.
        let mut counts = std::collections::HashMap::new();
        for x in 0..global[0] {
            for t in 0..global[1] {
                *counts.entry(m.owner(&[x, t])).or_insert(0usize) += 1;
            }
        }
        prop_assert_eq!(counts.len(), machine.node_count());
        for &c in counts.values() {
            prop_assert_eq!(c, m.local().sites());
        }
    }
}
