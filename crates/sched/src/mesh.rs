//! The scheduler's view of the machine.
//!
//! The scheduler computes placements over a [`qcdoc_geometry::OccupancyMap`]
//! snapshot, but the machine itself — node states, partition objects,
//! run kernels — lives elsewhere. [`MeshHost`] is that boundary: the
//! host crate implements it on the `Qdaemon` (so scheduled placements
//! become real partitions with member-node bookkeeping), and [`SimMesh`]
//! implements it on a bare occupancy map for unit tests, property tests
//! and packing benchmarks where booting 12,288 simulated nodes would be
//! noise.

use qcdoc_geometry::{OccupancyMap, Partition, PartitionSpec, TorusShape};
use std::collections::HashMap;

/// A successful placement as reported by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The machine's id for the allocation (the qdaemon partition id).
    pub id: u32,
    /// The logical torus the tenant's application sees.
    pub logical: TorusShape,
}

/// What the scheduler needs from the machine: its shape, a free/busy
/// snapshot, and allocate/release. Implementations must be
/// deterministic — same calls, same ids.
pub trait MeshHost {
    /// The physical machine shape.
    fn shape(&self) -> &TorusShape;

    /// Current occupancy: taken = anything not allocatable (busy,
    /// faulty, unbooted).
    fn occupancy(&self) -> OccupancyMap;

    /// Allocate a partition for the validated spec. Errors are
    /// reported as text; the scheduler treats any error as "does not
    /// fit" and keeps the job queued.
    fn place(&mut self, spec: &PartitionSpec) -> Result<Placement, String>;

    /// Release a previously placed partition.
    fn vacate(&mut self, id: u32);
}

/// A machine that exists only as an occupancy map — no kernels, no
/// Ethernet tree. Placement validates the partition math exactly like
/// the qdaemon does, so packing behaviour matches the real host.
#[derive(Debug, Clone)]
pub struct SimMesh {
    map: OccupancyMap,
    live: HashMap<u32, PartitionSpec>,
    next_id: u32,
}

impl SimMesh {
    /// An all-free simulated machine.
    pub fn new(shape: TorusShape) -> SimMesh {
        SimMesh {
            map: OccupancyMap::new(shape),
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// Mark a node unavailable (a quarantined or unbooted node).
    pub fn quarantine(&mut self, id: qcdoc_geometry::NodeId) {
        self.map.set_taken(id, true);
    }

    /// Number of free nodes.
    pub fn free_count(&self) -> usize {
        self.map.free_count()
    }

    /// Specs of all live allocations, keyed by id.
    pub fn live(&self) -> &HashMap<u32, PartitionSpec> {
        &self.live
    }
}

impl MeshHost for SimMesh {
    fn shape(&self) -> &TorusShape {
        self.map.shape()
    }

    fn occupancy(&self) -> OccupancyMap {
        self.map.clone()
    }

    fn place(&mut self, spec: &PartitionSpec) -> Result<Placement, String> {
        let partition =
            Partition::new(self.map.shape(), spec.clone()).map_err(|e| e.to_string())?;
        if !self.map.spec_free(spec) {
            return Err("sub-box not free".into());
        }
        self.map.occupy_spec(spec);
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, spec.clone());
        Ok(Placement {
            id,
            logical: partition.logical_shape().clone(),
        })
    }

    fn vacate(&mut self, id: u32) {
        if let Some(spec) = self.live.remove(&id) {
            self.map.vacate_spec(&spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_geometry::NodeCoord;

    #[test]
    fn sim_mesh_places_and_vacates() {
        let mut mesh = SimMesh::new(TorusShape::new(&[4, 2, 2]));
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: vec![4, 2, 1],
            groups: vec![vec![0], vec![1]],
        };
        let p = mesh.place(&spec).unwrap();
        assert_eq!(p.logical.dims(), &[4, 2]);
        assert_eq!(mesh.free_count(), 8);
        // The same box cannot be placed twice.
        assert!(mesh.place(&spec).is_err());
        mesh.vacate(p.id);
        assert_eq!(mesh.free_count(), 16);
        // Vacating an unknown id is a no-op.
        mesh.vacate(99);
        assert_eq!(mesh.free_count(), 16);
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut mesh = SimMesh::new(TorusShape::new(&[4, 2, 2]));
        // Partial single axis: extent 2 of 4 in its own group.
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: vec![2, 2, 1],
            groups: vec![vec![0], vec![1]],
        };
        assert!(mesh.place(&spec).is_err());
        assert_eq!(mesh.free_count(), 16);
    }

    #[test]
    fn quarantined_nodes_block_placement() {
        let mut mesh = SimMesh::new(TorusShape::new(&[4, 2, 2]));
        mesh.quarantine(qcdoc_geometry::NodeId(0));
        let spec = PartitionSpec {
            origin: NodeCoord::ORIGIN,
            extents: vec![4, 2, 1],
            groups: vec![vec![0], vec![1]],
        };
        assert!(mesh.place(&spec).is_err());
    }
}
