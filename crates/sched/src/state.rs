//! Durable scheduler state: snapshot codec + restart recovery.
//!
//! The paper's operating model keeps job state on the host (RAID + NFS),
//! so a crashed qdaemon is an inconvenience, not a massacre. This module
//! gives the scheduler the same property: [`Scheduler::save_state`]
//! serialises the *entire* decision state — tenants, job records,
//! queues, counters, and the full event log — into a self-contained
//! little-endian archive, and [`Scheduler::restore_state`] rebuilds a
//! scheduler that continues the same event log byte-for-byte.
//!
//! The format is hand-rolled because the workspace's offline `serde`
//! shim is derive-only (no actual serialisation); the idiom follows the
//! checkpoint archives in `qcdoc_lattice::checkpoint` and
//! `qcdoc_host::ckstore`: magic + versioned fields, length-prefixed
//! variable parts, every multi-byte value little-endian.
//!
//! After a restore, the mesh is gone — the real partitions died with the
//! host — so [`Scheduler::recover_after_restart`] converts every
//! formerly-running job into a held requeue charged as
//! [`FailureClass::HostRestart`] (which never consumes retry budget:
//! the machine's fault, not the job's).

use crate::job::{GrantedPlacement, JobId, JobRecord, JobSpec, JobStatus, Priority, ShapeRequest};
use crate::scheduler::{SchedConfig, SchedEvent, Scheduler};
use crate::tenant::{TenantConfig, TenantStats};
use qcdoc_fault::FailureClass;
use qcdoc_geometry::{NodeCoord, TorusShape};
use qcdoc_telemetry::{FlightKind, FlightRecorder, MetricsRegistry, HOST_NODE};
use std::collections::BTreeMap;

/// Reserved job id under which a qdaemon parks the scheduler snapshot
/// itself in the durable [`crate::CheckpointVault`] — the snapshot rides
/// the same faulty-NFS-hardened path as job checkpoints.
pub const STATE_JOB: JobId = JobId(u64::MAX);

const MAGIC: &[u8; 8] = b"QSCHEDv1";

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn put_usize_slice(out: &mut Vec<u8>, v: &[usize]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x as u64);
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
        None => put_u8(out, 0),
    }
}

fn put_shape(out: &mut Vec<u8>, shape: &TorusShape) {
    put_usize_slice(out, shape.dims());
}

/// Bounds-checked little-endian reader over the archive.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated scheduler state: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // Any honest length fits in what's left of the buffer.
        if n > self.buf.len() as u64 {
            return Err(format!("implausible length {n} in scheduler state"));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?).map_err(|e| format!("bad utf-8 in state: {e}"))
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>, String> {
        let n = self.len()?;
        (0..n).map(|_| Ok(self.u64()? as usize)).collect()
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.u8()? == 1 {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn shape(&mut self) -> Result<TorusShape, String> {
        let dims = self.usize_vec()?;
        if dims.is_empty() || dims.len() > 6 || dims.contains(&0) {
            return Err(format!("bad torus dims {dims:?} in scheduler state"));
        }
        Ok(TorusShape::new(&dims))
    }
}

fn priority_code(p: Priority) -> u8 {
    match p {
        Priority::Scavenger => 0,
        Priority::Standard => 1,
        Priority::Production => 2,
    }
}

fn priority_from(code: u8) -> Result<Priority, String> {
    Ok(match code {
        0 => Priority::Scavenger,
        1 => Priority::Standard,
        2 => Priority::Production,
        _ => return Err(format!("bad priority code {code}")),
    })
}

fn status_code(s: JobStatus) -> u8 {
    match s {
        JobStatus::Queued => 0,
        JobStatus::Running => 1,
        JobStatus::Preempted => 2,
        JobStatus::Held => 3,
        JobStatus::Failed => 4,
        JobStatus::Completed => 5,
        JobStatus::Canceled => 6,
    }
}

fn status_from(code: u8) -> Result<JobStatus, String> {
    Ok(match code {
        0 => JobStatus::Queued,
        1 => JobStatus::Running,
        2 => JobStatus::Preempted,
        3 => JobStatus::Held,
        4 => JobStatus::Failed,
        5 => JobStatus::Completed,
        6 => JobStatus::Canceled,
        _ => return Err(format!("bad job status code {code}")),
    })
}

fn class_from(code: u64) -> Result<FailureClass, String> {
    FailureClass::from_code(code).ok_or_else(|| format!("bad failure class code {code}"))
}

fn put_job(out: &mut Vec<u8>, job: &JobRecord) {
    put_u64(out, job.id.0);
    put_str(out, &job.spec.tenant);
    put_u8(out, priority_code(job.spec.priority));
    put_u64(out, job.spec.shapes.len() as u64);
    for s in &job.spec.shapes {
        put_usize_slice(out, &s.extents);
        put_u64(out, s.groups.len() as u64);
        for g in &s.groups {
            put_usize_slice(out, g);
        }
    }
    put_u64(out, job.spec.work);
    put_bool(out, job.spec.preemptible);
    put_u8(out, status_code(job.status));
    put_u64(out, job.submitted_at);
    put_u64(out, job.queued_since);
    put_opt_u64(out, job.first_started_at);
    put_opt_u64(out, job.finished_at);
    put_u64(out, job.remaining);
    match &job.placement {
        Some(p) => {
            put_u8(out, 1);
            put_u64(out, p.partition as u64);
            for axis in 0..6 {
                put_u64(out, p.origin.0[axis] as u64);
            }
            put_u64(out, p.shape_index as u64);
            put_shape(out, &p.logical);
        }
        None => put_u8(out, 0),
    }
    put_u64(out, job.shape_history.len() as u64);
    for s in &job.shape_history {
        put_shape(out, s);
    }
    put_u64(out, job.preemptions as u64);
    put_u64(out, job.wait_ticks);
    match &job.checkpoint {
        Some(blob) => {
            put_u8(out, 1);
            put_bytes(out, blob);
        }
        None => put_u8(out, 0),
    }
    put_u64(out, job.retries as u64);
    put_opt_u64(out, job.last_failure.map(|c| c.code()));
    put_u64(out, job.held_until);
    put_u64(out, job.avoid.len() as u64);
    for &n in &job.avoid {
        put_u64(out, n as u64);
    }
    put_opt_u64(out, job.checkpoint_remaining);
}

fn read_job(r: &mut Reader) -> Result<JobRecord, String> {
    let id = JobId(r.u64()?);
    let tenant = r.str()?;
    let priority = priority_from(r.u8()?)?;
    let n_shapes = r.len()?;
    let mut shapes = Vec::with_capacity(n_shapes);
    for _ in 0..n_shapes {
        let extents = r.usize_vec()?;
        let n_groups = r.len()?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            groups.push(r.usize_vec()?);
        }
        shapes.push(ShapeRequest { extents, groups });
    }
    let work = r.u64()?;
    let preemptible = r.bool()?;
    let status = status_from(r.u8()?)?;
    let submitted_at = r.u64()?;
    let queued_since = r.u64()?;
    let first_started_at = r.opt_u64()?;
    let finished_at = r.opt_u64()?;
    let remaining = r.u64()?;
    let placement = if r.u8()? == 1 {
        let partition = r.u64()? as u32;
        let mut origin = [0u32; 6];
        for axis in origin.iter_mut() {
            *axis = r.u64()? as u32;
        }
        let shape_index = r.u64()? as usize;
        let logical = r.shape()?;
        Some(GrantedPlacement {
            partition,
            origin: NodeCoord(origin),
            shape_index,
            logical,
        })
    } else {
        None
    };
    let n_hist = r.len()?;
    let mut shape_history = Vec::with_capacity(n_hist);
    for _ in 0..n_hist {
        shape_history.push(r.shape()?);
    }
    let preemptions = r.u64()? as u32;
    let wait_ticks = r.u64()?;
    let checkpoint = if r.u8()? == 1 { Some(r.bytes()?) } else { None };
    let retries = r.u64()? as u32;
    let last_failure = match r.opt_u64()? {
        Some(code) => Some(class_from(code)?),
        None => None,
    };
    let held_until = r.u64()?;
    let n_avoid = r.len()?;
    let mut avoid = Vec::with_capacity(n_avoid);
    for _ in 0..n_avoid {
        avoid.push(r.u64()? as u32);
    }
    let checkpoint_remaining = r.opt_u64()?;
    Ok(JobRecord {
        id,
        spec: JobSpec {
            tenant,
            priority,
            shapes,
            work,
            preemptible,
        },
        status,
        submitted_at,
        queued_since,
        first_started_at,
        finished_at,
        remaining,
        placement,
        shape_history,
        preemptions,
        wait_ticks,
        checkpoint,
        retries,
        last_failure,
        held_until,
        avoid,
        checkpoint_remaining,
    })
}

fn put_event(out: &mut Vec<u8>, ev: &SchedEvent) {
    match ev {
        SchedEvent::Submitted { job, at } => {
            put_u8(out, 0);
            put_u64(out, job.0);
            put_u64(out, *at);
        }
        SchedEvent::Started {
            job,
            at,
            partition,
            logical,
        } => {
            put_u8(out, 1);
            put_u64(out, job.0);
            put_u64(out, *at);
            put_u64(out, *partition as u64);
            put_shape(out, logical);
        }
        SchedEvent::Preempted { job, at, by } => {
            put_u8(out, 2);
            put_u64(out, job.0);
            put_u64(out, *at);
            put_u64(out, by.0);
        }
        SchedEvent::Resumed {
            job,
            at,
            partition,
            logical,
        } => {
            put_u8(out, 3);
            put_u64(out, job.0);
            put_u64(out, *at);
            put_u64(out, *partition as u64);
            put_shape(out, logical);
        }
        SchedEvent::Failed {
            job,
            at,
            class,
            retry,
        } => {
            put_u8(out, 4);
            put_u64(out, job.0);
            put_u64(out, *at);
            put_u64(out, class.code());
            put_u64(out, *retry as u64);
        }
        SchedEvent::Requeued { job, at } => {
            put_u8(out, 5);
            put_u64(out, job.0);
            put_u64(out, *at);
        }
        SchedEvent::Completed { job, at } => {
            put_u8(out, 6);
            put_u64(out, job.0);
            put_u64(out, *at);
        }
        SchedEvent::Canceled { job, at } => {
            put_u8(out, 7);
            put_u64(out, job.0);
            put_u64(out, *at);
        }
    }
}

fn read_event(r: &mut Reader) -> Result<SchedEvent, String> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => SchedEvent::Submitted {
            job: JobId(r.u64()?),
            at: r.u64()?,
        },
        1 => SchedEvent::Started {
            job: JobId(r.u64()?),
            at: r.u64()?,
            partition: r.u64()? as u32,
            logical: r.shape()?,
        },
        2 => SchedEvent::Preempted {
            job: JobId(r.u64()?),
            at: r.u64()?,
            by: JobId(r.u64()?),
        },
        3 => SchedEvent::Resumed {
            job: JobId(r.u64()?),
            at: r.u64()?,
            partition: r.u64()? as u32,
            logical: r.shape()?,
        },
        4 => SchedEvent::Failed {
            job: JobId(r.u64()?),
            at: r.u64()?,
            class: class_from(r.u64()?)?,
            retry: r.u64()? as u32,
        },
        5 => SchedEvent::Requeued {
            job: JobId(r.u64()?),
            at: r.u64()?,
        },
        6 => SchedEvent::Completed {
            job: JobId(r.u64()?),
            at: r.u64()?,
        },
        7 => SchedEvent::Canceled {
            job: JobId(r.u64()?),
            at: r.u64()?,
        },
        _ => return Err(format!("bad event tag {tag}")),
    })
}

impl Scheduler {
    /// Serialise the full decision state (tenants, jobs, queues,
    /// counters, event log) into a self-contained archive a restarted
    /// host can [`Scheduler::restore_state`] from.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        put_shape(&mut out, &self.machine);
        put_u64(&mut out, self.config.aging_ticks);
        put_u64(&mut out, self.config.window as u64);
        put_u64(&mut out, self.config.retry_budget as u64);
        put_u64(&mut out, self.config.holdoff_base);
        put_u64(&mut out, self.clock);
        put_u64(&mut out, self.next_id);
        put_u64(&mut out, self.decisions);
        put_u64(&mut out, self.preemptions);
        put_u64(&mut out, self.busy_node_ticks);
        put_u64(&mut out, self.wasted_node_ticks);
        put_u64(&mut out, self.requeues);
        put_u64(&mut out, self.failed_terminal);
        put_u64(&mut out, self.tenants.len() as u64);
        for (name, (cfg, stats)) in &self.tenants {
            put_str(&mut out, name);
            put_f64(&mut out, cfg.weight);
            put_u64(&mut out, cfg.node_quota as u64);
            put_u64(&mut out, cfg.max_queued as u64);
            put_u64(&mut out, stats.submitted);
            put_u64(&mut out, stats.rejected);
            put_u64(&mut out, stats.completed);
            put_u64(&mut out, stats.canceled);
            put_u64(&mut out, stats.preemptions);
            put_u64(&mut out, stats.requeues);
            put_u64(&mut out, stats.failed);
            put_u64(&mut out, stats.wait_ticks);
            put_u64(&mut out, stats.node_ticks);
            put_u64(&mut out, stats.running_nodes as u64);
            put_u64(&mut out, stats.max_running_nodes as u64);
        }
        put_u64(&mut out, self.jobs.len() as u64);
        for job in self.jobs.values() {
            put_job(&mut out, job);
        }
        put_u64(&mut out, self.pending.len() as u64);
        for &id in &self.pending {
            put_u64(&mut out, id);
        }
        put_u64(&mut out, self.running.len() as u64);
        for &id in &self.running {
            put_u64(&mut out, id);
        }
        put_u64(&mut out, self.events.len() as u64);
        for ev in &self.events {
            put_event(&mut out, ev);
        }
        out
    }

    /// Rebuild a scheduler from a [`Scheduler::save_state`] archive. The
    /// result continues the same clock, counters, and event log; call
    /// [`Scheduler::recover_after_restart`] next to deal with the jobs
    /// whose partitions died with the old host.
    pub fn restore_state(bytes: &[u8]) -> Result<Scheduler, String> {
        let mut r = Reader::new(bytes);
        if r.take(8)? != MAGIC {
            return Err("not a scheduler state archive (bad magic)".into());
        }
        let machine = r.shape()?;
        let config = SchedConfig {
            aging_ticks: r.u64()?,
            window: r.u64()? as usize,
            retry_budget: r.u64()? as u32,
            holdoff_base: r.u64()?,
        };
        let clock = r.u64()?;
        let next_id = r.u64()?;
        let decisions = r.u64()?;
        let preemptions = r.u64()?;
        let busy_node_ticks = r.u64()?;
        let wasted_node_ticks = r.u64()?;
        let requeues = r.u64()?;
        let failed_terminal = r.u64()?;
        let mut tenants = BTreeMap::new();
        for _ in 0..r.len()? {
            let name = r.str()?;
            let cfg = TenantConfig {
                weight: r.f64()?,
                node_quota: r.u64()? as usize,
                max_queued: r.u64()? as usize,
            };
            let stats = TenantStats {
                submitted: r.u64()?,
                rejected: r.u64()?,
                completed: r.u64()?,
                canceled: r.u64()?,
                preemptions: r.u64()?,
                requeues: r.u64()?,
                failed: r.u64()?,
                wait_ticks: r.u64()?,
                node_ticks: r.u64()?,
                running_nodes: r.u64()? as usize,
                max_running_nodes: r.u64()? as usize,
            };
            tenants.insert(name, (cfg, stats));
        }
        let mut jobs = BTreeMap::new();
        for _ in 0..r.len()? {
            let job = read_job(&mut r)?;
            jobs.insert(job.id.0, job);
        }
        let mut pending = Vec::new();
        for _ in 0..r.len()? {
            pending.push(r.u64()?);
        }
        let mut running = Vec::new();
        for _ in 0..r.len()? {
            running.push(r.u64()?);
        }
        let mut events = Vec::new();
        for _ in 0..r.len()? {
            events.push(read_event(&mut r)?);
        }
        for id in pending.iter().chain(running.iter()) {
            if !jobs.contains_key(id) {
                return Err(format!("state references unknown job {id}"));
            }
        }
        Ok(Scheduler {
            machine,
            config,
            tenants,
            jobs,
            pending,
            running,
            clock,
            next_id,
            decisions,
            preemptions,
            busy_node_ticks,
            wasted_node_ticks,
            requeues,
            failed_terminal,
            events,
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        })
    }

    /// After a restore onto a fresh mesh: every job that was running
    /// when the old host died lost its partition. Roll each back to its
    /// newest checkpoint and requeue it as a held
    /// [`FailureClass::HostRestart`] failure — charged to the machine,
    /// never to the job's retry budget. Returns the recovered job ids.
    pub fn recover_after_restart(&mut self) -> Vec<JobId> {
        let running = std::mem::take(&mut self.running);
        let mut recovered = Vec::new();
        for id in running {
            let job = self.jobs.get_mut(&id).expect("running job exists");
            let placement = job.placement.take().expect("running jobs are placed");
            let nodes = placement.logical.node_count() as u64;
            let target = job.checkpoint_remaining.unwrap_or(job.spec.work);
            let lost = target.saturating_sub(job.remaining);
            self.wasted_node_ticks += nodes * lost;
            job.remaining = target;
            job.status = JobStatus::Held;
            job.held_until = self.clock;
            job.queued_since = self.clock;
            job.last_failure = Some(FailureClass::HostRestart);
            job.avoid.clear();
            let jid = job.id;
            let retries = job.retries;
            let tenant = job.spec.tenant.clone();
            self.tenants
                .get_mut(&tenant)
                .expect("tenant exists")
                .1
                .running_nodes -= nodes as usize;
            self.pending.push(id);
            self.flight.record(
                HOST_NODE,
                self.clock,
                FlightKind::Rollback,
                "sched_host_restart",
                jid.0,
                FailureClass::HostRestart.code(),
            );
            self.events.push(SchedEvent::Failed {
                job: jid,
                at: self.clock,
                class: FailureClass::HostRestart,
                retry: retries,
            });
            recovered.push(jid);
        }
        recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::SimMesh;
    use crate::scheduler::StepOutcome;

    fn machine() -> TorusShape {
        TorusShape::new(&[4, 2, 2])
    }

    fn shape(extents: &[usize]) -> ShapeRequest {
        ShapeRequest {
            extents: extents.to_vec(),
            groups: vec![vec![0], vec![1]],
        }
    }

    fn setup() -> (Scheduler, SimMesh) {
        let mut s = Scheduler::new(machine(), SchedConfig::default());
        s.add_tenant("phys", TenantConfig::default());
        s.add_tenant("eng", TenantConfig::default());
        (s, SimMesh::new(machine()))
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let (mut s, mut mesh) = setup();
        for i in 0..5 {
            let spec = JobSpec {
                tenant: if i % 2 == 0 { "phys" } else { "eng" }.into(),
                priority: if i == 3 {
                    Priority::Production
                } else {
                    Priority::Standard
                },
                shapes: vec![
                    shape(&[4, 2, 1]),
                    ShapeRequest {
                        extents: vec![4, 1, 1],
                        groups: vec![vec![0]],
                    },
                ],
                work: 4 + i,
                preemptible: true,
            };
            s.submit(spec).unwrap();
            s.advance(1, &mut mesh);
        }
        let id = JobId(0);
        s.store_checkpoint(id, vec![9, 9, 9]);
        let bytes = s.save_state();
        let restored = Scheduler::restore_state(&bytes).unwrap();
        // The restored scheduler re-saves to the identical archive and
        // continues the identical event log.
        assert_eq!(restored.save_state(), bytes);
        assert_eq!(
            format!("{:?}", restored.events()),
            format!("{:?}", s.events())
        );
        assert_eq!(restored.clock(), s.clock());
        assert_eq!(restored.job(id).unwrap().checkpoint, Some(vec![9, 9, 9]));
    }

    #[test]
    fn corrupt_archives_are_refused() {
        let (s, _) = setup();
        let bytes = s.save_state();
        assert!(Scheduler::restore_state(&bytes[..4]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(Scheduler::restore_state(&bad).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 1);
        assert!(Scheduler::restore_state(&truncated).is_err());
    }

    #[test]
    fn restart_recovery_requeues_running_jobs_without_charging_budget() {
        let (mut s, mut mesh) = setup();
        let job = s
            .submit(JobSpec {
                tenant: "phys".into(),
                priority: Priority::Standard,
                shapes: vec![shape(&[4, 2, 1])],
                work: 10,
                preemptible: true,
            })
            .unwrap();
        s.schedule(&mut mesh);
        s.advance(4, &mut mesh);
        // Checkpoint at remaining=6, then deliver 2 more ticks that the
        // restart will roll back.
        s.store_checkpoint(job, vec![1]);
        s.advance(2, &mut mesh);
        assert_eq!(s.job(job).unwrap().remaining, 4);

        let bytes = s.save_state();
        let mut restarted = Scheduler::restore_state(&bytes).unwrap();
        let recovered = restarted.recover_after_restart();
        assert_eq!(recovered, vec![job]);
        let rec = restarted.job(job).unwrap();
        assert_eq!(rec.status, JobStatus::Held);
        assert_eq!(rec.remaining, 6, "rolled back to the checkpoint");
        assert_eq!(rec.retries, 0, "host restarts never charge the budget");
        assert_eq!(rec.last_failure, Some(FailureClass::HostRestart));
        // Wasted the 2 uncheckpointed node·ticks on 8 nodes.
        assert_eq!(restarted.wasted_node_ticks(), 16);
        // A fresh mesh picks the job back up and it completes.
        let mut mesh2 = SimMesh::new(machine());
        loop {
            match restarted.step(&mut mesh2) {
                StepOutcome::Done => break,
                StepOutcome::Progressed => {}
                StepOutcome::Stuck => panic!("recovered job must place"),
            }
        }
        assert_eq!(
            restarted.job(job).unwrap().status,
            JobStatus::Completed,
            "recovered job runs to completion"
        );
    }
}
