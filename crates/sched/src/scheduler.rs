//! The deterministic multi-tenant scheduler.
//!
//! One [`Scheduler`] owns the job queue and tenant ledger for one
//! machine; every placement decision is a pure function of the
//! submission history and the mesh state, so a seeded soak replays
//! bit-identically. The policy, in the order the code applies it:
//!
//! 1. **Admission control** — unknown tenants, malformed shapes,
//!    over-quota requests and over-deep queues are refused at submit
//!    time ([`AdmitError`]), never left to rot in the queue.
//! 2. **Ordering** — pending jobs sort by: starving first (waited
//!    longer than [`SchedConfig::aging_ticks`]), then priority class,
//!    then fair-share charge (node·ticks consumed per unit weight,
//!    ascending — the deficit rule), then submission order.
//! 3. **Packing** — the first acceptable shape with a feasible
//!    placement wins; placements come from
//!    [`qcdoc_geometry::OccupancyMap::best_fit`], the snug-corner
//!    heuristic that keeps the free mesh compact.
//! 4. **Preemption** — a job that cannot fit may evict *strictly
//!    lower* priority, preemptible jobs, fewest victims first. An
//!    evicted job keeps its place in the accounting, its remaining
//!    work, and its checkpoint blob; the resume placement may use a
//!    different shape from its list, and the exact-bits checkpoint
//!    protocol makes the result identical either way.
//! 5. **No starvation** — once a job has aged past the threshold it
//!    sorts ahead of everything and becomes a *barrier*: no younger
//!    job may grab nodes while it waits, so the nodes completions
//!    release inevitably reach it.
//! 6. **Failure is a scheduled event** — a managed job that dies
//!    mid-run ([`Scheduler::fail_job`]) rolls back to its newest
//!    checkpoint, serves an exponential hold-off in [`JobStatus::Held`],
//!    and requeues with its convicted failure domain masked out of
//!    placement, until a bounded per-job retry budget runs out and the
//!    job lands in terminal [`JobStatus::Failed`].

use crate::job::{GrantedPlacement, JobId, JobRecord, JobSpec, JobStatus, Priority, ShapeRequest};
use crate::mesh::MeshHost;
use crate::tenant::{TenantConfig, TenantStats};
use crate::vault::CheckpointVault;
use qcdoc_fault::FailureClass;
use qcdoc_geometry::{NodeId, OccupancyMap, Partition, PartitionSpec, TorusShape};
use qcdoc_telemetry::{FlightKind, FlightRecorder, MetricsRegistry, HOST_NODE};
use std::collections::BTreeMap;

/// Tunables of the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Queue wait (in ticks) past which a job is *starving*: it sorts
    /// ahead of every class and blocks backfill until it places.
    pub aging_ticks: u64,
    /// Maximum placement attempts per scheduling pass — bounds the
    /// work of one pass on a deep queue; the next pass continues.
    pub window: usize,
    /// Failure requeues a job may consume before it fails terminally.
    /// Host restarts never charge the budget — the machine's fault, not
    /// the job's.
    pub retry_budget: u32,
    /// Hold-off (in ticks) before the first requeue; doubles with every
    /// further retry (capped at 64× the base) so a job pinned to a sick
    /// region backs off instead of thrashing.
    pub holdoff_base: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            aging_ticks: 512,
            window: 16,
            retry_budget: 3,
            holdoff_base: 4,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant was never registered.
    UnknownTenant(String),
    /// The job listed no acceptable shapes.
    NoShapes,
    /// The job asked for zero work.
    NoWork,
    /// A shape is not a valid partition of this machine.
    BadShape {
        /// Index into the job's shape list.
        index: usize,
        /// The partition validation failure, as text.
        reason: String,
    },
    /// Even the job's largest shape exceeds the tenant's node quota —
    /// it could never run.
    QuotaExceeded {
        /// Nodes the largest shape needs.
        needed: usize,
        /// The tenant's concurrent-node quota.
        quota: usize,
    },
    /// The tenant already has `max_queued` jobs waiting.
    QueueFull {
        /// The tenant's queue-depth limit.
        limit: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            AdmitError::NoShapes => write!(f, "job lists no acceptable shapes"),
            AdmitError::NoWork => write!(f, "job asks for zero work"),
            AdmitError::BadShape { index, reason } => {
                write!(f, "shape {index} is not a valid partition: {reason}")
            }
            AdmitError::QuotaExceeded { needed, quota } => {
                write!(f, "needs {needed} nodes but tenant quota is {quota}")
            }
            AdmitError::QueueFull { limit } => {
                write!(f, "tenant queue is full ({limit} jobs)")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// One entry of the scheduler's decision log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEvent {
    /// A job passed admission.
    Submitted {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
    },
    /// First placement of a job.
    Started {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
        /// Mesh partition id granted.
        partition: u32,
        /// Logical shape granted.
        logical: TorusShape,
    },
    /// A running job was evicted to make room for a higher class.
    Preempted {
        /// The evicted job.
        job: JobId,
        /// Clock tick.
        at: u64,
        /// The job it made room for.
        by: JobId,
    },
    /// A preempted job got a new placement.
    Resumed {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
        /// Mesh partition id granted.
        partition: u32,
        /// Logical shape granted — possibly different from the shape
        /// the job was preempted on.
        logical: TorusShape,
    },
    /// A running job died and was rolled back to its checkpoint.
    Failed {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
        /// Failure classification from the health evidence.
        class: FailureClass,
        /// Retries consumed so far (including this one, when charged).
        retry: u32,
    },
    /// A held job's back-off expired (or an operator retried it) and it
    /// re-entered the queue.
    Requeued {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
    },
    /// A job delivered all its work.
    Completed {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
    },
    /// A job was removed by the user.
    Canceled {
        /// The job.
        job: JobId,
        /// Clock tick.
        at: u64,
    },
}

/// Result of one [`Scheduler::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Work remains and time advanced.
    Progressed,
    /// Queue and machine are both empty.
    Done,
    /// Jobs are pending but nothing runs and nothing places — the
    /// machine cannot serve them (e.g. quarantined down to less than
    /// the smallest acceptable shape).
    Stuck,
}

/// The multi-tenant job scheduler for one machine.
///
/// Fields are crate-visible so the [`crate::state`] codec can snapshot
/// and rebuild a scheduler byte-for-byte across a host restart.
#[derive(Debug)]
pub struct Scheduler {
    pub(crate) machine: TorusShape,
    pub(crate) config: SchedConfig,
    pub(crate) tenants: BTreeMap<String, (TenantConfig, TenantStats)>,
    pub(crate) jobs: BTreeMap<u64, JobRecord>,
    /// Queued + preempted + held jobs, in submission order.
    pub(crate) pending: Vec<u64>,
    /// Running jobs, in placement order.
    pub(crate) running: Vec<u64>,
    pub(crate) clock: u64,
    pub(crate) next_id: u64,
    pub(crate) decisions: u64,
    pub(crate) preemptions: u64,
    pub(crate) busy_node_ticks: u64,
    /// Node·ticks of delivered service later rolled back by failures —
    /// the gap between utilisation and goodput.
    pub(crate) wasted_node_ticks: u64,
    /// Failure requeues performed (automatic + manual).
    pub(crate) requeues: u64,
    /// Jobs that exhausted their retry budget.
    pub(crate) failed_terminal: u64,
    pub(crate) events: Vec<SchedEvent>,
    pub(crate) metrics: MetricsRegistry,
    /// Black box of preemptions, checkpoints, and resumes, stamped with
    /// the virtual clock — dumped when a soak or acceptance run fails.
    pub(crate) flight: FlightRecorder,
}

impl Scheduler {
    /// A scheduler for a machine of the given shape, no tenants yet.
    pub fn new(machine: TorusShape, config: SchedConfig) -> Scheduler {
        Scheduler {
            machine,
            config,
            tenants: BTreeMap::new(),
            jobs: BTreeMap::new(),
            pending: Vec::new(),
            running: Vec::new(),
            clock: 0,
            next_id: 0,
            decisions: 0,
            preemptions: 0,
            busy_node_ticks: 0,
            wasted_node_ticks: 0,
            requeues: 0,
            failed_terminal: 0,
            events: Vec::new(),
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        }
    }

    /// Register a tenant. Re-registering replaces the configuration
    /// but keeps the accounting.
    pub fn add_tenant(&mut self, name: &str, config: TenantConfig) {
        self.tenants
            .entry(name.to_string())
            .and_modify(|(c, _)| *c = config)
            .or_insert((config, TenantStats::default()));
    }

    /// The machine shape this scheduler packs onto.
    pub fn machine(&self) -> &TorusShape {
        &self.machine
    }

    /// The virtual clock, in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Jobs waiting for nodes (queued or preempted).
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently holding partitions.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Placement attempts made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Preemptions performed so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Failure requeues performed so far (automatic + manual).
    pub fn requeues(&self) -> u64 {
        self.requeues
    }

    /// Jobs that exhausted their retry budget and failed terminally.
    pub fn failed_terminal(&self) -> u64 {
        self.failed_terminal
    }

    /// Node·ticks of service delivered and then rolled back by failures.
    pub fn wasted_node_ticks(&self) -> u64 {
        self.wasted_node_ticks
    }

    /// The decision log, oldest first.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Read-only view of the scheduler's flight recorder (preemptions,
    /// checkpoint stores, resumes, clock-stamped).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Deterministic dump of the scheduler's flight ring — the artifact a
    /// failed soak run attaches via [`qcdoc_telemetry::FlightDumpGuard`].
    pub fn flight_dump(&self) -> String {
        self.flight.dump(None)
    }

    /// One job's record.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id.0)
    }

    /// All job records in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// One tenant's accounting.
    pub fn tenant_stats(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.get(name).map(|(_, s)| s)
    }

    /// Machine-wide delivered utilisation so far: busy node·ticks over
    /// capacity node·ticks. 0.0 before the clock first advances.
    pub fn occupancy_ratio(&self) -> f64 {
        let capacity = self.machine.node_count() as u64 * self.clock;
        if capacity == 0 {
            0.0
        } else {
            self.busy_node_ticks as f64 / capacity as f64
        }
    }

    /// Goodput: delivered node·ticks that *stuck* (never rolled back by
    /// a failure) over capacity node·ticks — the chaos soak's headline
    /// SLO. Always ≤ [`Scheduler::occupancy_ratio`].
    pub fn goodput_ratio(&self) -> f64 {
        let capacity = self.machine.node_count() as u64 * self.clock;
        if capacity == 0 {
            0.0
        } else {
            self.busy_node_ticks.saturating_sub(self.wasted_node_ticks) as f64 / capacity as f64
        }
    }

    /// Store a checkpoint blob with a job (the driver calls this when
    /// it sees the job's `Preempted` event). The blob is opaque here.
    pub fn store_checkpoint(&mut self, id: JobId, blob: Vec<u8>) {
        if let Some(job) = self.jobs.get_mut(&id.0) {
            self.flight.record(
                HOST_NODE,
                self.clock,
                FlightKind::Checkpoint,
                "sched_store",
                id.0,
                blob.len() as u64,
            );
            job.checkpoint = Some(blob);
            // A failure now rolls the job back to this service level,
            // not to scratch.
            job.checkpoint_remaining = Some(job.remaining);
        }
    }

    /// Take a job's checkpoint blob (the driver calls this when the
    /// job's `Resumed` event arrives, to rebuild solver state).
    pub fn take_checkpoint(&mut self, id: JobId) -> Option<Vec<u8>> {
        self.jobs.get_mut(&id.0).and_then(|j| j.checkpoint.take())
    }

    /// Store a checkpoint blob with a job *and* park it in a durable
    /// vault, so the blob outlives this scheduler process (the paper's
    /// host-RAID operating model). The in-memory copy stays as the fast
    /// path; the vault copy is what a restarted qdaemon recovers from.
    pub fn store_checkpoint_durable(
        &mut self,
        id: JobId,
        blob: Vec<u8>,
        vault: &mut dyn CheckpointVault,
    ) -> Result<u64, String> {
        let gen = vault.store(id, &blob)?;
        self.flight.record(
            HOST_NODE,
            self.clock,
            FlightKind::Checkpoint,
            "sched_store_durable",
            id.0,
            gen,
        );
        self.store_checkpoint(id, blob);
        Ok(gen)
    }

    /// Take a job's checkpoint, falling back to the durable vault when
    /// the in-memory copy is gone (e.g. this scheduler was restarted
    /// after the blob was parked).
    pub fn take_checkpoint_durable(
        &mut self,
        id: JobId,
        vault: &mut dyn CheckpointVault,
    ) -> Option<Vec<u8>> {
        if let Some(blob) = self.take_checkpoint(id) {
            return Some(blob);
        }
        match vault.load(id) {
            Ok(Some(blob)) => {
                self.flight.record(
                    HOST_NODE,
                    self.clock,
                    FlightKind::Resume,
                    "sched_vault_restore",
                    id.0,
                    blob.len() as u64,
                );
                Some(blob)
            }
            Ok(None) => None,
            Err(reason) => {
                self.flight.record(
                    HOST_NODE,
                    self.clock,
                    FlightKind::Info,
                    "sched_vault_error",
                    id.0,
                    reason.len() as u64,
                );
                None
            }
        }
    }

    /// Normalise a shape's extents to the machine rank (pad with 1s).
    fn normalise(&self, shape: &ShapeRequest) -> ShapeRequest {
        let mut extents = shape.extents.clone();
        extents.resize(self.machine.rank().max(extents.len()), 1);
        ShapeRequest {
            extents,
            groups: shape.groups.clone(),
        }
    }

    /// Admission control: validate and enqueue a job.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let Some((tcfg, _)) = self.tenants.get(&spec.tenant) else {
            return Err(AdmitError::UnknownTenant(spec.tenant));
        };
        let tcfg = *tcfg;
        let reject = |tenants: &mut BTreeMap<String, (TenantConfig, TenantStats)>, t: &str| {
            tenants.get_mut(t).expect("checked").1.rejected += 1;
        };
        if spec.shapes.is_empty() {
            reject(&mut self.tenants, &spec.tenant);
            return Err(AdmitError::NoShapes);
        }
        if spec.work == 0 {
            reject(&mut self.tenants, &spec.tenant);
            return Err(AdmitError::NoWork);
        }
        let shapes: Vec<ShapeRequest> = spec.shapes.iter().map(|s| self.normalise(s)).collect();
        for (index, shape) in shapes.iter().enumerate() {
            let probe = PartitionSpec {
                origin: qcdoc_geometry::NodeCoord::ORIGIN,
                extents: shape.extents.clone(),
                groups: shape.groups.clone(),
            };
            if let Err(e) = Partition::new(&self.machine, probe) {
                reject(&mut self.tenants, &spec.tenant);
                return Err(AdmitError::BadShape {
                    index,
                    reason: e.to_string(),
                });
            }
        }
        let needed = shapes.iter().map(ShapeRequest::node_count).max().unwrap();
        if needed > tcfg.node_quota {
            reject(&mut self.tenants, &spec.tenant);
            return Err(AdmitError::QuotaExceeded {
                needed,
                quota: tcfg.node_quota,
            });
        }
        let queued = self
            .pending
            .iter()
            .filter(|id| self.jobs[id].spec.tenant == spec.tenant)
            .count();
        if queued >= tcfg.max_queued {
            reject(&mut self.tenants, &spec.tenant);
            return Err(AdmitError::QueueFull {
                limit: tcfg.max_queued,
            });
        }

        let id = JobId(self.next_id);
        self.next_id += 1;
        let record = JobRecord {
            id,
            spec: JobSpec { shapes, ..spec },
            status: JobStatus::Queued,
            submitted_at: self.clock,
            queued_since: self.clock,
            first_started_at: None,
            finished_at: None,
            remaining: 0,
            placement: None,
            shape_history: Vec::new(),
            preemptions: 0,
            wait_ticks: 0,
            checkpoint: None,
            retries: 0,
            last_failure: None,
            held_until: 0,
            avoid: Vec::new(),
            checkpoint_remaining: None,
        };
        let mut record = record;
        record.remaining = record.spec.work;
        let tenant = record.spec.tenant.clone();
        self.jobs.insert(id.0, record);
        self.pending.push(id.0);
        self.tenants.get_mut(&tenant).expect("checked").1.submitted += 1;
        self.events.push(SchedEvent::Submitted {
            job: id,
            at: self.clock,
        });
        Ok(id)
    }

    /// Whether a pending job has aged into the starving class.
    fn is_starving(&self, id: u64) -> bool {
        let job = &self.jobs[&id];
        self.clock.saturating_sub(job.queued_since) >= self.config.aging_ticks
    }

    /// Pending ids in dispatch order (see the module docs for the key).
    fn dispatch_order(&self) -> Vec<u64> {
        let mut shares: BTreeMap<&str, f64> = BTreeMap::new();
        for (name, (cfg, stats)) in &self.tenants {
            shares.insert(name.as_str(), stats.share(cfg));
        }
        let mut order = self.pending.clone();
        order.sort_by(|a, b| {
            let ja = &self.jobs[a];
            let jb = &self.jobs[b];
            let key = |j: &JobRecord, id: u64| {
                (
                    std::cmp::Reverse(self.is_starving(id)),
                    std::cmp::Reverse(j.spec.priority),
                )
            };
            key(ja, *a)
                .cmp(&key(jb, *b))
                .then_with(|| {
                    let sa = shares.get(ja.spec.tenant.as_str()).copied().unwrap_or(0.0);
                    let sb = shares.get(jb.spec.tenant.as_str()).copied().unwrap_or(0.0);
                    sa.total_cmp(&sb)
                })
                .then_with(|| ja.submitted_at.cmp(&jb.submitted_at))
                .then_with(|| a.cmp(b))
        });
        order
    }

    /// Nodes the tenant holds right now.
    fn tenant_running_nodes(&self, tenant: &str) -> usize {
        self.tenants
            .get(tenant)
            .map(|(_, s)| s.running_nodes)
            .unwrap_or(0)
    }

    /// Find the first acceptable shape with a feasible origin under the
    /// tenant's quota. Returns `(shape index, origin)`. A job carrying a
    /// failure conviction sees its convicted domain as occupied, so the
    /// requeue placement can never land back on the region that killed
    /// it.
    fn find_fit(&self, occ: &OccupancyMap, job: &JobRecord) -> Option<(usize, PartitionSpec)> {
        let masked;
        let occ = if job.avoid.is_empty() {
            occ
        } else {
            let mut m = occ.clone();
            let nodes = self.machine.node_count();
            for &n in &job.avoid {
                if (n as usize) < nodes {
                    m.set_taken(NodeId(n), true);
                }
            }
            masked = m;
            &masked
        };
        let (tcfg, _) = self.tenants.get(&job.spec.tenant)?;
        let headroom = tcfg
            .node_quota
            .saturating_sub(self.tenant_running_nodes(&job.spec.tenant));
        for (index, shape) in job.spec.shapes.iter().enumerate() {
            if shape.node_count() > headroom {
                continue;
            }
            if let Some(origin) = occ.best_fit(&shape.extents) {
                return Some((
                    index,
                    PartitionSpec {
                        origin,
                        extents: shape.extents.clone(),
                        groups: shape.groups.clone(),
                    },
                ));
            }
        }
        None
    }

    /// Commit a placement: mesh allocation, occupancy update, job and
    /// tenant bookkeeping, event log.
    fn commit_placement(
        &mut self,
        mesh: &mut dyn MeshHost,
        occ: &mut OccupancyMap,
        id: u64,
        shape_index: usize,
        spec: PartitionSpec,
    ) -> bool {
        let placement = match mesh.place(&spec) {
            Ok(p) => p,
            Err(_) => return false,
        };
        occ.occupy_spec(&spec);
        let job = self.jobs.get_mut(&id).expect("pending job exists");
        let resumed = job.preemptions > 0 || job.retries > 0;
        let nodes = placement.logical.node_count();
        job.status = JobStatus::Running;
        if job.first_started_at.is_none() {
            job.first_started_at = Some(self.clock);
        }
        job.placement = Some(GrantedPlacement {
            partition: placement.id,
            origin: spec.origin,
            shape_index,
            logical: placement.logical.clone(),
        });
        job.shape_history.push(placement.logical.clone());
        let tenant = job.spec.tenant.clone();
        let jid = job.id;
        let stats = &mut self.tenants.get_mut(&tenant).expect("tenant exists").1;
        stats.running_nodes += nodes;
        stats.max_running_nodes = stats.max_running_nodes.max(stats.running_nodes);
        self.pending.retain(|&p| p != id);
        self.running.push(id);
        if resumed {
            self.flight.record(
                HOST_NODE,
                self.clock,
                FlightKind::Resume,
                "sched_replace",
                jid.0,
                placement.id as u64,
            );
        }
        self.events.push(if resumed {
            SchedEvent::Resumed {
                job: jid,
                at: self.clock,
                partition: placement.id,
                logical: placement.logical,
            }
        } else {
            SchedEvent::Started {
                job: jid,
                at: self.clock,
                partition: placement.id,
                logical: placement.logical,
            }
        });
        true
    }

    /// Evict `victim` in favour of `by`: release its partition, retain
    /// its remaining work, and requeue it behind the clock.
    fn evict(&mut self, mesh: &mut dyn MeshHost, occ: &mut OccupancyMap, victim: u64, by: JobId) {
        let job = self.jobs.get_mut(&victim).expect("running job exists");
        let placement = job.placement.take().expect("running jobs are placed");
        let extents = job.spec.shapes[placement.shape_index].extents.clone();
        let nodes = placement.logical.node_count();
        job.status = JobStatus::Preempted;
        job.queued_since = self.clock;
        job.preemptions += 1;
        let tenant = job.spec.tenant.clone();
        let jid = job.id;
        mesh.vacate(placement.partition);
        occ.vacate_box(placement.origin, &extents);
        let stats = &mut self.tenants.get_mut(&tenant).expect("tenant exists").1;
        stats.running_nodes -= nodes;
        stats.preemptions += 1;
        self.preemptions += 1;
        self.running.retain(|&r| r != victim);
        self.pending.push(victim);
        self.flight.record(
            HOST_NODE,
            self.clock,
            FlightKind::Preemption,
            "evict",
            jid.0,
            by.0,
        );
        self.events.push(SchedEvent::Preempted {
            job: jid,
            at: self.clock,
            by,
        });
    }

    /// Try to make room for `id` by evicting strictly-lower-priority
    /// preemptible jobs, fewest victims first. Returns true if the job
    /// was placed.
    fn try_preempt(&mut self, mesh: &mut dyn MeshHost, occ: &mut OccupancyMap, id: u64) -> bool {
        let priority = self.jobs[&id].spec.priority;
        // Victim candidates: lowest class first, then youngest placement
        // first — evicting the most recently started job wastes the
        // least delivered service.
        let mut victims: Vec<u64> = self
            .running
            .iter()
            .copied()
            .filter(|v| {
                let j = &self.jobs[v];
                j.spec.preemptible && j.spec.priority < priority
            })
            .collect();
        victims.sort_by_key(|v| {
            let j = &self.jobs[v];
            (
                j.spec.priority,
                std::cmp::Reverse(j.first_started_at.unwrap_or(0)),
                std::cmp::Reverse(j.id.0),
            )
        });
        // Tentatively free victim boxes until the job fits.
        let mut trial = occ.clone();
        let mut chosen = Vec::new();
        for victim in victims {
            let j = &self.jobs[&victim];
            let placement = j.placement.as_ref().expect("running jobs are placed");
            let extents = &j.spec.shapes[placement.shape_index].extents;
            trial.vacate_box(placement.origin, extents);
            chosen.push(victim);
            if let Some((shape_index, spec)) = self.find_fit(&trial, &self.jobs[&id]) {
                // Commit: evict exactly the chosen victims, then place.
                let by = self.jobs[&id].id;
                for v in chosen {
                    self.evict(mesh, occ, v, by);
                }
                return self.commit_placement(mesh, occ, id, shape_index, spec);
            }
        }
        false
    }

    /// Flip held jobs whose back-off expired into the queue proper,
    /// logging the requeue.
    fn release_expired_holds(&mut self) {
        let due: Vec<u64> = self
            .pending
            .iter()
            .copied()
            .filter(|id| {
                let j = &self.jobs[id];
                j.status == JobStatus::Held && j.held_until <= self.clock
            })
            .collect();
        for id in due {
            let job = self.jobs.get_mut(&id).expect("held job exists");
            job.status = JobStatus::Queued;
            let jid = job.id;
            let retries = job.retries;
            let tenant = job.spec.tenant.clone();
            self.requeues += 1;
            self.tenants
                .get_mut(&tenant)
                .expect("tenant exists")
                .1
                .requeues += 1;
            self.flight.record(
                HOST_NODE,
                self.clock,
                FlightKind::Retry,
                "sched_requeue",
                jid.0,
                retries as u64,
            );
            self.events.push(SchedEvent::Requeued {
                job: jid,
                at: self.clock,
            });
        }
    }

    /// One scheduling pass: place what fits, preempt where policy
    /// allows, respect the starvation barrier.
    pub fn schedule(&mut self, mesh: &mut dyn MeshHost) {
        self.release_expired_holds();
        let mut occ = mesh.occupancy();
        let order = self.dispatch_order();
        let mut attempts = 0usize;
        let mut barrier = false;
        for id in order {
            if attempts >= self.config.window {
                break;
            }
            // Held jobs are serving a back-off; they neither place nor
            // burn a window attempt.
            if self.jobs[&id].status == JobStatus::Held {
                continue;
            }
            let starving = self.is_starving(id);
            // No backfill past a starving job that could not place: the
            // nodes completions free up must reach it first. Starving
            // jobs ahead of the barrier already tried and failed.
            if barrier && !starving {
                continue;
            }
            // Quota-blocked jobs wait on their own tenant, not on the
            // machine: skip without burning an attempt or a barrier.
            let job = &self.jobs[&id];
            let headroom = self
                .tenants
                .get(&job.spec.tenant)
                .map(|(c, s)| c.node_quota.saturating_sub(s.running_nodes))
                .unwrap_or(0);
            let min_nodes = job
                .spec
                .shapes
                .iter()
                .map(ShapeRequest::node_count)
                .min()
                .unwrap_or(usize::MAX);
            if min_nodes > headroom {
                continue;
            }
            attempts += 1;
            self.decisions += 1;
            if let Some((shape_index, spec)) = self.find_fit(&occ, &self.jobs[&id]) {
                if self.commit_placement(mesh, &mut occ, id, shape_index, spec) {
                    continue;
                }
            }
            // Production may always preempt its way in; anything else
            // earns the right only by starving.
            let may_preempt = {
                let j = &self.jobs[&id];
                j.spec.priority == Priority::Production || starving
            };
            if may_preempt && self.try_preempt(mesh, &mut occ, id) {
                continue;
            }
            if starving {
                barrier = true;
            }
        }
    }

    /// Ticks until the earliest running job completes.
    pub fn next_completion_in(&self) -> Option<u64> {
        self.running.iter().map(|id| self.jobs[id].remaining).min()
    }

    /// Advance the virtual clock by `ticks`: running jobs accrue
    /// service (jobs reaching zero complete and release their
    /// partitions), waiting jobs accrue wait, then a scheduling pass
    /// fills the freed nodes. Callers should keep `ticks` at or below
    /// [`Scheduler::next_completion_in`] so completions land on their
    /// exact tick; [`Scheduler::step`] does this automatically.
    pub fn advance(&mut self, ticks: u64, mesh: &mut dyn MeshHost) {
        self.clock += ticks;
        // Service and wait accounting.
        let mut completed = Vec::new();
        for &id in &self.running {
            let job = self.jobs.get_mut(&id).expect("running job exists");
            let delivered = ticks.min(job.remaining);
            job.remaining -= delivered;
            let nodes = job.held_nodes() as u64;
            self.busy_node_ticks += nodes * delivered;
            self.tenants
                .get_mut(&job.spec.tenant)
                .expect("tenant exists")
                .1
                .node_ticks += nodes * delivered;
            if job.remaining == 0 {
                completed.push(id);
            }
        }
        for &id in &self.pending {
            let job = self.jobs.get_mut(&id).expect("pending job exists");
            job.wait_ticks += ticks;
            self.tenants
                .get_mut(&job.spec.tenant)
                .expect("tenant exists")
                .1
                .wait_ticks += ticks;
        }
        for id in completed {
            let job = self.jobs.get_mut(&id).expect("completing job exists");
            let placement = job.placement.take().expect("running jobs are placed");
            let nodes = placement.logical.node_count();
            job.status = JobStatus::Completed;
            job.finished_at = Some(self.clock);
            job.checkpoint = None;
            job.checkpoint_remaining = None;
            let tenant = job.spec.tenant.clone();
            let jid = job.id;
            mesh.vacate(placement.partition);
            let stats = &mut self.tenants.get_mut(&tenant).expect("tenant exists").1;
            stats.running_nodes -= nodes;
            stats.completed += 1;
            self.running.retain(|&r| r != id);
            self.events.push(SchedEvent::Completed {
                job: jid,
                at: self.clock,
            });
        }
        self.schedule(mesh);
    }

    /// Remove a job: dequeue it if waiting, evict-and-discard if
    /// running. Returns false for unknown or already-finished jobs.
    pub fn cancel(&mut self, id: JobId, mesh: &mut dyn MeshHost) -> bool {
        let Some(job) = self.jobs.get_mut(&id.0) else {
            return false;
        };
        match job.status {
            JobStatus::Queued | JobStatus::Preempted | JobStatus::Held => {
                job.status = JobStatus::Canceled;
                job.finished_at = Some(self.clock);
                job.checkpoint = None;
                let tenant = job.spec.tenant.clone();
                self.pending.retain(|&p| p != id.0);
                self.tenants
                    .get_mut(&tenant)
                    .expect("tenant exists")
                    .1
                    .canceled += 1;
            }
            JobStatus::Running => {
                let placement = job.placement.take().expect("running jobs are placed");
                let nodes = placement.logical.node_count();
                job.status = JobStatus::Canceled;
                job.finished_at = Some(self.clock);
                job.checkpoint = None;
                let tenant = job.spec.tenant.clone();
                mesh.vacate(placement.partition);
                let stats = &mut self.tenants.get_mut(&tenant).expect("tenant exists").1;
                stats.running_nodes -= nodes;
                stats.canceled += 1;
                self.running.retain(|&r| r != id.0);
            }
            JobStatus::Completed | JobStatus::Canceled | JobStatus::Failed => return false,
        }
        self.events.push(SchedEvent::Canceled {
            job: id,
            at: self.clock,
        });
        self.schedule(mesh);
        true
    }

    /// Report a managed job dead: the detect half of the autonomic loop.
    ///
    /// The job's partition is released, its delivered-but-uncheckpointed
    /// service is written off as waste, its remaining work rolls back to
    /// the newest checkpoint (or to scratch if none exists), and the
    /// `avoid` set — the convicted failure domain from
    /// [`qcdoc_fault::convicted_nodes`] — is pinned to the record so the
    /// requeue placement masks it out. Within the retry budget the job
    /// enters [`JobStatus::Held`] under an exponential hold-off;
    /// past it, terminal [`JobStatus::Failed`]. [`FailureClass::HostRestart`]
    /// never charges the budget — the machine's fault, not the job's.
    ///
    /// Accepts `Running` jobs and (for storage faults that strike a
    /// parked checkpoint) `Preempted` ones; anything else returns false.
    pub fn fail_job(
        &mut self,
        id: JobId,
        class: FailureClass,
        avoid: &[u32],
        mesh: &mut dyn MeshHost,
    ) -> bool {
        let Some(job) = self.jobs.get_mut(&id.0) else {
            return false;
        };
        let was_running = match job.status {
            JobStatus::Running => true,
            JobStatus::Preempted => false,
            _ => return false,
        };
        // Release the partition, if any. A preempted job was already
        // released at eviction — taking placement only when running is
        // what keeps the occupancy accounting single-entry (the retry
        // seam the satellite audit covers).
        let mut lost_nodes = 0u64;
        if was_running {
            let placement = job.placement.take().expect("running jobs are placed");
            lost_nodes = placement.logical.node_count() as u64;
            mesh.vacate(placement.partition);
        }
        // Roll back to the newest checkpoint; everything delivered past
        // it is waste, not goodput.
        let target = job.checkpoint_remaining.unwrap_or(job.spec.work);
        let lost_ticks = target.saturating_sub(job.remaining);
        self.wasted_node_ticks += lost_nodes * lost_ticks;
        job.remaining = target;
        let charged = class != FailureClass::HostRestart;
        if charged {
            job.retries += 1;
        }
        job.last_failure = Some(class);
        job.avoid = avoid.to_vec();
        job.queued_since = self.clock;
        let terminal = job.retries > self.config.retry_budget;
        if terminal {
            job.status = JobStatus::Failed;
            job.finished_at = Some(self.clock);
        } else {
            // Exponential hold-off, capped at 64x base so a long-lived
            // job cannot back off past the aging horizon forever.
            let shift = job.retries.saturating_sub(1).min(6);
            job.held_until = self.clock + (self.config.holdoff_base << shift);
            job.status = JobStatus::Held;
        }
        let jid = job.id;
        let retries = job.retries;
        let tenant = job.spec.tenant.clone();
        let stats = &mut self.tenants.get_mut(&tenant).expect("tenant exists").1;
        if was_running {
            stats.running_nodes -= lost_nodes as usize;
        }
        if terminal {
            stats.failed += 1;
            self.failed_terminal += 1;
            self.pending.retain(|&p| p != id.0);
        } else if !self.pending.contains(&id.0) {
            self.pending.push(id.0);
        }
        self.running.retain(|&r| r != id.0);
        self.flight.record(
            HOST_NODE,
            self.clock,
            FlightKind::Rollback,
            "sched_fail",
            jid.0,
            class.code(),
        );
        self.events.push(SchedEvent::Failed {
            job: jid,
            at: self.clock,
            class,
            retry: retries,
        });
        self.schedule(mesh);
        true
    }

    /// Manual requeue (`qcsh qretry`): release a held job's back-off
    /// immediately, or revive a terminally failed job with a fresh
    /// retry budget. Returns false for jobs in any other state.
    pub fn retry(&mut self, id: JobId, mesh: &mut dyn MeshHost) -> bool {
        let Some(job) = self.jobs.get_mut(&id.0) else {
            return false;
        };
        match job.status {
            JobStatus::Held => {
                job.held_until = self.clock;
            }
            JobStatus::Failed => {
                job.status = JobStatus::Held;
                job.held_until = self.clock;
                job.finished_at = None;
                job.retries = 0;
                job.queued_since = self.clock;
                let jid = job.id;
                self.pending.push(id.0);
                self.flight.record(
                    HOST_NODE,
                    self.clock,
                    FlightKind::Retry,
                    "sched_revive",
                    jid.0,
                    0,
                );
            }
            _ => return false,
        }
        self.schedule(mesh);
        true
    }

    /// Ticks until the earliest held job's back-off expires (at least 1).
    fn next_hold_release_in(&self) -> Option<u64> {
        self.pending
            .iter()
            .filter(|id| self.jobs[*id].status == JobStatus::Held)
            .map(|id| self.jobs[id].held_until.saturating_sub(self.clock).max(1))
            .min()
    }

    /// Run the machine to its next event: schedule, then advance to the
    /// earliest completion or hold-off expiry.
    pub fn step(&mut self, mesh: &mut dyn MeshHost) -> StepOutcome {
        self.schedule(mesh);
        let dt = match (self.next_completion_in(), self.next_hold_release_in()) {
            (Some(c), Some(h)) => Some(c.min(h)),
            (Some(c), None) => Some(c),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        };
        match dt {
            Some(dt) => {
                self.advance(dt, mesh);
                StepOutcome::Progressed
            }
            None if self.pending.is_empty() => StepOutcome::Done,
            None => StepOutcome::Stuck,
        }
    }

    /// Step until the queue and machine drain. Returns true when done,
    /// false when stuck or the step budget ran out.
    pub fn drain(&mut self, mesh: &mut dyn MeshHost, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            match self.step(mesh) {
                StepOutcome::Done => return true,
                StepOutcome::Stuck => return false,
                StepOutcome::Progressed => {}
            }
        }
        false
    }

    /// Refresh and expose the scheduler's metrics registry: per-tenant
    /// wait, usage, occupancy and preemption gauges (the telemetry the
    /// qdaemon merges into its machine-wide scrape).
    pub fn export_metrics(&mut self) -> &MetricsRegistry {
        for (name, (_, stats)) in &self.tenants {
            let label = [("tenant", name.clone())];
            self.metrics
                .gauge_set("sched_tenant_wait_ticks", &label, stats.wait_ticks as f64);
            self.metrics
                .gauge_set("sched_tenant_node_ticks", &label, stats.node_ticks as f64);
            self.metrics
                .gauge_set("sched_tenant_preemptions", &label, stats.preemptions as f64);
            self.metrics.gauge_set(
                "sched_tenant_running_nodes",
                &label,
                stats.running_nodes as f64,
            );
            self.metrics
                .gauge_set("sched_tenant_completed", &label, stats.completed as f64);
            self.metrics
                .gauge_set("sched_tenant_requeues", &label, stats.requeues as f64);
            self.metrics
                .gauge_set("sched_tenant_failed", &label, stats.failed as f64);
        }
        self.metrics
            .gauge_set("sched_clock_ticks", &[], self.clock as f64);
        self.metrics
            .gauge_set("sched_queue_depth", &[], self.pending.len() as f64);
        self.metrics
            .gauge_set("sched_running_jobs", &[], self.running.len() as f64);
        self.metrics
            .gauge_set("sched_decisions", &[], self.decisions as f64);
        self.metrics
            .gauge_set("sched_preemptions", &[], self.preemptions as f64);
        self.metrics
            .gauge_set("sched_occupancy_ratio", &[], self.occupancy_ratio());
        self.metrics
            .gauge_set("sched_requeues", &[], self.requeues as f64);
        self.metrics
            .gauge_set("sched_failed_terminal", &[], self.failed_terminal as f64);
        self.metrics.gauge_set(
            "sched_wasted_node_ticks",
            &[],
            self.wasted_node_ticks as f64,
        );
        self.metrics
            .gauge_set("sched_goodput_ratio", &[], self.goodput_ratio());
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::SimMesh;

    fn machine() -> TorusShape {
        // 4 x 2 x 2 = 16 nodes.
        TorusShape::new(&[4, 2, 2])
    }

    fn half_shape() -> ShapeRequest {
        // 8 nodes: full axes 0 and 1, one x2 layer.
        ShapeRequest {
            extents: vec![4, 2, 1],
            groups: vec![vec![0], vec![1]],
        }
    }

    fn whole_shape() -> ShapeRequest {
        ShapeRequest {
            extents: vec![4, 2, 2],
            groups: vec![vec![0], vec![1], vec![2]],
        }
    }

    fn job(tenant: &str, priority: Priority, shape: ShapeRequest, work: u64) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            priority,
            shapes: vec![shape],
            work,
            preemptible: true,
        }
    }

    fn setup() -> (Scheduler, SimMesh) {
        let mut s = Scheduler::new(machine(), SchedConfig::default());
        s.add_tenant("a", TenantConfig::default());
        s.add_tenant("b", TenantConfig::default());
        (s, SimMesh::new(machine()))
    }

    #[test]
    fn admission_control_rejects_bad_requests() {
        let (mut s, _) = setup();
        assert!(matches!(
            s.submit(job("ghost", Priority::Standard, half_shape(), 1)),
            Err(AdmitError::UnknownTenant(_))
        ));
        assert!(matches!(
            s.submit(JobSpec {
                shapes: vec![],
                ..job("a", Priority::Standard, half_shape(), 1)
            }),
            Err(AdmitError::NoShapes)
        ));
        assert!(matches!(
            s.submit(job("a", Priority::Standard, half_shape(), 0)),
            Err(AdmitError::NoWork)
        ));
        // Partial single axis cannot close its ring.
        let bad = ShapeRequest {
            extents: vec![2, 2, 1],
            groups: vec![vec![0], vec![1]],
        };
        assert!(matches!(
            s.submit(job("a", Priority::Standard, bad, 1)),
            Err(AdmitError::BadShape { index: 0, .. })
        ));
        s.add_tenant(
            "tiny",
            TenantConfig {
                node_quota: 4,
                ..TenantConfig::default()
            },
        );
        assert!(matches!(
            s.submit(job("tiny", Priority::Standard, half_shape(), 1)),
            Err(AdmitError::QuotaExceeded {
                needed: 8,
                quota: 4
            })
        ));
        s.add_tenant(
            "shallow",
            TenantConfig {
                max_queued: 1,
                ..TenantConfig::default()
            },
        );
        s.submit(job("shallow", Priority::Standard, half_shape(), 1))
            .unwrap();
        assert!(matches!(
            s.submit(job("shallow", Priority::Standard, half_shape(), 1)),
            Err(AdmitError::QueueFull { limit: 1 })
        ));
        assert_eq!(s.tenant_stats("shallow").unwrap().rejected, 1);
    }

    #[test]
    fn jobs_place_and_complete() {
        let (mut s, mut mesh) = setup();
        let a = s
            .submit(job("a", Priority::Standard, half_shape(), 5))
            .unwrap();
        let b = s
            .submit(job("b", Priority::Standard, half_shape(), 3))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.next_completion_in(), Some(3));
        assert!(s.drain(&mut mesh, 100));
        assert_eq!(s.job(a).unwrap().status, JobStatus::Completed);
        assert_eq!(s.job(b).unwrap().status, JobStatus::Completed);
        assert_eq!(s.job(a).unwrap().finished_at, Some(5));
        assert_eq!(s.job(b).unwrap().finished_at, Some(3));
        assert_eq!(mesh.free_count(), 16);
        // Occupancy: (8*5 + 8*3) node·ticks over 16*5 capacity.
        assert!((s.occupancy_ratio() - 64.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn production_preempts_scavenger_but_not_vice_versa() {
        let (mut s, mut mesh) = setup();
        let scav = s
            .submit(job("a", Priority::Scavenger, whole_shape(), 100))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(scav).unwrap().status, JobStatus::Running);
        let prod = s
            .submit(job("b", Priority::Production, half_shape(), 4))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(scav).unwrap().status, JobStatus::Preempted);
        assert_eq!(s.job(prod).unwrap().status, JobStatus::Running);
        assert_eq!(s.preemptions(), 1);
        // The scavenger resumes once production finishes — on the same
        // or another half — and total service still adds up.
        assert!(s.drain(&mut mesh, 1000));
        let rec = s.job(scav).unwrap();
        assert_eq!(rec.status, JobStatus::Completed);
        assert_eq!(rec.preemptions, 1);
        assert!(rec.shape_history.len() >= 2);
        // A scavenger never preempts production.
        let p2 = s
            .submit(job("b", Priority::Production, whole_shape(), 50))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(p2).unwrap().status, JobStatus::Running);
        let s2 = s
            .submit(job("a", Priority::Scavenger, half_shape(), 1))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(s2).unwrap().status, JobStatus::Queued);
        assert_eq!(s.job(p2).unwrap().status, JobStatus::Running);
    }

    #[test]
    fn non_preemptible_jobs_are_never_evicted() {
        let (mut s, mut mesh) = setup();
        let pinned = s
            .submit(JobSpec {
                preemptible: false,
                ..job("a", Priority::Scavenger, whole_shape(), 10)
            })
            .unwrap();
        s.schedule(&mut mesh);
        let prod = s
            .submit(job("b", Priority::Production, half_shape(), 2))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(pinned).unwrap().status, JobStatus::Running);
        assert_eq!(s.job(prod).unwrap().status, JobStatus::Queued);
        // Production waits for the pinned job instead of evicting it.
        assert!(s.drain(&mut mesh, 100));
        assert_eq!(s.job(prod).unwrap().first_started_at, Some(10));
    }

    #[test]
    fn fair_share_favours_the_underserved_tenant() {
        let mut s = Scheduler::new(machine(), SchedConfig::default());
        s.add_tenant(
            "heavy",
            TenantConfig {
                weight: 1.0,
                ..TenantConfig::default()
            },
        );
        s.add_tenant(
            "light",
            TenantConfig {
                weight: 1.0,
                ..TenantConfig::default()
            },
        );
        let mut mesh = SimMesh::new(machine());
        // Give "heavy" a lot of delivered service first.
        let warm = s
            .submit(job("heavy", Priority::Standard, whole_shape(), 10))
            .unwrap();
        s.schedule(&mut mesh);
        s.advance(10, &mut mesh);
        assert_eq!(s.job(warm).unwrap().status, JobStatus::Completed);
        // Now both tenants queue one whole-machine job; the underserved
        // tenant goes first despite submitting second.
        let h = s
            .submit(job("heavy", Priority::Standard, whole_shape(), 5))
            .unwrap();
        let l = s
            .submit(job("light", Priority::Standard, whole_shape(), 5))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(l).unwrap().status, JobStatus::Running);
        assert_eq!(s.job(h).unwrap().status, JobStatus::Queued);
    }

    #[test]
    fn quota_holds_under_load() {
        let mut s = Scheduler::new(machine(), SchedConfig::default());
        s.add_tenant(
            "capped",
            TenantConfig {
                node_quota: 8,
                ..TenantConfig::default()
            },
        );
        let mut mesh = SimMesh::new(machine());
        for _ in 0..4 {
            s.submit(job("capped", Priority::Standard, half_shape(), 3))
                .unwrap();
        }
        s.schedule(&mut mesh);
        // Only one half-machine job may run at a time under the quota.
        assert_eq!(s.running_count(), 1);
        assert!(s.drain(&mut mesh, 100));
        assert_eq!(s.tenant_stats("capped").unwrap().max_running_nodes, 8);
        assert_eq!(s.tenant_stats("capped").unwrap().completed, 4);
    }

    #[test]
    fn aging_stops_backfill_and_starving_job_eventually_runs() {
        let mut s = Scheduler::new(
            machine(),
            SchedConfig {
                aging_ticks: 6,
                ..SchedConfig::default()
            },
        );
        s.add_tenant("a", TenantConfig::default());
        s.add_tenant("b", TenantConfig::default());
        let mut mesh = SimMesh::new(machine());
        // Half the machine is already busy, so the whole-machine job
        // cannot start; a stream of small jobs would happily backfill
        // the other half forever.
        let filler = s
            .submit(job("b", Priority::Standard, half_shape(), 4))
            .unwrap();
        s.schedule(&mut mesh);
        let big = s
            .submit(job("a", Priority::Standard, whole_shape(), 4))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(filler).unwrap().status, JobStatus::Running);
        assert_eq!(s.job(big).unwrap().status, JobStatus::Queued);
        for _ in 0..12 {
            s.submit(job("b", Priority::Standard, half_shape(), 4))
                .unwrap();
            s.advance(2, &mut mesh);
        }
        assert!(s.drain(&mut mesh, 1000));
        let rec = s.job(big).unwrap();
        assert_eq!(rec.status, JobStatus::Completed);
        // Once starving (wait ≥ 6 ticks) the barrier stops backfill, so
        // the big job ran long before the small-job stream drained.
        let big_done = rec.finished_at.unwrap();
        let last_done = s
            .jobs()
            .filter(|j| j.id != big)
            .filter_map(|j| j.finished_at)
            .max()
            .unwrap();
        assert!(
            big_done < last_done,
            "whole-machine job must not run last (finished {big_done} vs {last_done})"
        );
    }

    #[test]
    fn cancel_dequeues_or_evicts() {
        let (mut s, mut mesh) = setup();
        let a = s
            .submit(job("a", Priority::Standard, whole_shape(), 10))
            .unwrap();
        let b = s
            .submit(job("b", Priority::Standard, whole_shape(), 10))
            .unwrap();
        s.schedule(&mut mesh);
        assert!(s.cancel(b, &mut mesh));
        assert_eq!(s.job(b).unwrap().status, JobStatus::Canceled);
        assert!(s.cancel(a, &mut mesh));
        assert_eq!(mesh.free_count(), 16);
        assert!(!s.cancel(a, &mut mesh), "double cancel is refused");
    }

    #[test]
    fn identical_runs_produce_identical_event_logs() {
        let run = || {
            let (mut s, mut mesh) = setup();
            for i in 0..6 {
                let (tenant, prio) = match i % 3 {
                    0 => ("a", Priority::Scavenger),
                    1 => ("b", Priority::Standard),
                    _ => ("a", Priority::Production),
                };
                let shape = if i % 2 == 0 {
                    half_shape()
                } else {
                    whole_shape()
                };
                s.submit(job(tenant, prio, shape, 3 + i)).unwrap();
                s.advance(1, &mut mesh);
            }
            assert!(s.drain(&mut mesh, 1000));
            format!("{:?}", s.events())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_blobs_travel_with_the_job() {
        let (mut s, mut mesh) = setup();
        let scav = s
            .submit(job("a", Priority::Scavenger, whole_shape(), 100))
            .unwrap();
        s.schedule(&mut mesh);
        s.submit(job("b", Priority::Production, whole_shape(), 5))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(scav).unwrap().status, JobStatus::Preempted);
        s.store_checkpoint(scav, vec![1, 2, 3]);
        assert_eq!(
            s.job(scav).unwrap().checkpoint.as_deref(),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(s.take_checkpoint(scav), Some(vec![1, 2, 3]));
        assert_eq!(s.take_checkpoint(scav), None);
    }

    #[test]
    fn durable_checkpoints_survive_a_scheduler_restart() {
        use crate::vault::MemoryVault;
        let mut vault = MemoryVault::new();
        let (mut s, mut mesh) = setup();
        let scav = s
            .submit(job("a", Priority::Scavenger, whole_shape(), 100))
            .unwrap();
        s.schedule(&mut mesh);
        s.submit(job("b", Priority::Production, whole_shape(), 5))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(scav).unwrap().status, JobStatus::Preempted);
        s.store_checkpoint_durable(scav, vec![4, 5, 6], &mut vault)
            .unwrap();
        // Fast path: the in-memory copy answers first.
        assert_eq!(
            s.take_checkpoint_durable(scav, &mut vault),
            Some(vec![4, 5, 6])
        );
        // "qdaemon restart": a fresh scheduler has no in-memory blob,
        // but the vault copy survives and the recovery is flight-logged.
        let (mut restarted, _) = setup();
        assert_eq!(
            restarted.take_checkpoint_durable(scav, &mut vault),
            Some(vec![4, 5, 6])
        );
        assert!(restarted.flight_dump().contains("sched_vault_restore"));
        assert_eq!(
            restarted.take_checkpoint_durable(JobId(99), &mut vault),
            None
        );
    }

    #[test]
    fn stuck_machine_is_reported() {
        let mut s = Scheduler::new(machine(), SchedConfig::default());
        s.add_tenant("a", TenantConfig::default());
        let mut mesh = SimMesh::new(machine());
        mesh.quarantine(qcdoc_geometry::NodeId(0));
        s.submit(job("a", Priority::Standard, whole_shape(), 1))
            .unwrap();
        assert_eq!(s.step(&mut mesh), StepOutcome::Stuck);
    }

    #[test]
    fn failed_job_rolls_back_serves_holdoff_and_requeues() {
        let (mut s, mut mesh) = setup();
        let id = s
            .submit(job("a", Priority::Standard, half_shape(), 10))
            .unwrap();
        s.schedule(&mut mesh);
        s.advance(3, &mut mesh);
        s.store_checkpoint(id, vec![7]); // remaining = 7
        s.advance(2, &mut mesh); // remaining = 5, 2 ticks uncheckpointed
        assert!(s.fail_job(id, FailureClass::DeadLink, &[], &mut mesh));
        let rec = s.job(id).unwrap();
        assert_eq!(rec.status, JobStatus::Held);
        assert_eq!(rec.remaining, 7, "rolled back to the checkpoint");
        assert_eq!(rec.retries, 1);
        assert_eq!(rec.last_failure, Some(FailureClass::DeadLink));
        assert_eq!(rec.held_until, s.clock() + 4, "first hold-off is the base");
        // 2 rolled-back ticks on 8 nodes are waste, not goodput.
        assert_eq!(s.wasted_node_ticks(), 16);
        assert!(s.goodput_ratio() < s.occupancy_ratio());
        assert_eq!(mesh.free_count(), 16, "partition was released");
        // The hold expires, the job requeues, resumes, and completes.
        assert!(s.drain(&mut mesh, 100));
        assert_eq!(s.job(id).unwrap().status, JobStatus::Completed);
        assert_eq!(s.requeues(), 1);
        let log = format!("{:?}", s.events());
        assert!(log.contains("Failed"));
        assert!(log.contains("Requeued"));
        assert!(log.contains("Resumed"));
        assert!(s.flight_dump().contains("sched_fail"));
        assert!(s.flight_dump().contains("sched_requeue"));
    }

    #[test]
    fn retry_budget_exhaustion_is_terminal_and_manual_retry_revives() {
        let (mut s, mut mesh) = setup();
        let id = s
            .submit(job("a", Priority::Standard, half_shape(), 10))
            .unwrap();
        let budget = SchedConfig::default().retry_budget;
        for round in 0..=budget {
            // Place it (waiting out the hold-off), then kill it again.
            for _ in 0..200 {
                if s.job(id).unwrap().status == JobStatus::Running {
                    break;
                }
                s.schedule(&mut mesh);
                s.advance(1, &mut mesh);
            }
            assert_eq!(s.job(id).unwrap().status, JobStatus::Running);
            assert!(s.fail_job(id, FailureClass::NodeCrash, &[], &mut mesh));
            let rec = s.job(id).unwrap();
            assert_eq!(rec.retries, round + 1);
            if round < budget {
                assert_eq!(rec.status, JobStatus::Held);
                // Exponential back-off: base << retries-1.
                assert_eq!(rec.held_until, s.clock() + (4u64 << round.min(6)));
            }
        }
        assert_eq!(s.job(id).unwrap().status, JobStatus::Failed);
        assert_eq!(s.failed_terminal(), 1);
        assert_eq!(s.tenant_stats("a").unwrap().failed, 1);
        assert_eq!(mesh.free_count(), 16);
        // Terminal jobs don't block the drain and can't be re-failed or
        // cancelled.
        assert!(s.drain(&mut mesh, 100));
        assert!(!s.fail_job(id, FailureClass::NodeCrash, &[], &mut mesh));
        assert!(!s.cancel(id, &mut mesh));
        // An operator revives it with a fresh budget; it completes.
        assert!(s.retry(id, &mut mesh));
        assert!(s.drain(&mut mesh, 200));
        assert_eq!(s.job(id).unwrap().status, JobStatus::Completed);
    }

    #[test]
    fn requeue_placement_avoids_the_convicted_domain() {
        let (mut s, mut mesh) = setup();
        let id = s
            .submit(job("a", Priority::Standard, half_shape(), 10))
            .unwrap();
        s.schedule(&mut mesh);
        s.advance(2, &mut mesh);
        s.store_checkpoint(id, vec![1]);
        // Convict the half the job is running on (ids of its sub-box).
        let placed = s.job(id).unwrap().placement.clone().unwrap();
        let mach = s.machine().clone();
        let extents = [4usize, 2, 1];
        let convicted: Vec<u32> = mach
            .coords()
            .filter(|c| {
                (0..3).all(|ax| {
                    c.get(ax) >= placed.origin.get(ax)
                        && c.get(ax) < placed.origin.get(ax) + extents[ax]
                })
            })
            .map(|c| mach.rank_of(c).0)
            .collect();
        assert_eq!(convicted.len(), 8);
        assert!(s.fail_job(id, FailureClass::DeadLink, &convicted, &mut mesh));
        assert!(s.drain(&mut mesh, 100));
        let rec = s.job(id).unwrap();
        assert_eq!(rec.status, JobStatus::Completed);
        // Every placement after the failure avoided the convicted half.
        let resumed_origin = s
            .events()
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Resumed { job, .. } if *job == id => Some(()),
                _ => None,
            })
            .count();
        assert!(resumed_origin >= 1, "job resumed after the failure");
        let last = rec.shape_history.last().unwrap().clone();
        assert_eq!(last.node_count(), 8);
        // The job's record still carries the conviction, and its final
        // placement origin was outside it: reconstruct from the event
        // log that the resume landed on the other half.
        assert_eq!(rec.avoid, convicted);
    }

    /// Satellite regression: the retry seam must never double-release
    /// occupancy. A requeued job that is preempted *again* before its
    /// first new checkpoint, a failure that strikes an already-parked
    /// (preempted) job, and the subsequent resume must all keep the
    /// mesh and tenant accounting single-entry.
    #[test]
    fn requeue_then_preempt_again_keeps_occupancy_single_entry() {
        let (mut s, mut mesh) = setup();
        let victim = s
            .submit(job("a", Priority::Scavenger, whole_shape(), 50))
            .unwrap();
        s.schedule(&mut mesh);
        s.advance(5, &mut mesh);
        s.store_checkpoint(victim, vec![1]); // remaining = 45
                                             // Kill it: held, then requeued+resumed after the hold-off.
        assert!(s.fail_job(victim, FailureClass::NodeCrash, &[], &mut mesh));
        while s.job(victim).unwrap().status != JobStatus::Running {
            assert_ne!(s.step(&mut mesh), StepOutcome::Stuck);
        }
        // Before its first new checkpoint, production preempts it.
        let prod = s
            .submit(job("b", Priority::Production, whole_shape(), 3))
            .unwrap();
        s.schedule(&mut mesh);
        assert_eq!(s.job(victim).unwrap().status, JobStatus::Preempted);
        assert_eq!(s.job(prod).unwrap().status, JobStatus::Running);
        assert_eq!(s.tenant_stats("a").unwrap().running_nodes, 0);
        assert_eq!(s.tenant_stats("b").unwrap().running_nodes, 16);
        // A storage fault strikes the parked job: allowed, no partition
        // to release, occupancy untouched.
        let free_before = mesh.free_count();
        assert!(s.fail_job(victim, FailureClass::Storage, &[], &mut mesh));
        assert_eq!(mesh.free_count(), free_before, "no double release");
        assert_eq!(s.job(victim).unwrap().status, JobStatus::Held);
        // Everything still drains with consistent accounting.
        assert!(s.drain(&mut mesh, 1000));
        assert_eq!(s.job(victim).unwrap().status, JobStatus::Completed);
        assert_eq!(s.job(prod).unwrap().status, JobStatus::Completed);
        assert_eq!(mesh.free_count(), 16);
        assert_eq!(s.tenant_stats("a").unwrap().running_nodes, 0);
        assert_eq!(s.tenant_stats("b").unwrap().running_nodes, 0);
    }

    #[test]
    fn fail_job_is_refused_for_non_running_states() {
        let (mut s, mut mesh) = setup();
        let id = s
            .submit(job("a", Priority::Standard, half_shape(), 2))
            .unwrap();
        // Queued: refuse.
        assert!(!s.fail_job(id, FailureClass::DeadLink, &[], &mut mesh));
        assert!(s.drain(&mut mesh, 100));
        // Completed: refuse.
        assert!(!s.fail_job(id, FailureClass::DeadLink, &[], &mut mesh));
        assert!(!s.retry(JobId(99), &mut mesh), "unknown job");
    }
}
