//! Durable checkpoint storage at the scheduler boundary.
//!
//! PR 6's preemption protocol parks a preempted job's exact-bits CG
//! checkpoint as an opaque blob in scheduler memory — which means a
//! qdaemon restart loses every parked job. The paper's operating model
//! (§3.2, §4) puts that state on the host RAID instead: checkpoints
//! belong on disk, where they outlive the process that took them.
//!
//! [`CheckpointVault`] is the boundary trait: the scheduler stays
//! storage-agnostic (blobs in, blobs out, `String` errors), the host
//! crate implements it over its NFS server + durable `CheckpointStore`
//! (atomic generations, verified restore), and [`MemoryVault`] is the
//! in-process reference implementation for tests and for deployments
//! that accept the old semantics.

use crate::job::JobId;
use std::collections::HashMap;

/// Durable parking for preempted jobs' checkpoint blobs.
///
/// Implementations must make a stored blob readable after the scheduler
/// process that stored it is gone (except [`MemoryVault`], which
/// documents that it does not). Errors are strings because the scheduler
/// can do nothing smarter than record and surface them.
pub trait CheckpointVault {
    /// Durably store `blob` for `job`, replacing any previous one.
    /// Returns an implementation-defined generation number.
    fn store(&mut self, job: JobId, blob: &[u8]) -> Result<u64, String>;

    /// Load the newest good blob for `job`, `None` if none was stored.
    fn load(&mut self, job: JobId) -> Result<Option<Vec<u8>>, String>;

    /// Drop `job`'s blobs (the job completed or was cancelled); best
    /// effort.
    fn discard(&mut self, job: JobId);
}

/// In-memory reference vault: correct protocol, no durability across a
/// process restart.
#[derive(Debug, Default)]
pub struct MemoryVault {
    blobs: HashMap<u64, (u64, Vec<u8>)>,
}

impl MemoryVault {
    /// An empty vault.
    pub fn new() -> MemoryVault {
        MemoryVault::default()
    }
}

impl CheckpointVault for MemoryVault {
    fn store(&mut self, job: JobId, blob: &[u8]) -> Result<u64, String> {
        let gen = self.blobs.get(&job.0).map(|(g, _)| g + 1).unwrap_or(0);
        self.blobs.insert(job.0, (gen, blob.to_vec()));
        Ok(gen)
    }

    fn load(&mut self, job: JobId) -> Result<Option<Vec<u8>>, String> {
        Ok(self.blobs.get(&job.0).map(|(_, b)| b.clone()))
    }

    fn discard(&mut self, job: JobId) {
        self.blobs.remove(&job.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_vault_roundtrip_replace_discard() {
        let mut v = MemoryVault::new();
        let job = JobId(7);
        assert_eq!(v.load(job).unwrap(), None);
        assert_eq!(v.store(job, b"one").unwrap(), 0);
        assert_eq!(v.store(job, b"two").unwrap(), 1, "replace bumps generation");
        assert_eq!(v.load(job).unwrap().as_deref(), Some(&b"two"[..]));
        v.discard(job);
        assert_eq!(v.load(job).unwrap(), None);
    }
}
