//! Batch jobs: what a tenant asks the machine to do.

use qcdoc_fault::FailureClass;
use qcdoc_geometry::{NodeCoord, TorusShape};
use serde::{Deserialize, Serialize};

/// Priority classes, lowest to highest. Preemption only ever evicts a
/// job of a *strictly lower* class, so scavenger work soaks up idle
/// nodes without ever delaying production running at full priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Opportunistic filler: runs on whatever is idle, first to be
    /// preempted.
    Scavenger,
    /// Normal batch work.
    Standard,
    /// Deadline work: may preempt lower classes to get on the machine.
    Production,
}

impl Priority {
    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Scavenger => "scavenger",
            Priority::Standard => "standard",
            Priority::Production => "production",
        }
    }
}

/// One acceptable partition shape for a job: a physical sub-box (the
/// scheduler picks the origin) plus the axis grouping that folds it into
/// the logical torus the application runs on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeRequest {
    /// Requested extent along each physical axis.
    pub extents: Vec<usize>,
    /// Logical axis groups, as in [`qcdoc_geometry::PartitionSpec`].
    pub groups: Vec<Vec<usize>>,
}

impl ShapeRequest {
    /// Number of nodes the shape occupies.
    pub fn node_count(&self) -> usize {
        self.extents.iter().product()
    }
}

/// A tenant's job request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Owning tenant (must be registered before submission).
    pub tenant: String,
    /// Priority class.
    pub priority: Priority,
    /// Acceptable shapes in preference order; the scheduler grants the
    /// first that fits. A preempted job may resume on a *different*
    /// shape from this list — the checkpoint protocol guarantees the
    /// result is bit-identical either way.
    pub shapes: Vec<ShapeRequest>,
    /// Service demand in scheduler ticks (for the CG acceptance tests,
    /// one tick is one solver iteration).
    pub work: u64,
    /// Whether the job may be preempted by a higher class. Checkpointed
    /// solvers say yes; jobs without a checkpoint story say no and are
    /// only ever stopped by `cancel`.
    pub preemptible: bool,
}

/// Job identifier, unique within one scheduler.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Accepted, waiting for nodes.
    Queued,
    /// Holding a partition and accruing service.
    Running,
    /// Evicted mid-run; its checkpoint blob is retained and it waits in
    /// the queue for a new placement.
    Preempted,
    /// Died mid-run and is serving its exponential hold-off before the
    /// scheduler requeues it — the `Held(backoff)` state of the autonomic
    /// loop. Flips back to [`JobStatus::Queued`] when the hold expires.
    Held,
    /// Exhausted its retry budget; terminal unless an operator revives
    /// it with a manual `qretry`.
    Failed,
    /// All requested work delivered.
    Completed,
    /// Removed by the user before completion.
    Canceled,
}

/// A granted placement: which partition, where, and what logical shape
/// the job sees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantedPlacement {
    /// Partition id in the mesh host (the qdaemon's allocation id).
    pub partition: u32,
    /// Physical origin of the sub-box.
    pub origin: NodeCoord,
    /// Index into [`JobSpec::shapes`] of the granted shape.
    pub shape_index: usize,
    /// The logical torus the job runs on.
    pub logical: TorusShape,
}

/// The scheduler's full record of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// The request as submitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Clock tick at submission.
    pub submitted_at: u64,
    /// Tick the job last entered the queue (submission or preemption) —
    /// the reference point for aging.
    pub queued_since: u64,
    /// Tick of the first placement, once started.
    pub first_started_at: Option<u64>,
    /// Tick the job completed or was cancelled.
    pub finished_at: Option<u64>,
    /// Service ticks still owed.
    pub remaining: u64,
    /// Current placement while running.
    pub placement: Option<GrantedPlacement>,
    /// Logical shapes of every placement the job has held, in order —
    /// after a preempt-and-resume the list shows whether the shape
    /// changed.
    pub shape_history: Vec<TorusShape>,
    /// Times this job was preempted.
    pub preemptions: u32,
    /// Total ticks spent waiting in the queue.
    pub wait_ticks: u64,
    /// Opaque checkpoint blob stored at preemption (for CG jobs, the
    /// NERSC-style archive from `qcdoc_lattice::checkpoint`). The
    /// scheduler never interprets it; it travels with the job to its
    /// next placement.
    pub checkpoint: Option<Vec<u8>>,
    /// Times this job was requeued after a failure (distinct from
    /// voluntary preemptions) — charged against
    /// [`crate::SchedConfig::retry_budget`].
    pub retries: u32,
    /// Classification of the most recent failure, if any.
    pub last_failure: Option<FailureClass>,
    /// While [`JobStatus::Held`]: the clock tick the hold-off expires.
    pub held_until: u64,
    /// The convicted failure domain of the last failure: node ids the
    /// next placement must not include.
    pub avoid: Vec<u32>,
    /// `remaining` as of the newest stored checkpoint — the service
    /// level a failure rolls the job back to. `None` means no checkpoint
    /// exists and a failure restarts the job from scratch.
    pub checkpoint_remaining: Option<u64>,
}

impl JobRecord {
    /// Nodes of the largest acceptable shape — what quota admission
    /// charges the job against.
    pub fn max_nodes(&self) -> usize {
        self.spec
            .shapes
            .iter()
            .map(ShapeRequest::node_count)
            .max()
            .unwrap_or(0)
    }

    /// Nodes currently held (0 unless running).
    pub fn held_nodes(&self) -> usize {
        self.placement
            .as_ref()
            .map(|p| p.logical.node_count())
            .unwrap_or(0)
    }
}
