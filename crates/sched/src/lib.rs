//! Multi-tenant job scheduling for the QCDOC host (§3.1 and the
//! companion status reports, hep-lat/0306023 / hep-lat/0309096).
//!
//! The machine's signature software feature — carving the 6-D mesh into
//! independent 1..6-D partitions "without moving cables" — only pays off
//! once *many* physics groups can share one 12,288-node installation.
//! The qdaemon is their front door; this crate is the brain behind it:
//!
//! * [`tenant`] — tenants (physics groups) with fair-share weights and
//!   node quotas;
//! * [`job`] — batch job requests: a tenant, a priority class, one or
//!   more acceptable partition shapes, and a service demand;
//! * [`mesh`] — the [`MeshHost`] boundary the scheduler drives
//!   (implemented by the host's `Qdaemon`, and by the in-crate
//!   [`SimMesh`] for tests and benchmarks);
//! * [`scheduler`] — the deterministic scheduler itself: admission
//!   control, torus-aware best-fit packing over
//!   [`qcdoc_geometry::OccupancyMap`], fair-share ordering with strict
//!   aging (zero starvation), and preemption of lower-priority work via
//!   exact-bits checkpoints (the blob protocol of
//!   `qcdoc_lattice::checkpoint` — opaque bytes at this layer);
//! * [`vault`] — the [`CheckpointVault`] boundary for *durable* parking
//!   of preempted jobs' blobs (the host implements it over its NFS
//!   checkpoint store, so parked jobs survive a qdaemon restart);
//! * [`state`] — the scheduler's own durable snapshot
//!   ([`Scheduler::save_state`] / [`Scheduler::restore_state`]) plus
//!   [`Scheduler::recover_after_restart`], which turns a host crash
//!   into a round of checkpoint-requeues instead of lost jobs.
//!
//! Failure is part of the schedule: [`Scheduler::fail_job`] classifies a
//! dead run (via [`qcdoc_fault::FailureClass`]), rolls the job back to
//! its newest checkpoint, serves an exponential hold-off, and requeues
//! it away from the convicted failure domain under a bounded retry
//! budget — the detect-and-requeue half of the autonomic loop the chaos
//! soak proves out.
//!
//! Everything is deterministic: virtual time is an explicit tick clock,
//! orderings use total comparisons with stable tie-breaks, and the same
//! submission stream against the same machine always produces the same
//! placement history. That is what makes a week of multi-tenant
//! operations compressible into a seeded soak test.

#![warn(missing_docs)]

pub mod job;
pub mod mesh;
pub mod scheduler;
pub mod state;
pub mod tenant;
pub mod vault;

pub use job::{JobId, JobRecord, JobSpec, JobStatus, Priority, ShapeRequest};
pub use mesh::{MeshHost, Placement, SimMesh};
pub use qcdoc_fault::FailureClass;
pub use scheduler::{AdmitError, SchedConfig, SchedEvent, Scheduler, StepOutcome};
pub use state::STATE_JOB;
pub use tenant::{TenantConfig, TenantStats};
pub use vault::{CheckpointVault, MemoryVault};
