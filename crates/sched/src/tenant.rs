//! Tenants: the physics groups competing for the machine.

use serde::{Deserialize, Serialize};

/// Static configuration of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Fair-share weight: a tenant with twice the weight is entitled to
    /// twice the node-ticks before its jobs sort behind others'.
    pub weight: f64,
    /// Maximum nodes the tenant may occupy concurrently. Admission
    /// rejects jobs whose smallest acceptable shape exceeds this.
    pub node_quota: usize,
    /// Maximum jobs the tenant may have queued (not yet running).
    pub max_queued: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1.0,
            node_quota: usize::MAX,
            max_queued: usize::MAX,
        }
    }
}

/// Running accounting for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled before completion.
    pub canceled: u64,
    /// Times one of this tenant's jobs was preempted.
    pub preemptions: u64,
    /// Times one of this tenant's jobs was requeued after a failure.
    pub requeues: u64,
    /// Jobs that exhausted their retry budget and failed terminally.
    pub failed: u64,
    /// Total ticks the tenant's jobs spent waiting in the queue
    /// (submission → first start, plus preemption → resume).
    pub wait_ticks: u64,
    /// Total node·ticks of service delivered to the tenant.
    pub node_ticks: u64,
    /// Nodes the tenant occupies right now.
    pub running_nodes: usize,
    /// High-water mark of concurrently occupied nodes — the quota
    /// enforcement witness the soak test asserts on.
    pub max_running_nodes: usize,
}

impl TenantStats {
    /// Fair-share charge: node-ticks consumed per unit of weight.
    pub fn share(&self, config: &TenantConfig) -> f64 {
        self.node_ticks as f64 / config.weight.max(f64::MIN_POSITIVE)
    }
}
