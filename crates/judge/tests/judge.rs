//! End-to-end tests for the `bench-judge` binary: bless adoption,
//! clean-pass, synthetic regression, and bless determinism.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bench-judge")
}

/// A fresh scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("bench-judge-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, rel: &str) -> PathBuf {
        self.0.join(rel)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn export(bench: &str, ratio: f64, p99: u64) -> String {
    format!(
        r#"{{
  "schema": "qcdoc-telemetry-v2",
  "bench": "{bench}",
  "metrics": [
    {{"name": "overhead_ratio", "labels": {{}}, "type": "gauge", "value": {ratio}}},
    {{"name": "latency_us", "labels": {{"load": "empty"}}, "type": "histogram", "count": 10, "sum": 100, "p50": 7, "p95": {p99}, "p99": {p99}, "buckets": [[7, 9], [{p99}, 1]]}}
  ],
  "phases": [],
  "spans_total": 0
}}
"#
    )
}

const MANIFEST: &str = "\
default_tolerance 0.05
demo overhead_ratio lower 0.10 gate
demo latency_us{load=empty}:p99 lower 3.0 gate
";

fn run(scratch: &Scratch, current: &Path, extra: &[&str]) -> Output {
    Command::new(bin())
        .args([
            "--baselines",
            scratch.path("baselines").to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
            "--manifest",
            scratch.path("judge.manifest").to_str().unwrap(),
            "--report",
            scratch.path("report.md").to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .unwrap()
}

fn setup(scratch: &Scratch) -> PathBuf {
    let current = scratch.path("current");
    fs::create_dir_all(&current).unwrap();
    fs::write(current.join("BENCH_demo.json"), export("demo", 1.02, 15)).unwrap();
    fs::write(scratch.path("judge.manifest"), MANIFEST).unwrap();
    current
}

#[test]
fn bless_then_clean_pass_then_synthetic_regression() {
    let scratch = Scratch::new("e2e");
    let current = setup(&scratch);

    // Judging with no baselines is a hard error (exit 2).
    fs::create_dir_all(scratch.path("baselines")).unwrap();
    let out = run(&scratch, &current, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Bless adopts the current exports byte-for-byte.
    let out = run(&scratch, &current, &["--bless"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        fs::read(scratch.path("baselines/BENCH_demo.json")).unwrap(),
        fs::read(current.join("BENCH_demo.json")).unwrap(),
    );

    // Clean HEAD: identical exports pass and the report says so.
    let out = run(&scratch, &current, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let report = fs::read_to_string(scratch.path("report.md")).unwrap();
    assert!(report.contains("0 regressions"), "{report}");

    // Degrade the gated ratio 20% past its 10% tolerance: exit 1 with a
    // REGRESSION row naming the metric.
    fs::write(current.join("BENCH_demo.json"), export("demo", 1.25, 15)).unwrap();
    let out = run(&scratch, &current, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let report = fs::read_to_string(scratch.path("report.md")).unwrap();
    assert!(report.contains("| `overhead_ratio` |"), "{report}");
    assert!(report.contains("REGRESSION"), "{report}");

    // One log2 bucket hop on the p99 (15 -> 31) stays inside its 3.0
    // tolerance; two hops (15 -> 127) fail.
    fs::write(current.join("BENCH_demo.json"), export("demo", 1.02, 31)).unwrap();
    assert_eq!(run(&scratch, &current, &[]).status.code(), Some(0));
    fs::write(current.join("BENCH_demo.json"), export("demo", 1.02, 127)).unwrap();
    let out = run(&scratch, &current, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let report = fs::read_to_string(scratch.path("report.md")).unwrap();
    assert!(report.contains("latency_us{load=empty}:p99"), "{report}");
}

#[test]
fn bless_is_byte_deterministic() {
    let scratch = Scratch::new("bless");
    let current = setup(&scratch);
    assert_eq!(run(&scratch, &current, &["--bless"]).status.code(), Some(0));
    let first = fs::read(scratch.path("baselines/BENCH_demo.json")).unwrap();
    assert_eq!(run(&scratch, &current, &["--bless"]).status.code(), Some(0));
    let second = fs::read(scratch.path("baselines/BENCH_demo.json")).unwrap();
    assert_eq!(
        first, second,
        "re-blessing identical exports must be a no-op"
    );
}

#[test]
fn bless_refuses_malformed_exports() {
    let scratch = Scratch::new("malformed");
    let current = scratch.path("current");
    fs::create_dir_all(&current).unwrap();
    fs::write(current.join("BENCH_bad.json"), "{not json").unwrap();
    let out = run(&scratch, &current, &["--bless"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(!scratch.path("baselines/BENCH_bad.json").exists());
}

#[test]
fn missing_bench_export_fails_the_gate() {
    let scratch = Scratch::new("missing");
    let current = setup(&scratch);
    assert_eq!(run(&scratch, &current, &["--bless"]).status.code(), Some(0));
    // The bench stops exporting: gated failure, not a silent pass.
    fs::remove_file(current.join("BENCH_demo.json")).unwrap();
    let out = run(&scratch, &current, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let report = fs::read_to_string(scratch.path("report.md")).unwrap();
    assert!(report.contains("<bench export>"), "{report}");
}
