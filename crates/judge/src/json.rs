//! A minimal recursive-descent JSON reader for the judge.
//!
//! The workspace builds offline with no external JSON crate, and the
//! telemetry exporters hand-roll their output; this module is the
//! matching hand-rolled reader. It accepts the full JSON grammar the
//! exporters emit (objects, arrays, strings with escapes, numbers,
//! booleans, null) — enough to refuse malformed baselines with a useful
//! error instead of a panic.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte slices at char boundaries are safe to re-check).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exporter_shaped_document() {
        let doc = parse(
            r#"{
  "schema": "qcdoc-telemetry-v2",
  "bench": "sched",
  "metrics": [
    {"name": "r", "labels": {"load": "empty"}, "type": "gauge", "value": 1.5},
    {"name": "h", "labels": {}, "type": "histogram", "count": 4, "sum": 10, "p50": 3, "p95": 7, "p99": 7, "buckets": [[3, 3], [7, 1]]}
  ],
  "phases": [],
  "spans_total": 0
}"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("sched"));
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics[0].get("value").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            metrics[0].get("labels").unwrap().get("load").unwrap(),
            &Json::Str("empty".to_string())
        );
        assert_eq!(metrics[1].get("p99").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn parses_escapes_negatives_and_exponents() {
        let doc = parse(r#"{"s": "a\"b\\c\nd", "n": -2.5e-3, "t": true, "x": null}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(-0.0025));
        assert_eq!(doc.get("t").unwrap(), &Json::Bool(true));
        assert_eq!(doc.get("x").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#"[1, ]"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }
}
