//! CLI front-end for the benchmark judge.
//!
//! ```text
//! bench-judge [--baselines DIR] [--current DIR] [--manifest FILE]
//!             [--report FILE] [--bless]
//! ```
//!
//! Reads every `BENCH_*.json` under the baselines directory, pairs each
//! with the same-named export under the current directory (the workspace
//! root, where the benches write), judges them under the manifest policy,
//! writes the markdown report, and exits 0 (clean), 1 (gated regression),
//! or 2 (usage / IO / parse error). `--bless` instead archives the
//! outgoing baselines into the next `bench/history/NNNN/` slot, copies
//! the current exports over the baselines byte-for-byte, and exits 0.

use qcdoc_judge::history::archive_baselines;
use qcdoc_judge::{judge, parse_bench_doc, parse_manifest, BenchDoc};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    baselines: PathBuf,
    current: PathBuf,
    manifest: PathBuf,
    report: PathBuf,
    bless: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baselines: PathBuf::from("bench/baselines"),
        current: PathBuf::from("."),
        manifest: PathBuf::from("bench/judge.manifest"),
        report: PathBuf::from("target/judge_report.md"),
        bless: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_arg = |dest: &mut PathBuf| {
            it.next()
                .map(|v| *dest = PathBuf::from(v))
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--baselines" => path_arg(&mut opts.baselines)?,
            "--current" => path_arg(&mut opts.current)?,
            "--manifest" => path_arg(&mut opts.manifest)?,
            "--report" => path_arg(&mut opts.report)?,
            "--bless" => opts.bless = true,
            "--help" | "-h" => {
                return Err("usage: bench-judge [--baselines DIR] [--current DIR] \
                     [--manifest FILE] [--report FILE] [--bless]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

/// `BENCH_*.json` files in `dir`, sorted by file name for determinism.
fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

fn load_docs(files: &[PathBuf]) -> Result<Vec<BenchDoc>, String> {
    files
        .iter()
        .map(|path| {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            parse_bench_doc(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect()
}

fn run(opts: &Options) -> Result<bool, String> {
    if opts.bless {
        let files = bench_files(&opts.current)?;
        if files.is_empty() {
            return Err(format!(
                "no BENCH_*.json under {} — run the benches first",
                opts.current.display()
            ));
        }
        // Snapshot the outgoing baselines into bench/history/NNNN/ so
        // the old trajectory anchor survives the overwrite.
        let history = opts
            .baselines
            .parent()
            .map(|p| p.join("history"))
            .unwrap_or_else(|| PathBuf::from("history"));
        if let Some(slot) = archive_baselines(&opts.baselines, &history)? {
            println!("archived outgoing baselines to {}", slot.display());
        }
        fs::create_dir_all(&opts.baselines)
            .map_err(|e| format!("cannot create {}: {e}", opts.baselines.display()))?;
        for path in &files {
            // Parse before copying so a malformed export can't be blessed.
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            parse_bench_doc(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            let dest = opts.baselines.join(path.file_name().unwrap());
            fs::write(&dest, &text).map_err(|e| format!("cannot write {}: {e}", dest.display()))?;
            println!("blessed {}", dest.display());
        }
        return Ok(true);
    }

    let manifest_text = fs::read_to_string(&opts.manifest)
        .map_err(|e| format!("cannot read {}: {e}", opts.manifest.display()))?;
    let manifest = parse_manifest(&manifest_text)?;
    let baselines = load_docs(&bench_files(&opts.baselines)?)?;
    if baselines.is_empty() {
        return Err(format!(
            "no baselines under {} — run benches then `bench-judge --bless`",
            opts.baselines.display()
        ));
    }
    // Only currents that have a baseline or a manifest policy matter;
    // load them all anyway so brand-new benches surface as `new`.
    let currents = load_docs(&bench_files(&opts.current)?)?;

    let judgement = judge(&baselines, &currents, &manifest);
    let report = judgement.render_markdown(&opts.baselines.display().to_string());
    if let Some(parent) = opts.report.parent() {
        let _ = fs::create_dir_all(parent);
    }
    fs::write(&opts.report, &report)
        .map_err(|e| format!("cannot write {}: {e}", opts.report.display()))?;
    print!("{report}");
    if judgement.failed() {
        eprintln!(
            "bench-judge: FAILED — gated regression(s); see {}",
            opts.report.display()
        );
        Ok(false)
    } else {
        println!("bench-judge: ok");
        Ok(true)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench-judge: {msg}");
            ExitCode::from(2)
        }
    }
}
