//! Baseline history: the audit trail behind `bench-judge --bless`.
//!
//! Blessing overwrites `bench/baselines/` byte-for-byte, which is
//! deterministic but destructive — the old trajectory anchor is gone.
//! This module snapshots the outgoing baseline set into a numbered slot
//! under `bench/history/` (`0001/`, `0002/`, …) before every bless, so
//! any past anchor can be replayed against a current export with
//! `bench-judge --baselines bench/history/NNNN`.

use std::fs;
use std::path::{Path, PathBuf};

/// `BENCH_*.json` files directly under `dir`, sorted by name. Missing
/// directory reads as empty (a first-ever bless has no baselines yet).
pub fn baseline_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", dir.display())),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Next free slot number under `history`: one past the highest existing
/// four-digit directory, starting at 1. Non-numeric entries are ignored.
pub fn next_slot(history: &Path) -> Result<u32, String> {
    let entries = match fs::read_dir(history) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(1),
        Err(e) => return Err(format!("cannot read {}: {e}", history.display())),
    };
    let highest = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().to_str().and_then(|n| n.parse::<u32>().ok()))
        .max()
        .unwrap_or(0);
    Ok(highest + 1)
}

/// Snapshot the current baseline set into `history/NNNN/`. Returns the
/// slot directory written, or `None` when there are no baselines to
/// archive (first-ever bless). The copy is byte-for-byte, like blessing
/// itself, so a history slot is a drop-in `--baselines` directory.
pub fn archive_baselines(baselines: &Path, history: &Path) -> Result<Option<PathBuf>, String> {
    let files = baseline_files(baselines)?;
    if files.is_empty() {
        return Ok(None);
    }
    let slot = history.join(format!("{:04}", next_slot(history)?));
    fs::create_dir_all(&slot).map_err(|e| format!("cannot create {}: {e}", slot.display()))?;
    for path in &files {
        let dest = slot.join(path.file_name().unwrap());
        fs::copy(path, &dest)
            .map_err(|e| format!("cannot copy {} to {}: {e}", path.display(), dest.display()))?;
    }
    Ok(Some(slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qcdoc-judge-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_baselines_archive_to_nothing() {
        let root = scratch("empty");
        let archived = archive_baselines(&root.join("baselines"), &root.join("history")).unwrap();
        assert_eq!(archived, None);
        assert!(!root.join("history").exists(), "no slot dir for nothing");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn slots_number_sequentially_and_copy_bytes() {
        let root = scratch("slots");
        let baselines = root.join("baselines");
        let history = root.join("history");
        fs::create_dir_all(&baselines).unwrap();
        fs::write(baselines.join("BENCH_a.json"), b"{\"v\":1}").unwrap();
        fs::write(baselines.join("notes.txt"), b"ignored").unwrap();

        let slot1 = archive_baselines(&baselines, &history).unwrap().unwrap();
        assert_eq!(slot1, history.join("0001"));
        assert_eq!(fs::read(slot1.join("BENCH_a.json")).unwrap(), b"{\"v\":1}");
        assert!(
            !slot1.join("notes.txt").exists(),
            "only BENCH_*.json travel"
        );

        fs::write(baselines.join("BENCH_a.json"), b"{\"v\":2}").unwrap();
        let slot2 = archive_baselines(&baselines, &history).unwrap().unwrap();
        assert_eq!(slot2, history.join("0002"));
        assert_eq!(fs::read(slot2.join("BENCH_a.json")).unwrap(), b"{\"v\":2}");
        assert_eq!(
            fs::read(slot1.join("BENCH_a.json")).unwrap(),
            b"{\"v\":1}",
            "older slots are immutable"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn next_slot_skips_non_numeric_entries() {
        let root = scratch("nonnum");
        let history = root.join("history");
        fs::create_dir_all(history.join("0007")).unwrap();
        fs::create_dir_all(history.join("README-dir")).unwrap();
        fs::write(history.join("0042"), b"a file, not a slot").unwrap();
        assert_eq!(next_slot(&history).unwrap(), 8);
        let _ = fs::remove_dir_all(&root);
    }
}
