//! Continuous benchmark judge: the enforcement side of observability.
//!
//! Every overhead bench in this workspace exports a `BENCH_<name>.json`
//! snapshot (via [`qcdoc_telemetry::bench_summary_json`]); committed
//! baselines for the same benches live under `bench/baselines/`. This
//! crate diffs the two — per-metric ratios under a per-metric policy
//! (direction, noise tolerance, hard-gate vs report-only, declared in a
//! small manifest) — renders a MetaQCD-style markdown report showing only
//! the significant rows, and tells the caller whether the trajectory
//! regressed. The `bench-judge` binary wires it into `scripts/verify.sh`
//! so the perf story of the repo is a gated trajectory, not an anecdote;
//! `--bless` moves the baseline intentionally (a byte-for-byte copy, so
//! blessing is deterministic), archiving the outgoing baseline set into
//! a numbered slot under `bench/history/` first (see [`history`]).

#![warn(missing_docs)]

pub mod history;
pub mod json;

use json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema stamp a bench export must carry to be judged.
pub const SCHEMA: &str = "qcdoc-telemetry-v2";

/// One bench's export, flattened for diffing: every gauge/counter becomes
/// a `name{labels}` key, every histogram additionally expands into
/// `:count`, `:sum`, `:p50`, `:p95`, `:p99` keys.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Bench name stamped into the export (`"sched"`, `"integrity"`, …).
    pub bench: String,
    /// Flattened metric key → value.
    pub metrics: BTreeMap<String, f64>,
}

/// Parse one `BENCH_*.json` document. Refuses exports without the v2
/// schema stamp or bench name — an unstamped baseline cannot be trusted
/// to be comparing like with like.
pub fn parse_bench_doc(text: &str) -> Result<BenchDoc, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("export has no schema stamp")?;
    if schema != SCHEMA {
        return Err(format!(
            "schema mismatch: expected {SCHEMA:?}, found {schema:?} — regenerate the export"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("export has no bench name stamp")?
        .to_string();
    let mut metrics = BTreeMap::new();
    for entry in doc
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("export has no metrics array")?
    {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or("metric without name")?;
        let mut labels: Vec<String> = entry
            .get("labels")
            .and_then(Json::as_obj)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| format!("{k}={s}")))
                    .collect()
            })
            .unwrap_or_default();
        labels.sort();
        let key = if labels.is_empty() {
            name.to_string()
        } else {
            format!("{name}{{{}}}", labels.join(","))
        };
        let kind = entry.get("type").and_then(Json::as_str).unwrap_or("gauge");
        if kind == "histogram" {
            for facet in ["count", "sum", "p50", "p95", "p99"] {
                if let Some(v) = entry.get(facet).and_then(Json::as_f64) {
                    metrics.insert(format!("{key}:{facet}"), v);
                }
            }
        } else if let Some(v) = entry.get("value").and_then(Json::as_f64) {
            metrics.insert(key, v);
        }
    }
    Ok(BenchDoc { bench, metrics })
}

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (overhead ratios, latencies).
    Lower,
    /// Larger is better (occupancy, throughput, speedups).
    Higher,
}

/// What a significant move does to the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// A regression fails the judge (and verify.sh with it).
    Gate,
    /// Shown in the report, never fails the run.
    Report,
}

/// One manifest row: the policy for a metric of a bench.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Bench the policy applies to.
    pub bench: String,
    /// Flattened metric key (as produced by [`parse_bench_doc`]).
    pub metric: String,
    /// Which way better points.
    pub direction: Direction,
    /// Relative noise band: a ratio within `1 ± tolerance` is invariant.
    pub tolerance: f64,
    /// Gate or report-only.
    pub mode: Mode,
}

/// The parsed policy manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Noise band for metrics with no explicit policy (report-only).
    pub default_tolerance: f64,
    /// Explicit per-metric policies.
    pub policies: Vec<Policy>,
}

impl Manifest {
    /// The policy for `(bench, metric)`, if declared.
    pub fn lookup(&self, bench: &str, metric: &str) -> Option<&Policy> {
        self.policies
            .iter()
            .find(|p| p.bench == bench && p.metric == metric)
    }

    /// Benches named by at least one policy, deduplicated and sorted.
    pub fn benches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.policies.iter().map(|p| p.bench.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Parse the manifest format: `#` comments, blank lines,
/// `default_tolerance <f64>`, and policy rows
/// `<bench> <metric> <lower|higher> <tolerance> <gate|report>`.
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let mut manifest = Manifest {
        default_tolerance: 0.05,
        policies: Vec::new(),
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let at = |msg: &str| format!("manifest line {}: {msg}", lineno + 1);
        if fields[0] == "default_tolerance" {
            if fields.len() != 2 {
                return Err(at("default_tolerance takes one value"));
            }
            manifest.default_tolerance = fields[1]
                .parse()
                .map_err(|_| at("bad default_tolerance value"))?;
            continue;
        }
        if fields.len() != 5 {
            return Err(at(
                "expected `<bench> <metric> <lower|higher> <tolerance> <gate|report>`",
            ));
        }
        let direction = match fields[2] {
            "lower" => Direction::Lower,
            "higher" => Direction::Higher,
            other => return Err(at(&format!("bad direction {other:?}"))),
        };
        let tolerance: f64 = fields[3].parse().map_err(|_| at("bad tolerance"))?;
        if tolerance.is_nan() || tolerance < 0.0 {
            return Err(at("tolerance must be >= 0"));
        }
        let mode = match fields[4] {
            "gate" => Mode::Gate,
            "report" => Mode::Report,
            other => return Err(at(&format!("bad mode {other:?}"))),
        };
        manifest.policies.push(Policy {
            bench: fields[0].to_string(),
            metric: fields[1].to_string(),
            direction,
            tolerance,
            mode,
        });
    }
    Ok(manifest)
}

/// The judge's classification of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved the wrong way past its tolerance.
    Regression,
    /// Moved the right way past its tolerance.
    Improvement,
    /// Within the noise band (hidden from the report table).
    Invariant,
    /// Moved past tolerance, but the metric has no declared direction.
    Changed,
    /// In the baseline (or gated by the manifest) but absent now.
    Missing,
    /// In the current export but not the baseline (informational).
    New,
}

impl Verdict {
    /// Stable uppercase tag used in the report table.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Invariant => "invariant",
            Verdict::Changed => "changed",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One judged metric.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Flattened metric key.
    pub metric: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// `current / baseline`, when both are present and baseline ≠ 0.
    pub ratio: Option<f64>,
    /// Whether the policy (if any) gates.
    pub mode: Mode,
    /// Human-readable policy string for the report.
    pub policy: String,
    /// The classification.
    pub verdict: Verdict,
}

impl Finding {
    /// Whether this finding fails the judge.
    pub fn fails(&self) -> bool {
        self.mode == Mode::Gate && matches!(self.verdict, Verdict::Regression | Verdict::Missing)
    }

    /// Whether the report table shows this finding.
    pub fn significant(&self) -> bool {
        !matches!(self.verdict, Verdict::Invariant | Verdict::New)
    }
}

/// The full judgement of current exports against baselines.
#[derive(Debug, Clone, Default)]
pub struct Judgement {
    /// Every metric's finding (including invariant ones).
    pub findings: Vec<Finding>,
    /// Bench names compared.
    pub benches: Vec<String>,
}

impl Judgement {
    /// Whether any gated finding regressed or went missing.
    pub fn failed(&self) -> bool {
        self.findings.iter().any(Finding::fails)
    }

    /// Count findings with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.findings
            .iter()
            .filter(|f| f.verdict == verdict)
            .count()
    }

    /// Render the MetaQCD-style markdown report: a header, one table of
    /// significant rows (regressions first), and a summary line covering
    /// what the table hides. Deterministic for identical inputs.
    pub fn render_markdown(&self, baselines_label: &str) -> String {
        let mut out = String::from("# Benchmark judge report\n\n");
        let _ = writeln!(
            out,
            "Baselines: `{}` · benches compared: {}\n",
            baselines_label,
            self.benches.len()
        );
        let mut rows: Vec<&Finding> = self.findings.iter().filter(|f| f.significant()).collect();
        rows.sort_by_key(|f| {
            (
                match f.verdict {
                    Verdict::Regression => 0,
                    Verdict::Missing => 1,
                    Verdict::Changed => 2,
                    Verdict::Improvement => 3,
                    _ => 4,
                },
                f.bench.clone(),
                f.metric.clone(),
            )
        });
        if rows.is_empty() {
            out.push_str("No significant changes against the baselines.\n\n");
        } else {
            out.push_str("| bench | metric | baseline | current | ratio | policy | verdict |\n");
            out.push_str("|---|---|---:|---:|---:|---|---|\n");
            for f in &rows {
                let _ = writeln!(
                    out,
                    "| {} | `{}` | {} | {} | {} | {} | {} |",
                    f.bench,
                    f.metric,
                    fmt_value(f.baseline),
                    fmt_value(f.current),
                    f.ratio.map_or("—".to_string(), |r| format!("{r:.3}")),
                    f.policy,
                    f.verdict.tag(),
                );
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{} regressions, {} missing, {} changed, {} improvements; \
             {} within noise and {} new metrics not shown.",
            self.count(Verdict::Regression),
            self.count(Verdict::Missing),
            self.count(Verdict::Changed),
            self.count(Verdict::Improvement),
            self.count(Verdict::Invariant),
            self.count(Verdict::New),
        );
        out
    }
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(0.0) => "0".to_string(),
        Some(v) if v.abs() >= 1e6 || v.abs() < 1e-4 => format!("{v:.3e}"),
        Some(v) => format!("{v:.6}"),
    }
}

/// Judge one bench's current export against its baseline.
pub fn judge_bench(baseline: &BenchDoc, current: &BenchDoc, manifest: &Manifest) -> Vec<Finding> {
    assert_eq!(
        baseline.bench, current.bench,
        "cannot judge mismatched benches"
    );
    let bench = &baseline.bench;
    let mut keys: Vec<&String> = baseline
        .metrics
        .keys()
        .chain(current.metrics.keys())
        .collect();
    keys.sort();
    keys.dedup();
    let mut findings = Vec::new();
    for key in keys {
        let base = baseline.metrics.get(key).copied();
        let cur = current.metrics.get(key).copied();
        let policy = manifest.lookup(bench, key);
        let mode = policy.map_or(Mode::Report, |p| p.mode);
        let policy_str = match policy {
            Some(p) => format!(
                "{} ±{:.0}% ({})",
                match p.direction {
                    Direction::Lower => "lower",
                    Direction::Higher => "higher",
                },
                p.tolerance * 100.0,
                match p.mode {
                    Mode::Gate => "gate",
                    Mode::Report => "report",
                }
            ),
            None => format!("±{:.0}% (default)", manifest.default_tolerance * 100.0),
        };
        let (ratio, verdict) = match (base, cur) {
            (None, None) => continue,
            (Some(_), None) => (None, Verdict::Missing),
            (None, Some(_)) => (None, Verdict::New),
            (Some(b), Some(c)) => {
                let ratio = if b == 0.0 {
                    if c == 0.0 {
                        Some(1.0)
                    } else {
                        None // a from-zero move has no meaningful ratio
                    }
                } else {
                    Some(c / b)
                };
                let tolerance = policy.map_or(manifest.default_tolerance, |p| p.tolerance);
                let moved = match ratio {
                    Some(r) => (r - 1.0).abs() > tolerance,
                    None => true, // 0 → nonzero is always a move
                };
                let verdict = if !moved {
                    Verdict::Invariant
                } else {
                    match policy.map(|p| p.direction) {
                        None => Verdict::Changed,
                        Some(Direction::Lower) => {
                            // Grew (or appeared from zero): worse.
                            if ratio.is_none_or(|r| r > 1.0) {
                                Verdict::Regression
                            } else {
                                Verdict::Improvement
                            }
                        }
                        Some(Direction::Higher) => {
                            if ratio.is_none_or(|r| r > 1.0) {
                                Verdict::Improvement
                            } else {
                                Verdict::Regression
                            }
                        }
                    }
                };
                (ratio, verdict)
            }
        };
        // A metric the manifest gates but the baseline never had cannot
        // regress; but a gated metric missing from the *current* export
        // is a broken bench, and `fails()` treats it as such.
        findings.push(Finding {
            bench: bench.clone(),
            metric: key.clone(),
            baseline: base,
            current: cur,
            ratio,
            mode,
            policy: policy_str,
            verdict,
        });
    }
    findings
}

/// Judge a set of (baseline, current) bench pairs, matched by name.
/// Benches present on only one side become Missing/New findings under
/// the bench's own name with the pseudo-metric `<bench export>`.
pub fn judge(baselines: &[BenchDoc], currents: &[BenchDoc], manifest: &Manifest) -> Judgement {
    let mut judgement = Judgement::default();
    let current_by_name: BTreeMap<&str, &BenchDoc> =
        currents.iter().map(|d| (d.bench.as_str(), d)).collect();
    let baseline_names: Vec<&str> = baselines.iter().map(|d| d.bench.as_str()).collect();
    for baseline in baselines {
        judgement.benches.push(baseline.bench.clone());
        match current_by_name.get(baseline.bench.as_str()) {
            Some(current) => judgement
                .findings
                .extend(judge_bench(baseline, current, manifest)),
            None => judgement.findings.push(Finding {
                bench: baseline.bench.clone(),
                metric: "<bench export>".to_string(),
                baseline: None,
                current: None,
                ratio: None,
                // A bench that has a committed baseline must keep
                // exporting: its disappearance is a gated failure.
                mode: Mode::Gate,
                policy: "export must exist (gate)".to_string(),
                verdict: Verdict::Missing,
            }),
        }
    }
    for current in currents {
        if !baseline_names.contains(&current.bench.as_str()) {
            judgement.findings.push(Finding {
                bench: current.bench.clone(),
                metric: "<bench export>".to_string(),
                baseline: None,
                current: None,
                ratio: None,
                mode: Mode::Report,
                policy: "no baseline yet (bless to adopt)".to_string(),
                verdict: Verdict::New,
            });
        }
    }
    judgement.benches.sort();
    judgement.benches.dedup();
    judgement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bench: &str, metrics: &[(&str, f64)]) -> BenchDoc {
        BenchDoc {
            bench: bench.to_string(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    fn manifest(rows: &str) -> Manifest {
        parse_manifest(rows).unwrap()
    }

    #[test]
    fn parse_bench_doc_flattens_and_refuses_v1() {
        let text = r#"{
  "schema": "qcdoc-telemetry-v2",
  "bench": "sched",
  "metrics": [
    {"name": "ratio", "labels": {}, "type": "gauge", "value": 1.02},
    {"name": "lat", "labels": {"load": "empty"}, "type": "histogram", "count": 4, "sum": 9, "p50": 1, "p95": 3, "p99": 3, "buckets": [[1, 3], [3, 1]]}
  ],
  "phases": [],
  "spans_total": 0
}"#;
        let doc = parse_bench_doc(text).unwrap();
        assert_eq!(doc.bench, "sched");
        assert_eq!(doc.metrics["ratio"], 1.02);
        assert_eq!(doc.metrics["lat{load=empty}:p99"], 3.0);
        assert_eq!(doc.metrics["lat{load=empty}:count"], 4.0);

        let v1 =
            r#"{"schema": "qcdoc-telemetry-v1", "metrics": [], "phases": [], "spans_total": 0}"#;
        let err = parse_bench_doc(v1).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn classification_regression_improvement_invariant() {
        let m = manifest(
            "x over lower 0.10 gate\n\
             x thru higher 0.10 gate\n",
        );
        let base = doc("x", &[("over", 1.00), ("thru", 1.00), ("free", 5.0)]);
        // over grows 20% (regression), thru grows 20% (improvement),
        // free drifts 1% (invariant).
        let cur = doc("x", &[("over", 1.20), ("thru", 1.20), ("free", 5.05)]);
        let j = judge(&[base], &[cur], &m);
        let verdict = |metric: &str| {
            j.findings
                .iter()
                .find(|f| f.metric == metric)
                .unwrap()
                .verdict
        };
        assert_eq!(verdict("over"), Verdict::Regression);
        assert_eq!(verdict("thru"), Verdict::Improvement);
        assert_eq!(verdict("free"), Verdict::Invariant);
        assert!(j.failed());
        let report = j.render_markdown("bench/baselines");
        assert!(report.contains("REGRESSION"));
        assert!(!report.contains("| `free` |"), "invariant rows hidden");
    }

    #[test]
    fn direction_matters_for_which_side_fails() {
        let m = manifest("x lat lower 0.5 gate\n");
        let base = doc("x", &[("lat", 100.0)]);
        assert!(!judge(
            std::slice::from_ref(&base),
            &[doc("x", &[("lat", 40.0)])],
            &m
        )
        .failed());
        assert!(judge(&[base], &[doc("x", &[("lat", 200.0)])], &m).failed());
    }

    #[test]
    fn missing_gated_metric_fails_new_metric_does_not() {
        let m = manifest("x over lower 0.10 gate\n");
        let base = doc("x", &[("over", 1.0)]);
        let cur = doc("x", &[("fresh", 2.0)]);
        let j = judge(&[base], &[cur], &m);
        assert!(j.failed());
        assert_eq!(j.count(Verdict::Missing), 1);
        assert_eq!(j.count(Verdict::New), 1);

        // Report-only metrics may vanish without failing.
        let m2 = manifest("");
        let j2 = judge(
            &[doc("x", &[("over", 1.0)])],
            &[doc("x", &[("fresh", 2.0)])],
            &m2,
        );
        assert!(!j2.failed());
    }

    #[test]
    fn missing_bench_export_fails() {
        let m = manifest("");
        let j = judge(&[doc("gone", &[("a", 1.0)])], &[], &m);
        assert!(j.failed());
        assert!(j
            .render_markdown("b")
            .contains("| gone | `<bench export>` |"));
    }

    #[test]
    fn report_only_regressions_do_not_fail() {
        let m = manifest("x over lower 0.10 report\n");
        let j = judge(
            &[doc("x", &[("over", 1.0)])],
            &[doc("x", &[("over", 3.0)])],
            &m,
        );
        assert!(!j.failed());
        assert_eq!(j.count(Verdict::Regression), 1);
    }

    #[test]
    fn zero_baseline_moves_are_judged_without_ratio() {
        let m = manifest("x errs lower 0.10 gate\n");
        let j = judge(
            &[doc("x", &[("errs", 0.0)])],
            &[doc("x", &[("errs", 3.0)])],
            &m,
        );
        let f = &j.findings[0];
        assert_eq!(f.ratio, None);
        assert_eq!(f.verdict, Verdict::Regression);
        assert!(j.failed());
        // 0 → 0 is invariant.
        let j2 = judge(
            &[doc("x", &[("errs", 0.0)])],
            &[doc("x", &[("errs", 0.0)])],
            &m,
        );
        assert_eq!(j2.findings[0].verdict, Verdict::Invariant);
    }

    #[test]
    fn manifest_parser_accepts_comments_and_rejects_junk() {
        let m = manifest(
            "# trajectory policy\n\
             default_tolerance 0.08\n\
             sched ratio lower 0.10 gate   # inline comment\n",
        );
        assert_eq!(m.default_tolerance, 0.08);
        assert_eq!(m.policies.len(), 1);
        assert_eq!(m.benches(), vec!["sched".to_string()]);
        assert!(parse_manifest("sched ratio sideways 0.1 gate").is_err());
        assert!(parse_manifest("sched ratio lower NaN-ish gate").is_err());
        assert!(parse_manifest("sched ratio lower 0.1").is_err());
    }

    #[test]
    fn markdown_report_is_deterministic() {
        let m = manifest("x over lower 0.10 gate\n");
        let j = judge(
            &[doc("x", &[("over", 1.0), ("b", 2.0)])],
            &[doc("x", &[("over", 1.3), ("b", 4.0)])],
            &m,
        );
        assert_eq!(
            j.render_markdown("bench/baselines"),
            j.render_markdown("bench/baselines")
        );
    }
}
