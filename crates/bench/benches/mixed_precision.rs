//! Mixed-precision (reliable-update) CG against the pure double solver.
//!
//! §4 of the paper: "performance for single precision is slightly higher
//! due to the decreased bandwidth to local memory that is needed in this
//! case." The PPC 440 FPU is a double-precision unit, so on QCDOC single
//! precision buys *bandwidth*, never flops — which is why the paper's
//! uplift is slight (the analytic model reproduces it at +2.4 to +3.6
//! points, `perf::PAPER_SINGLE_PRECISION_MAX_UPLIFT`). Commodity x86 hosts
//! land in the same regime for a different reason: scalar f64 complex
//! arithmetic maps one complex per 128-bit register, so the double kernels
//! arrive effectively vectorized and the f32 kernels hold no flop
//! advantage. The smoke check therefore gates on what mixed precision
//! *guarantees* — full f64 tolerance, bit-reproducibility, and an inner
//! loop that does the bulk of its operator applications in f32 — and
//! reports the measured wall-clock ratio alongside, with the envelope
//! asserting the reliable-update overhead stays bounded. See
//! EXPERIMENTS.md ("Mixed-precision CG") for the recorded numbers and the
//! kernel-level instruction histograms behind them.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne, solve_cgne_mixed, CgParams, MixedCgParams};
use qcdoc_lattice::wilson::WilsonDirac;

/// The seeded Wilson problem every claim below is measured on.
fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([8, 8, 8, 8]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

fn params() -> CgParams {
    CgParams {
        tolerance: 1e-8,
        max_iterations: 2000,
    }
}

fn solve_double(op: &WilsonDirac<'_>, b: &FermionField) -> FermionField {
    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne(op, &mut x, black_box(b), params());
    assert!(report.converged, "double CG failed to converge");
    x
}

fn solve_mixed(
    op: &WilsonDirac<'_>,
    op32: &WilsonDirac<'_, f32>,
    b: &FermionField,
) -> FermionField {
    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne_mixed(op, op32, &mut x, black_box(b), MixedCgParams::default());
    assert!(report.converged, "mixed CG failed to converge");
    x
}

/// Mixed CG must never cost more than this multiple of the double solver:
/// the reliable-update schedule repeats at most a few outer corrections,
/// so anything beyond ~1.6× means the defect-correction loop is broken
/// (runaway restarts), not that the kernels are slow.
const MAX_SLOWDOWN: f64 = 1.6;

fn smoke_check() {
    let (gauge, b) = workload();
    let gauge32 = gauge.to_f32();
    let op = WilsonDirac::new(&gauge, 0.12);
    let op32 = WilsonDirac::new(&gauge32, 0.12);

    // Correctness and determinism gates: full f64 tolerance, bit-identical
    // reruns, and an inner loop dominated by single-precision work.
    let mut x1 = FermionField::zero(b.lattice());
    let r1 = solve_cgne_mixed(&op, &op32, &mut x1, &b, MixedCgParams::default());
    assert!(r1.converged, "mixed CG missed the f64 tolerance");
    let mut x2 = FermionField::zero(b.lattice());
    let r2 = solve_cgne_mixed(&op, &op32, &mut x2, &b, MixedCgParams::default());
    assert_eq!(
        x1.fingerprint(),
        x2.fingerprint(),
        "mixed CG rerun is not bit-identical"
    );
    assert_eq!(r1.inner_iterations, r2.inner_iterations);
    assert!(
        r1.low_precision_applications > 4 * r1.high_precision_applications,
        "inner loop should do the bulk of its applications in f32: {} low vs {} high",
        r1.low_precision_applications,
        r1.high_precision_applications,
    );

    // Wall-clock envelope, attempted a few times to ride out host noise.
    black_box(solve_double(&op, &b));
    let mut verdict = None;
    for attempt in 1..=3 {
        let dp = min_seconds(
            || {
                black_box(solve_double(&op, &b).fingerprint());
            },
            5,
        );
        let mixed = min_seconds(
            || {
                black_box(solve_mixed(&op, &op32, &b).fingerprint());
            },
            5,
        );
        let speedup = dp / mixed;
        println!(
            "mixed_precision smoke attempt {attempt}: double {:.1} ms, mixed {:.1} ms, speedup {speedup:.2}x",
            dp * 1e3,
            mixed * 1e3,
        );
        if speedup > 1.0 / MAX_SLOWDOWN {
            verdict = Some(speedup);
            break;
        }
    }
    let speedup = verdict.expect("mixed CG exceeded the reliable-update cost envelope");
    println!(
        "mixed_precision smoke PASS: speedup {speedup:.2}x (double-precision-FPU host; \
         QCDOC's single-precision gain is bandwidth-bound — see EXPERIMENTS.md)"
    );

    // The application counts are deterministic (bit-identical reruns were
    // asserted above), so the judge gates them at 1%; the wall-clock
    // speedup is host noise and stays report-only.
    let mut run = BenchRun::new("mixed_precision");
    run.gauge("mixed_speedup_vs_double", speedup);
    run.gauge("mixed_max_slowdown_envelope", MAX_SLOWDOWN);
    run.gauge(
        "mixed_inner_iterations",
        r1.inner_iterations.iter().sum::<usize>() as f64,
    );
    run.gauge(
        "mixed_low_precision_applications",
        r1.low_precision_applications as f64,
    );
    run.gauge(
        "mixed_high_precision_applications",
        r1.high_precision_applications as f64,
    );
    run.export();
}

fn solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_precision");
    group.sample_size(10);
    let (gauge, b) = workload();
    let gauge32 = gauge.to_f32();
    let op = WilsonDirac::new(&gauge, 0.12);
    let op32 = WilsonDirac::new(&gauge32, 0.12);
    let b32 = b.to_f32();

    group.bench_function("cg_8x8x8x8_double", |bch| {
        bch.iter(|| solve_double(&op, &b).fingerprint())
    });
    group.bench_function("cg_8x8x8x8_mixed", |bch| {
        bch.iter(|| solve_mixed(&op, &op32, &b).fingerprint())
    });

    // The raw kernels at both widths, for the ratio EXPERIMENTS.md records.
    let mut out = FermionField::zero(b.lattice());
    group.bench_function("wilson_apply_f64", |bch| {
        bch.iter(|| {
            op.apply(&mut out, black_box(&b));
            out.site(0).0[0].0[0].re
        })
    });
    let mut out32 = FermionField::<f32>::zero(b.lattice());
    group.bench_function("wilson_apply_f32", |bch| {
        bch.iter(|| {
            op32.apply(&mut out32, black_box(&b32));
            out32.site(0).0[0].0[0].re
        })
    });
    group.finish();
}

criterion_group!(benches, solvers);

fn main() {
    smoke_check();
    benches();
}
