//! The chaos soak as a gated benchmark: machine-level SLOs under fire.
//!
//! The smoke check runs the default seeded soak — multi-tenant job mix,
//! continuous link/node/memory/storage fault schedule, checkpoint-requeue
//! and repair-and-return all active — and hard-fails unless the SLOs
//! hold: zero lost jobs, every tracked CG solve bit-identical to its
//! fault-free reference, the scheduler drained. The measured numbers
//! land in `BENCH_chaos.json`; the judge gates the deterministic ones
//! (lost jobs at zero, goodput, requeue latency p99, end capacity) so
//! the autonomic loop cannot silently erode. The criterion group then
//! times one full soak for the dashboard.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::BenchRun;
use qcdoc_host::{run_chaos, ChaosConfig};
use std::time::Instant;

fn smoke_check() {
    let cfg = ChaosConfig::default();
    let started = Instant::now();
    let report = run_chaos(cfg.clone());
    let wall = started.elapsed().as_secs_f64();

    assert!(report.drained, "soak must drain: {report:?}");
    assert_eq!(report.lost, 0, "no job may be lost: {report:?}");
    assert_eq!(
        report.completed,
        (cfg.jobs + cfg.tracked_solves) as u64,
        "every submission completes: {report:?}"
    );
    assert_eq!(
        report.tracked_matches, report.tracked_total,
        "tracked solves must be bit-identical: {report:?}"
    );
    assert!(report.repaired >= 1, "repair must return nodes: {report:?}");
    println!(
        "chaos smoke PASS: {} strikes, {} requeues, 0 lost, {}/{} solves exact, \
         goodput {:.3}, capacity {}/{}, {:.2}s wall",
        report.failures_injected + report.storage_faults_injected,
        report.requeues,
        report.tracked_matches,
        report.tracked_total,
        report.goodput,
        report.capacity_end,
        report.node_count,
        wall,
    );

    let mut run = BenchRun::new("chaos");
    run.gauge("chaos_lost_jobs", report.lost as f64);
    run.gauge(
        "chaos_tracked_mismatches",
        (report.tracked_total - report.tracked_matches) as f64,
    );
    run.gauge("chaos_jobs_completed", report.completed as f64);
    run.gauge("chaos_goodput_ratio", report.goodput);
    run.gauge("chaos_capacity_end_ratio", report.capacity_ratio());
    run.gauge("chaos_requeues", report.requeues as f64);
    run.gauge("chaos_failures_injected", report.failures_injected as f64);
    run.gauge(
        "chaos_storage_faults_injected",
        report.storage_faults_injected as f64,
    );
    run.gauge("chaos_repaired_nodes", report.repaired as f64);
    run.gauge("chaos_blacklisted_nodes", report.blacklisted as f64);
    run.histogram(
        "chaos_requeue_latency_ticks",
        "soak",
        &report.requeue_latency,
    );
    run.gauge("chaos_soak_seconds", wall);
    run.export();
}

fn soak(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    group.bench_function("default_soak_32_nodes", |b| {
        b.iter(|| black_box(run_chaos(ChaosConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, soak);

fn main() {
    smoke_check();
    benches();
}
