//! E3 — the §4 cost accounting and price/performance table.
//!
//! Prints the itemized purchase-order breakdown of the 4096-node Columbia
//! machine, the $/sustained-Megaflops figures at 360/420/450 MHz against
//! the paper's quotes, and the 12,288-node volume-discount projection.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_machine::cost::{columbia_4096, CostModel, PricePerformance, PAPER_PRICE_PERF};
use qcdoc_machine::packaging::MachineAssembly;
use std::hint::black_box;

fn print_tables() {
    let assembly = MachineAssembly::new(4096);
    let b = CostModel::default().breakdown(&assembly);
    eprintln!("\n=== E3: 4096-node machine cost (paper §4) ===");
    eprint!("{}", b.render());
    eprintln!(
        "paper: hardware ${:.0}, all-in ${:.0}",
        columbia_4096::QUOTED_TOTAL,
        columbia_4096::QUOTED_TOTAL_WITH_RND
    );
    eprintln!("\n{:>8} {:>10} {:>8}", "clock", "$ / MF", "paper");
    for (clock, paper) in PAPER_PRICE_PERF {
        let pp = PricePerformance {
            clock_mhz: clock,
            efficiency: 0.45,
            total_cost: b.total(),
            nodes: 4096,
        };
        eprintln!(
            "{:>5} MHz {:>10.3} {:>8.2}",
            clock,
            pp.dollars_per_mflops(),
            paper
        );
    }
    let big = MachineAssembly::new(12_288);
    let model = CostModel {
        volume_discount: 0.93,
        ..Default::default()
    };
    let bb = model.breakdown(&big);
    let pp = PricePerformance {
        clock_mhz: 450.0,
        efficiency: 0.45,
        total_cost: bb.total(),
        nodes: 12_288,
    };
    eprintln!(
        "12,288 nodes with 7% volume discount: ${:.3}/MF (paper target: ~$1)",
        pp.dollars_per_mflops()
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("e3_cost_breakdown", |b| {
        let model = CostModel::default();
        b.iter(|| {
            for nodes in [64usize, 128, 512, 1024, 4096, 12_288] {
                let m = MachineAssembly::new(nodes);
                black_box(model.breakdown(&m).total());
            }
        })
    });
    c.bench_function("e3_price_performance_sweep", |b| {
        let breakdown = CostModel::default().breakdown(&MachineAssembly::new(4096));
        b.iter(|| {
            for (clock, _) in PAPER_PRICE_PERF {
                let pp = PricePerformance {
                    clock_mhz: clock,
                    efficiency: 0.45,
                    total_cost: breakdown.total(),
                    nodes: 4096,
                };
                black_box(pp.dollars_per_mflops());
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
