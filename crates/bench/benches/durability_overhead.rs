//! Cost of *durable* checkpointing on the CG solver.
//!
//! PR 8's contract: the atomic-generation store (write-to-temp, chunked
//! NFS write, read-back verify, digest-in-filename rename, retention GC)
//! must not tax the campaign. A solver that streams its periodic
//! checkpoints through the durable store must stay within 5% of one that
//! merely serializes them to the NERSC archive format and drops the
//! bytes — the solve dominates, the storage protocol rides along. The
//! smoke check gates that ratio at a checkpoint-every-10-iterations
//! cadence (one ~150 KB archive per ~2.5 ms of solve — still orders of
//! magnitude denser than any real campaign), with the archived and
//! durable timings interleaved so clock drift taxes both sides equally.
//! The criterion group then prices the even-denser every-5 cadence and
//! the store's own verbs (clean save, save with a torn-write retry,
//! verified restore) in isolation.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_fault::{StorageFault, StorageFaultPlan};
use qcdoc_host::ckstore::{CheckpointStore, StoreConfig};
use qcdoc_host::nfs::NfsServer;
use qcdoc_lattice::checkpoint::{write_checkpoint, CgCheckpoint};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne_checkpointed, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;

fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([4, 4, 4, 4]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

fn params() -> CgParams {
    CgParams {
        tolerance: 1e-10,
        max_iterations: 25,
    }
}

fn fresh_store() -> (NfsServer, CheckpointStore) {
    let mut nfs = NfsServer::new(&["/data"], 1 << 26);
    let store = CheckpointStore::open(StoreConfig::new("/data/ck/bench"), &mut nfs);
    (nfs, store)
}

/// CG with periodic checkpoints serialized to the archive format and
/// discarded — the pre-PR-8 price of checkpointing.
fn cg_archived(op: &WilsonDirac<'_>, b: &FermionField, interval: usize) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    let report = solve_cgne_checkpointed(op, &mut x, black_box(b), params(), interval, &mut sink);
    let bytes: usize = sink.iter().map(|ck| write_checkpoint(ck).len()).sum();
    black_box(bytes);
    report.final_residual
}

/// The same solve, every checkpoint driven through the durable store:
/// temp write over the NFS wire, read-back verify, digest rename, GC.
/// The mount and the store are long-lived, as in a real campaign —
/// generations accumulate and retention GC turns over the oldest.
fn cg_durable(
    op: &WilsonDirac<'_>,
    b: &FermionField,
    interval: usize,
    nfs: &mut NfsServer,
    store: &mut CheckpointStore,
) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    let report = solve_cgne_checkpointed(op, &mut x, black_box(b), params(), interval, &mut sink);
    for ck in &sink {
        store
            .save(nfs, &write_checkpoint(ck))
            .expect("clean-path durable save");
    }
    black_box(store.bytes_committed());
    report.final_residual
}

fn one_archive(op: &WilsonDirac<'_>, b: &FermionField) -> Vec<u8> {
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    solve_cgne_checkpointed(op, &mut x, b, params(), 5, &mut sink);
    write_checkpoint(sink.last().expect("at least one checkpoint"))
}

/// The acceptance gate: durable checkpointing every 10 iterations stays
/// within 5% of archive-and-drop checkpointing at the same cadence. The
/// ratio, the store-verb prices, and the deterministic commit accounting
/// land in `BENCH_durability.json`.
fn smoke_check() {
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    let (mut nfs, mut store) = fresh_store();
    black_box(cg_archived(&op, &b, 10));
    black_box(cg_durable(&op, &b, 10, &mut nfs, &mut store));
    let mut verdict = None;
    let mut archived_s = 0.0;
    for attempt in 1..=3 {
        let mut archived = f64::INFINITY;
        let mut durable = f64::INFINITY;
        for _ in 0..7 {
            archived = archived.min(min_seconds(
                || {
                    black_box(cg_archived(&op, &b, 10));
                },
                1,
            ));
            durable = durable.min(min_seconds(
                || {
                    black_box(cg_durable(&op, &b, 10, &mut nfs, &mut store));
                },
                1,
            ));
        }
        let ratio = durable / archived;
        println!(
            "durability_overhead smoke attempt {attempt}: archived {:.1} ms, durable {:.1} ms, ratio {ratio:.4}",
            archived * 1e3,
            durable * 1e3,
        );
        archived_s = archived;
        if ratio < 1.05 {
            verdict = Some(ratio);
            break;
        }
    }
    let ratio = verdict.expect("durable checkpointing exceeded 5% overhead in 3 attempts");
    println!("durability_overhead smoke PASS: durable/archived ratio {ratio:.4} < 1.05");

    // Price the store's verbs in isolation against the same long-lived
    // mount, and pin the deterministic accounting (commit count, bytes,
    // generations on disk).
    let archive = one_archive(&op, &b);
    let save_us = min_seconds(
        || {
            store.save(&mut nfs, &archive).expect("save");
            black_box(store.commits());
        },
        25,
    ) * 1e6;
    let torn_retry_us = min_seconds(
        || {
            nfs.inject(
                &StorageFaultPlan::new(11).with_event(StorageFault::TornWrite {
                    write_op: nfs.write_ops(),
                    keep: None,
                }),
            );
            store.save(&mut nfs, &archive).expect("save after retry");
            nfs.clear_faults();
            black_box(store.retries());
        },
        25,
    ) * 1e6;
    let restore_us = min_seconds(
        || {
            let restored = store.restore(&mut nfs).expect("restore");
            black_box(restored.generation);
        },
        25,
    ) * 1e6;

    let (mut nfs, mut store) = fresh_store();
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    solve_cgne_checkpointed(&op, &mut x, &b, params(), 5, &mut sink);
    for ck in &sink {
        store.save(&mut nfs, &write_checkpoint(ck)).expect("save");
    }
    println!(
        "durability_overhead: save {save_us:.1} us, torn-retry {torn_retry_us:.1} us, restore {restore_us:.1} us, {} commits, {} bytes, {} retained",
        store.commits(),
        store.bytes_committed(),
        store.generations(&nfs).len(),
    );

    let mut run = BenchRun::new("durability");
    run.gauge("durability_cg_archived_seconds", archived_s);
    run.gauge("durability_durable_overhead_ratio", ratio);
    run.gauge("durability_durable_gate", 1.05);
    run.gauge("durability_save_us", save_us);
    run.gauge("durability_torn_retry_save_us", torn_retry_us);
    run.gauge("durability_restore_us", restore_us);
    run.gauge("durability_commit_count", store.commits() as f64);
    run.gauge("durability_bytes_committed", store.bytes_committed() as f64);
    run.gauge(
        "durability_retained_generations",
        store.generations(&nfs).len() as f64,
    );
    run.export();
}

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_overhead");
    group.sample_size(10);
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    let archive = one_archive(&op, &b);
    group.bench_function("cg_4x4x4x4_checkpoint_every_5_archived", |bch| {
        bch.iter(|| cg_archived(&op, &b, 5))
    });
    group.bench_function("cg_4x4x4x4_checkpoint_every_5_durable", |bch| {
        let (mut nfs, mut store) = fresh_store();
        bch.iter(|| cg_durable(&op, &b, 5, &mut nfs, &mut store))
    });
    group.bench_function("store_save_clean", |bch| {
        bch.iter(|| {
            let (mut nfs, mut store) = fresh_store();
            store.save(&mut nfs, &archive).expect("save");
            store.commits()
        })
    });
    group.bench_function("store_save_torn_retry", |bch| {
        bch.iter(|| {
            let (mut nfs, mut store) = fresh_store();
            nfs.inject(
                &StorageFaultPlan::new(11).with_event(StorageFault::TornWrite {
                    write_op: 0,
                    keep: None,
                }),
            );
            store.save(&mut nfs, &archive).expect("save after retry");
            store.retries()
        })
    });
    group.bench_function("store_restore_verified", |bch| {
        let (mut nfs, mut store) = fresh_store();
        store.save(&mut nfs, &archive).expect("save");
        bch.iter(|| {
            let restored = store.restore(&mut nfs).expect("restore");
            restored.generation
        })
    });
    group.finish();
}

criterion_group!(benches, overhead);

fn main() {
    smoke_check();
    benches();
}
