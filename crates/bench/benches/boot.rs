//! E9 — booting (§3.1): ≈100 Ethernet/JTAG UDP packets per node for the
//! boot kernel plus ≈100 for the run kernel, pushed through the Ethernet
//! tree. Prints packet counts and the modelled boot time per machine size,
//! then benchmarks the full boot state machine.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_geometry::TorusShape;
use qcdoc_host::qdaemon::Qdaemon;
use std::hint::black_box;

fn machine_for(nodes: usize) -> TorusShape {
    match nodes {
        64 => TorusShape::motherboard_64(),
        128 => TorusShape::new(&[4, 4, 2, 2, 2, 1]),
        512 => TorusShape::new(&[8, 4, 4, 2, 2, 1]),
        1024 => TorusShape::rack_1024(),
        4096 => TorusShape::new(&[8, 8, 4, 4, 2, 2]),
        12288 => TorusShape::new(&[8, 8, 6, 4, 4, 2]),
        _ => unreachable!(),
    }
}

fn print_series() {
    eprintln!("\n=== E9: boot cost vs machine size ===");
    eprintln!(
        "{:>8} {:>14} {:>12} {:>12}",
        "nodes", "UDP packets", "pkts/node", "boot (s)"
    );
    for nodes in [64usize, 128, 512, 1024, 4096, 12288] {
        let mut q = Qdaemon::new(machine_for(nodes));
        let r = q.boot(&[]);
        eprintln!(
            "{:>8} {:>14} {:>12} {:>12.2}",
            nodes,
            r.packets_sent,
            r.packets_sent / nodes as u64,
            r.boot_seconds
        );
    }
    eprintln!("(paper: ~100 packets for the boot kernel + ~100 for the run kernel per node)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e9_boot");
    group.sample_size(10);
    for nodes in [64usize, 512, 1024] {
        group.bench_function(format!("nodes_{nodes}"), |b| {
            b.iter(|| {
                let mut q = Qdaemon::new(machine_for(nodes));
                black_box(q.boot(&[]).packets_sent)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
