//! E10 — link-protocol ablations (§2.2): the "three in the air" window vs
//! a one-word handshake, and the cost of healing injected bit errors by
//! automatic resend.
//!
//! Prints the handshake-count series (the window amortizes the round trip)
//! and benchmarks the protocol under fault injection.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_asic::clock::Clock;
use qcdoc_asic::memory::NodeMemory;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::{RecvOutcome, RecvUnit, SendUnit, WINDOW};
use qcdoc_scu::timing::WORD_WIRE_BITS;
use std::hint::black_box;

/// Transfer `words` with an artificial window cap, counting "round trips"
/// — batches of frames that must wait for an ack before more can fly.
fn round_trips(words: u64, window: u64) -> u64 {
    words.div_ceil(window)
}

fn print_series() {
    eprintln!("\n=== E10: ack-window ablation (24-word nearest-neighbour transfer) ===");
    let clock = Clock::DESIGN;
    // A round trip costs the wire flight + ack serialization; take ~24
    // cycles (cables are short: dense packaging, §1).
    let rt_cycles = 24u64;
    eprintln!(
        "{:>8} {:>12} {:>16} {:>14}",
        "window", "handshakes", "stall cycles", "overhead %"
    );
    for window in [1u64, 2, 3, 6] {
        let trips = round_trips(24, window);
        let stall = trips * rt_cycles;
        let payload = 24 * WORD_WIRE_BITS;
        eprintln!(
            "{:>8} {:>12} {:>16} {:>14.1}",
            window,
            trips,
            stall,
            100.0 * stall as f64 / payload as f64
        );
    }
    eprintln!(
        "(the hardware window is {WINDOW}: at {} the handshake overhead is amortized \
         to ~{:.0}% of wire time)",
        WINDOW,
        100.0 * round_trips(24, WINDOW as u64) as f64 * rt_cycles as f64
            / (24.0 * WORD_WIRE_BITS as f64)
    );
    let _ = clock;
}

/// Pump a transfer with every `err_every`-th frame corrupted.
fn faulty_transfer(words: u32, err_every: u64) -> (u64, u64) {
    let mut s = SendUnit::new();
    let mut r = RecvUnit::new();
    s.train();
    r.train();
    let mut mem = NodeMemory::with_128mb_dimm();
    r.arm(DmaDescriptor::contiguous(0x1000, words), &mut mem)
        .unwrap();
    for w in 0..words as u64 {
        s.enqueue_word(w);
    }
    let mut frames = 0u64;
    while let Some(mut wf) = s.next_frame().unwrap() {
        frames += 1;
        if err_every > 0 && frames.is_multiple_of(err_every) {
            wf.frame.corrupt_bit((frames % 70) as usize);
        }
        match r.on_frame(&wf, &mut mem).unwrap() {
            RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
            RecvOutcome::Rejected { seq } => s.on_reject(seq),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(r.complete());
    (frames, r.rejects())
}

fn bench(c: &mut Criterion) {
    print_series();
    let clean = faulty_transfer(256, 0);
    let noisy = faulty_transfer(256, 10);
    eprintln!(
        "fault-injection: clean transfer {} frames; 10% corruption -> {} frames ({} rejects healed)",
        clean.0, noisy.0, noisy.1
    );

    let mut group = c.benchmark_group("e10_protocol");
    group.bench_function("clean_256_words", |b| {
        b.iter(|| black_box(faulty_transfer(256, 0)))
    });
    group.bench_function("faulty_every_10th", |b| {
        b.iter(|| black_box(faulty_transfer(256, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
