//! E4 — mesh latency and bandwidth (§2.2): the 600 ns memory-to-memory
//! nearest-neighbour transfer, the 24-word message (600 ns + 3.3 µs), the
//! 1.3 GB/s aggregate, and the crossover against a 5-10 µs-start-up
//! Ethernet network.
//!
//! Prints the transfer-time series vs message size for both networks, then
//! benchmarks the real link-protocol state machines moving data.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_asic::clock::Clock;
use qcdoc_asic::memory::NodeMemory;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::{RecvOutcome, RecvUnit, SendUnit};
use qcdoc_scu::timing::{EthernetBaseline, LinkTimingConfig};
use std::hint::black_box;

fn print_series() {
    let link = LinkTimingConfig::default();
    let eth = EthernetBaseline::default();
    let clock = Clock::DESIGN;
    eprintln!("\n=== E4: transfer time vs message size (500 MHz) ===");
    eprintln!(
        "{:>10} {:>12} {:>12} {:>8}",
        "words", "QCDOC (us)", "Ethernet (us)", "winner"
    );
    for words in [1u64, 4, 24, 96, 1024, 16384, 1_000_000] {
        let q = link.transfer_ns(words, clock) / 1000.0;
        let e = eth.transfer_ns(words * 8) / 1000.0;
        eprintln!(
            "{:>10} {:>12.2} {:>12.2} {:>8}",
            words,
            q,
            e,
            if q < e { "QCDOC" } else { "Ethernet" }
        );
    }
    eprintln!(
        "single word: {:.0} ns (paper: ~600 ns); 24-word tail: {:.2} us (paper: 3.3 us)",
        link.transfer_ns(1, clock),
        (link.transfer_ns(24, clock) - link.transfer_ns(1, clock)) / 1000.0
    );
    eprintln!(
        "aggregate node bandwidth: {:.2} GB/s (paper: 1.3 GB/s)",
        link.node_bandwidth(clock) / 1e9
    );
}

/// Move `words` 64-bit words through the real protocol state machines.
fn protocol_transfer(words: u32) -> u64 {
    let mut s = SendUnit::new();
    let mut r = RecvUnit::new();
    s.train();
    r.train();
    let mut mem = NodeMemory::with_128mb_dimm();
    r.arm(DmaDescriptor::contiguous(0x1000, words), &mut mem)
        .unwrap();
    for w in 0..words as u64 {
        s.enqueue_word(w);
    }
    let mut frames = 0u64;
    while let Some(wf) = s.next_frame().unwrap() {
        frames += 1;
        match r.on_frame(&wf, &mut mem).unwrap() {
            RecvOutcome::Accepted => s.on_ack(wf.seq),
            other => panic!("unexpected {other:?}"),
        }
    }
    frames
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e4_protocol_transfer");
    for words in [1u32, 24, 256, 4096] {
        group.bench_function(format!("words_{words}"), |b| {
            b.iter(|| black_box(protocol_transfer(words)))
        });
    }
    group.finish();

    c.bench_function("e4_timing_model", |b| {
        let link = LinkTimingConfig::default();
        b.iter(|| {
            for words in [1u64, 24, 1024] {
                black_box(link.transfer_cycles(words));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
