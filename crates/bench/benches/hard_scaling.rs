//! E8 — hard scaling (§1, §4): a fixed 32³×64 lattice over 512..8192
//! nodes, QCDOC vs the commodity-cluster baseline. Prints the series the
//! `hard_scaling` example plots and benchmarks the two models.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_core::baseline::ClusterPerf;
use qcdoc_core::perf::DiracPerf;
use qcdoc_lattice::counts::Action;
use std::hint::black_box;

const GLOBAL: [usize; 4] = [32, 32, 32, 64];
const CONFIGS: [(usize, [usize; 4]); 5] = [
    (512, [4, 4, 4, 8]),
    (1024, [4, 4, 8, 8]),
    (2048, [4, 8, 8, 8]),
    (4096, [8, 8, 8, 8]),
    (8192, [8, 8, 8, 16]),
];

fn setup(mdims: [usize; 4]) -> DiracPerf {
    let mut perf = DiracPerf::paper_bench();
    perf.logical_dims = mdims;
    perf.local_dims = std::array::from_fn(|a| GLOBAL[a] / mdims[a]);
    perf
}

fn print_series() {
    eprintln!("\n=== E8: hard scaling, fixed 32^3x64 lattice (Wilson CG) ===");
    eprintln!(
        "{:>8} {:>10} {:>12} {:>14}",
        "nodes", "local", "qcdoc eff %", "cluster eff %"
    );
    for (nodes, mdims) in CONFIGS {
        let perf = setup(mdims);
        let q = perf.evaluate(Action::Wilson).efficiency;
        let c = ClusterPerf::matching(&perf)
            .evaluate(Action::Wilson)
            .efficiency;
        let l = perf.local_dims;
        eprintln!(
            "{:>8} {:>10} {:>12.1} {:>14.1}",
            nodes,
            format!("{}x{}x{}x{}", l[0], l[1], l[2], l[3]),
            100.0 * q,
            100.0 * c
        );
    }
    eprintln!("(QCDOC holds its efficiency down to 4^4 local volume; the cluster decays)");
}

fn bench(c: &mut Criterion) {
    print_series();
    c.bench_function("e8_qcdoc_sweep", |b| {
        b.iter(|| {
            for (_, mdims) in CONFIGS {
                black_box(setup(mdims).evaluate(Action::Wilson));
            }
        })
    });
    c.bench_function("e8_cluster_sweep", |b| {
        b.iter(|| {
            for (_, mdims) in CONFIGS {
                let perf = setup(mdims);
                black_box(ClusterPerf::matching(&perf).evaluate(Action::Wilson));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
