//! E5 — global operations (§2.2): hop counts `Nx+Ny+Nz+Nt−4` (halved in
//! doubled mode), the 8-bit pass-through advantage over store-and-forward,
//! and the functional dimension-ordered sum on the threads-as-nodes
//! machine.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_asic::clock::Clock;
use qcdoc_core::comm::global_sum_f64;
use qcdoc_core::functional::FunctionalMachine;
use qcdoc_geometry::TorusShape;
use qcdoc_scu::global::{dimension_ordered_sum, dimension_sum_hops, GlobalTimingConfig};
use std::hint::black_box;

fn print_series() {
    let cfg = GlobalTimingConfig::default();
    let clock = Clock::DESIGN;
    eprintln!("\n=== E5: global sum latency vs machine size (4-D partitions) ===");
    eprintln!(
        "{:>16} {:>8} {:>8} {:>14} {:>14} {:>16}",
        "machine", "hops", "hops/2", "pass-thru (us)", "doubled (us)", "store-fwd (us)"
    );
    for dims in [
        [4usize, 4, 4, 2],
        [4, 4, 4, 8],
        [8, 8, 8, 8],
        [8, 8, 8, 16],
        [8, 8, 8, 24],
    ] {
        let single = dimension_sum_hops(&dims, false);
        let doubled = dimension_sum_hops(&dims, true);
        let t_pass = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, false, true)) / 1000.0;
        let t_doub = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, true, true)) / 1000.0;
        let t_sf = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, false, false)) / 1000.0;
        eprintln!(
            "{:>16} {:>8} {:>8} {:>14.2} {:>14.2} {:>16.2}",
            format!("{}x{}x{}x{}", dims[0], dims[1], dims[2], dims[3]),
            single,
            doubled,
            t_pass,
            t_doub,
            t_sf
        );
    }
    eprintln!("(paper: hops = Nx+Ny+Nz+Nt-4, halved by the doubled SCU global mode)");
}

fn bench(c: &mut Criterion) {
    print_series();

    // Closed-form dimension-ordered sum over a 1024-node machine.
    let shape = TorusShape::new(&[8, 4, 4, 2, 2, 2]);
    let values: Vec<f64> = (0..shape.node_count()).map(|i| (i as f64).sin()).collect();
    c.bench_function("e5_closed_form_sum_1024", |b| {
        b.iter(|| black_box(dimension_ordered_sum(&shape, &values)))
    });

    // The real thing: functional machine, real link protocol.
    let mut group = c.benchmark_group("e5_functional_global_sum");
    group.sample_size(10);
    for dims in [vec![4usize], vec![2, 2, 2], vec![4, 2, 2]] {
        let label = dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        group.bench_function(format!("machine_{label}"), |b| {
            let shape = TorusShape::new(&dims);
            b.iter(|| {
                let machine = FunctionalMachine::new(shape.clone());
                let r = machine.run(|ctx| global_sum_f64(ctx, ctx.id.0 as f64));
                black_box(r)
            })
        });
    }
    group.finish();

    c.bench_function("e5_hop_formula", |b| {
        b.iter(|| {
            for dims in [[8usize, 8, 8, 16], [4, 4, 4, 2]] {
                black_box(dimension_sum_hops(&dims, true));
                black_box(dimension_sum_hops(&dims, false));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
