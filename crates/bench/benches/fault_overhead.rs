//! Overhead of the fault-injection machinery itself.
//!
//! The injection hooks sit on every simulated wire, so they must be cheap
//! when idle: an empty plan's tap is a couple of table lookups per frame.
//! These benches price (a) the per-frame tap with and without scheduled
//! faults, (b) the per-iteration keyed Poisson draw the timing engine
//! uses, and (c) a whole functional-machine shift clean versus faulted.
//! The smoke check exports the idle-tap cost plus the fully deterministic
//! DES cycle counts to `BENCH_fault.json` for the judge.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_core::des::{run_with_faults, DesConfig};
use qcdoc_core::functional::FunctionalMachine;
use qcdoc_fault::{FaultClock, FaultEvent, FaultPlan, NodeTap};
use qcdoc_geometry::{Axis, TorusShape};
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::{WireFrame, WireTap};
use qcdoc_scu::packet::{Frame, Packet};
use std::sync::Arc;

fn tap_per_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(20);
    let empty = Arc::new(FaultClock::resolve(&FaultPlan::new(0), 16, 8));
    let noisy = Arc::new(FaultClock::resolve(
        &FaultPlan::new(7).with_event(FaultEvent::bit_error_rate(3, 0, 0.01)),
        16,
        8,
    ));
    for (label, clock) in [
        ("tap_1k_frames_empty_plan", empty),
        ("tap_1k_frames_ber_plan", noisy),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut tap = NodeTap::new(Arc::clone(&clock), 3);
                for seq in 0..1_000u64 {
                    let mut wf = WireFrame {
                        seq,
                        frame: Frame::encode(Packet::Normal(seq)),
                    };
                    black_box(tap.on_frame(0, &mut wf));
                }
                tap.injected()[0]
            })
        });
    }
    group.finish();
}

fn des_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(20);
    let cfg = DesConfig::homogeneous([2, 2, 2, 2], 800_000, 1_536, 3_000);
    let clean = FaultPlan::new(1);
    let faulty = FaultPlan::new(1).with_event(FaultEvent::bit_error_rate(5, 0, 0.001));
    group.bench_function("des_16n_20it_clean", |b| {
        b.iter(|| run_with_faults(black_box(&cfg), 20, &clean).0.total_cycles)
    });
    group.bench_function("des_16n_20it_ber", |b| {
        b.iter(|| run_with_faults(black_box(&cfg), 20, &faulty).0.total_cycles)
    });
    group.finish();
}

fn functional_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(10);
    let shift = |plan: FaultPlan| {
        let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
        machine.run(|ctx| {
            for i in 0..64u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 64),
                DmaDescriptor::contiguous(0x4000, 64),
            );
            ctx.mem.read_word(0x4000).unwrap()
        })
    };
    group.bench_function("functional_ring4_shift64_clean", |b| {
        b.iter(|| shift(FaultPlan::new(0)))
    });
    group.bench_function("functional_ring4_shift64_bitflip", |b| {
        b.iter(|| shift(FaultPlan::new(0).with_event(FaultEvent::bit_flip(1, 0, 9, 33))))
    });
    group.finish();
}

/// Run `frames` frames through a tap built on `clock`; returns the
/// injected-fault count on link 0.
fn tap_run(clock: &Arc<FaultClock>, frames: u64) -> u64 {
    let mut tap = NodeTap::new(Arc::clone(clock), 3);
    for seq in 0..frames {
        let mut wf = WireFrame {
            seq,
            frame: Frame::encode(Packet::Normal(seq)),
        };
        black_box(tap.on_frame(0, &mut wf));
    }
    tap.injected()[0]
}

/// Export the idle-tap price and the deterministic DES cycle counts.
/// The cycle counts are logical — identical on every host — so the
/// judge gates them at 1%: any drift is a real model change.
fn smoke_check() {
    let empty = Arc::new(FaultClock::resolve(&FaultPlan::new(0), 16, 8));
    let noisy = Arc::new(FaultClock::resolve(
        &FaultPlan::new(7).with_event(FaultEvent::bit_error_rate(3, 0, 0.01)),
        16,
        8,
    ));
    black_box(tap_run(&empty, 1_000));
    let empty_s = min_seconds(
        || {
            black_box(tap_run(&empty, 10_000));
        },
        7,
    );
    let noisy_s = min_seconds(
        || {
            black_box(tap_run(&noisy, 10_000));
        },
        7,
    );
    let tap_ratio = noisy_s / empty_s;
    println!(
        "fault_overhead: idle tap {:.1} ns/frame, ber-plan ratio {tap_ratio:.4}",
        empty_s / 10_000.0 * 1e9,
    );

    let cfg = DesConfig::homogeneous([2, 2, 2, 2], 800_000, 1_536, 3_000);
    let clean_cycles = run_with_faults(&cfg, 20, &FaultPlan::new(1)).0.total_cycles;
    let ber_plan = FaultPlan::new(1).with_event(FaultEvent::bit_error_rate(5, 0, 0.001));
    let ber_cycles = run_with_faults(&cfg, 20, &ber_plan).0.total_cycles;
    println!("fault_overhead: DES 16n/20it cycles clean {clean_cycles}, ber {ber_cycles}");

    let mut run = BenchRun::new("fault");
    run.gauge("fault_tap_empty_ns_per_frame", empty_s / 10_000.0 * 1e9);
    run.gauge("fault_tap_ber_ratio", tap_ratio);
    run.gauge("fault_des_clean_total_cycles", clean_cycles as f64);
    run.gauge("fault_des_ber_total_cycles", ber_cycles as f64);
    run.export();
}

criterion_group!(benches, tap_per_frame, des_draws, functional_shift);

fn main() {
    smoke_check();
    benches();
}
