//! Overhead of the fault-injection machinery itself.
//!
//! The injection hooks sit on every simulated wire, so they must be cheap
//! when idle: an empty plan's tap is a couple of table lookups per frame.
//! These benches price (a) the per-frame tap with and without scheduled
//! faults, (b) the per-iteration keyed Poisson draw the timing engine
//! uses, and (c) a whole functional-machine shift clean versus faulted.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qcdoc_core::des::{run_with_faults, DesConfig};
use qcdoc_core::functional::FunctionalMachine;
use qcdoc_fault::{FaultClock, FaultEvent, FaultPlan, NodeTap};
use qcdoc_geometry::{Axis, TorusShape};
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::{WireFrame, WireTap};
use qcdoc_scu::packet::{Frame, Packet};
use std::sync::Arc;

fn tap_per_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(20);
    let empty = Arc::new(FaultClock::resolve(&FaultPlan::new(0), 16, 8));
    let noisy = Arc::new(FaultClock::resolve(
        &FaultPlan::new(7).with_event(FaultEvent::bit_error_rate(3, 0, 0.01)),
        16,
        8,
    ));
    for (label, clock) in [
        ("tap_1k_frames_empty_plan", empty),
        ("tap_1k_frames_ber_plan", noisy),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut tap = NodeTap::new(Arc::clone(&clock), 3);
                for seq in 0..1_000u64 {
                    let mut wf = WireFrame {
                        seq,
                        frame: Frame::encode(Packet::Normal(seq)),
                    };
                    black_box(tap.on_frame(0, &mut wf));
                }
                tap.injected()[0]
            })
        });
    }
    group.finish();
}

fn des_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(20);
    let cfg = DesConfig::homogeneous([2, 2, 2, 2], 800_000, 1_536, 3_000);
    let clean = FaultPlan::new(1);
    let faulty = FaultPlan::new(1).with_event(FaultEvent::bit_error_rate(5, 0, 0.001));
    group.bench_function("des_16n_20it_clean", |b| {
        b.iter(|| run_with_faults(black_box(&cfg), 20, &clean).0.total_cycles)
    });
    group.bench_function("des_16n_20it_ber", |b| {
        b.iter(|| run_with_faults(black_box(&cfg), 20, &faulty).0.total_cycles)
    });
    group.finish();
}

fn functional_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(10);
    let shift = |plan: FaultPlan| {
        let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
        machine.run(|ctx| {
            for i in 0..64u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 64),
                DmaDescriptor::contiguous(0x4000, 64),
            );
            ctx.mem.read_word(0x4000).unwrap()
        })
    };
    group.bench_function("functional_ring4_shift64_clean", |b| {
        b.iter(|| shift(FaultPlan::new(0)))
    });
    group.bench_function("functional_ring4_shift64_bitflip", |b| {
        b.iter(|| shift(FaultPlan::new(0).with_event(FaultEvent::bit_flip(1, 0, 9, 33))))
    });
    group.finish();
}

criterion_group!(benches, tap_per_frame, des_draws, functional_shift);
criterion_main!(benches);
