//! Cost of the data-integrity layers when nothing is corrupted.
//!
//! Integrity must be near-free on the clean path, or nobody would run
//! with it on: ECC rides every memory access anyway, the block checksum
//! adds one trailer word per DMA block, and ABFT adds three running
//! f64 sums per CG iteration plus a periodic audit. The smoke check
//! gates the end of that list — ABFT-on clean CG within 5% of raw CG —
//! because it is the only layer an application opts into per-solve. The
//! criterion group then prices each layer, and the measured ratios land
//! in `BENCH_integrity.json` for the dashboard.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_asic::memory::NodeMemory;
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_core::functional::FunctionalMachine;
use qcdoc_geometry::{Axis, TorusShape};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne, solve_cgne_abft, AbftParams, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_telemetry::NodeTelemetry;

fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([4, 4, 4, 4]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

fn params() -> CgParams {
    CgParams {
        tolerance: 1e-10,
        max_iterations: 25,
    }
}

fn cg_raw(op: &WilsonDirac<'_>, b: &FermionField) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne(op, &mut x, black_box(b), params());
    report.final_residual
}

fn cg_abft(op: &WilsonDirac<'_>, b: &FermionField) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let mut telem = NodeTelemetry::disabled(0);
    let (report, abft) = solve_cgne_abft(
        op,
        &mut x,
        black_box(b),
        params(),
        AbftParams::default(),
        None,
        &mut telem,
    );
    assert_eq!(abft.detections, 0, "clean run must audit clean");
    report.final_residual
}

/// A DMA-heavy functional-machine round: 8 × 256-word neighbour shifts
/// on a 4-ring, with or without the end-to-end block checksums.
fn shift_run(checked: bool) -> u64 {
    let mut machine = FunctionalMachine::new(TorusShape::new(&[4]));
    if checked {
        machine = machine.with_block_checksums();
    }
    let out = machine.run(|ctx| {
        for i in 0..256u64 {
            ctx.mem.write_word(0x100 + i * 8, i).unwrap();
        }
        for _ in 0..8 {
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 256),
                DmaDescriptor::contiguous(0x8000, 256),
            );
        }
        ctx.mem.read_word(0x8000).unwrap()
    });
    out.iter().sum()
}

/// ECC write + deterministic scrub over a 4096-word footprint.
fn scrub_run() -> u64 {
    let mut mem = NodeMemory::with_128mb_dimm();
    for i in 0..4096u64 {
        mem.write_word(0x1000 + i * 8, i.wrapping_mul(0x9e3779b97f4a7c15))
            .unwrap();
    }
    let report = mem.scrub();
    assert_eq!(report.machine_checks, 0);
    report.scanned_words
}

/// The acceptance gate: ABFT-on clean CG stays within 5% of raw CG, and
/// the measured layer ratios are exported to `BENCH_integrity.json`.
fn smoke_check() {
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    black_box(cg_raw(&op, &b));
    black_box(cg_abft(&op, &b));
    let mut verdict = None;
    let mut measured = (0.0, 0.0);
    // Raw and ABFT timings interleave so clock drift and cache-placement
    // luck tax both sides of the ratio equally (the durability smoke
    // learned this the hard way).
    for attempt in 1..=5 {
        let mut raw = f64::INFINITY;
        let mut abft = f64::INFINITY;
        for _ in 0..7 {
            raw = raw.min(min_seconds(
                || {
                    black_box(cg_raw(&op, &b));
                },
                1,
            ));
            abft = abft.min(min_seconds(
                || {
                    black_box(cg_abft(&op, &b));
                },
                1,
            ));
        }
        let ratio = abft / raw;
        println!(
            "integrity_overhead smoke attempt {attempt}: raw {:.1} ms, abft {:.1} ms, ratio {ratio:.4}",
            raw * 1e3,
            abft * 1e3,
        );
        measured = (raw, ratio);
        if ratio < 1.05 {
            verdict = Some(ratio);
            break;
        }
    }
    let ratio = verdict.expect("ABFT-on clean CG exceeded 5% overhead in 5 attempts");
    println!("integrity_overhead smoke PASS: abft ratio {ratio:.4} < 1.05");

    // Price the DMA checksum layer the same way (informational — the
    // trailer word plus receive-side verify rides the functional model's
    // thread scheduling, so no hard gate).
    let unchecked = min_seconds(
        || {
            black_box(shift_run(false));
        },
        5,
    );
    let checked = min_seconds(
        || {
            black_box(shift_run(true));
        },
        5,
    );
    let dma_ratio = checked / unchecked;
    println!(
        "integrity_overhead: unchecked shift {:.1} ms, checked {:.1} ms, ratio {dma_ratio:.4}",
        unchecked * 1e3,
        checked * 1e3,
    );

    // One traced ABFT solve fills the phase table (solver.apply /
    // solver.reduce / solver.linalg spans) and the deterministic
    // per-iteration cycle histogram the judge gates at 1%.
    let mut telem = NodeTelemetry::with_ring(0, 4096);
    let mut x = FermionField::zero(b.lattice());
    let (_, abft) = solve_cgne_abft(
        &op,
        &mut x,
        &b,
        params(),
        AbftParams::default(),
        None,
        &mut telem,
    );
    assert_eq!(abft.detections, 0, "traced clean run must audit clean");
    let (solver_metrics, spans) = telem.take_parts();

    let mut run = BenchRun::new("integrity");
    run.gauge("integrity_cg_raw_seconds", measured.0);
    run.gauge("integrity_abft_overhead_ratio", ratio);
    run.gauge("integrity_abft_gate", 1.05);
    run.gauge("integrity_dma_checksum_ratio", dma_ratio);
    run.reg.merge(&solver_metrics);
    run.spans(spans);
    run.export();
}

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrity_overhead");
    group.sample_size(10);
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    group.bench_function("cg_4x4x4x4_raw", |bch| bch.iter(|| cg_raw(&op, &b)));
    group.bench_function("cg_4x4x4x4_abft_interval_8", |bch| {
        bch.iter(|| cg_abft(&op, &b))
    });
    group.bench_function("shift_4ring_2048_words_unchecked", |bch| {
        bch.iter(|| shift_run(false))
    });
    group.bench_function("shift_4ring_2048_words_checked", |bch| {
        bch.iter(|| shift_run(true))
    });
    group.bench_function("ecc_write_scrub_4096_words", |bch| bch.iter(scrub_run));
    group.finish();
}

criterion_group!(benches, overhead);

fn main() {
    smoke_check();
    benches();
}
