//! Cost of the telemetry layer on the Dslash hot loop.
//!
//! The observability contract is "compile-out-cheap": with telemetry
//! disabled every hook is a single branch on `NodeTelemetry::is_enabled`,
//! so the instrumented solver must run at raw-operator speed. The smoke
//! check times an 8⁴ Wilson `M†M` hot loop bare versus with the disabled
//! hooks interleaved exactly as `solve_cgne_traced` places them, takes the
//! minimum over several repetitions (minimum, not mean — the floor is the
//! honest cost on a noisy machine) and asserts the disabled path stays
//! within 5%. The criterion group then prices all three flavours: raw,
//! disabled hooks, and live spans into a ring sink.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::wilson::WilsonDirac;
use qcdoc_telemetry::{NodeTelemetry, Phase};

const ITERS: usize = 30;

fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([8, 8, 8, 8]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

/// The raw hot loop: `ITERS` normal-equation operator applications.
fn dslash_raw(op: &WilsonDirac<'_>, p: &FermionField) -> f64 {
    let mut t = p.clone();
    let mut q = p.clone();
    for _ in 0..ITERS {
        op.apply(&mut t, black_box(p));
        op.apply_dagger(&mut q, &t);
    }
    q.norm_sqr()
}

/// The same loop with telemetry hooks placed as the traced solver places
/// them: a span around the pair of applications, a clock advance, a
/// counter bump.
fn dslash_hooked(op: &WilsonDirac<'_>, p: &FermionField, telem: &mut NodeTelemetry) -> f64 {
    let mut t = p.clone();
    let mut q = p.clone();
    let apply_cycles = 1320 * p.lattice().volume() as u64 / 2;
    for _ in 0..ITERS {
        let token = telem.begin();
        op.apply(&mut t, black_box(p));
        op.apply_dagger(&mut q, &t);
        telem.advance(2 * apply_cycles);
        telem.end_with(token, "bench.apply", Phase::Compute, 2);
        telem.counter_add("solver_iterations", 1);
    }
    q.norm_sqr()
}

/// The acceptance gate: disabled telemetry adds < 5% to the hot loop,
/// and both ratios (disabled hooks, live ring spans) are exported to
/// `BENCH_telemetry.json`.
fn smoke_check() {
    let (gauge, p) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    // Warm-up: touch both paths once before timing anything.
    black_box(dslash_raw(&op, &p));
    black_box(dslash_hooked(&op, &p, &mut NodeTelemetry::disabled(0)));
    let mut verdict = None;
    let mut raw_s = 0.0;
    for attempt in 1..=3 {
        let raw = min_seconds(
            || {
                black_box(dslash_raw(&op, &p));
            },
            7,
        );
        let disabled = min_seconds(
            || {
                let mut telem = NodeTelemetry::disabled(0);
                black_box(dslash_hooked(&op, &p, &mut telem));
            },
            7,
        );
        let ratio = disabled / raw;
        println!(
            "telemetry_overhead smoke attempt {attempt}: raw {:.1} ms, disabled {:.1} ms, ratio {ratio:.4}",
            raw * 1e3,
            disabled * 1e3,
        );
        raw_s = raw;
        if ratio < 1.05 {
            verdict = Some(ratio);
            break;
        }
    }
    let ratio = verdict.expect("disabled telemetry exceeded 5% overhead in 3 attempts");
    println!("telemetry_overhead smoke PASS: NullSink path ratio {ratio:.4} < 1.05");

    // Price the live path too (report-only — ring spans are opt-in).
    let ring = min_seconds(
        || {
            let mut telem = NodeTelemetry::with_ring(0, 1 << 12);
            black_box(dslash_hooked(&op, &p, &mut telem));
        },
        7,
    );
    let ring_ratio = ring / raw_s;
    println!("telemetry_overhead: ring-span path ratio {ring_ratio:.4}");

    let mut run = BenchRun::new("telemetry");
    run.gauge("telemetry_dslash_raw_seconds", raw_s);
    run.gauge("telemetry_disabled_overhead_ratio", ratio);
    run.gauge("telemetry_disabled_gate", 1.05);
    run.gauge("telemetry_ring_overhead_ratio", ring_ratio);
    run.export();
}

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let (gauge, p) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    group.bench_function("dslash_8x8x8x8_raw", |b| b.iter(|| dslash_raw(&op, &p)));
    group.bench_function("dslash_8x8x8x8_disabled_hooks", |b| {
        b.iter(|| {
            let mut telem = NodeTelemetry::disabled(0);
            dslash_hooked(&op, &p, &mut telem)
        })
    });
    group.bench_function("dslash_8x8x8x8_ring_spans", |b| {
        b.iter(|| {
            let mut telem = NodeTelemetry::with_ring(0, 1 << 12);
            dslash_hooked(&op, &p, &mut telem)
        })
    });
    group.finish();
}

criterion_group!(benches, overhead);

fn main() {
    smoke_check();
    benches();
}
