//! Cost of running a job through the scheduler instead of by hand.
//!
//! The scheduler earns its keep only if its bookkeeping is invisible
//! next to the physics: one placement decision when a job starts, one
//! tick of accounting per CG iteration, one vacate when it finishes.
//! The smoke check gates exactly that — a single CG solve driven
//! through submit → place-on-qdaemon → per-iteration ticks → complete
//! must stay within 5% of the bare solve. The criterion group then
//! prices the placement decision itself on the full 12,288-node mesh
//! (empty and half-loaded) and runs a seeded mini-soak whose achieved
//! occupancy is compared against the work-conserving oracle bound.
//! The measured numbers land in `BENCH_sched.json` for the dashboard.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, time_histogram_us, BenchRun};
use qcdoc_geometry::TorusShape;
use qcdoc_host::Qdaemon;
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;
use qcdoc_sched::{JobSpec, Priority, SchedConfig, Scheduler, ShapeRequest, SimMesh, TenantConfig};

fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([4, 4, 4, 4]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

fn params() -> CgParams {
    CgParams {
        tolerance: 1e-10,
        max_iterations: 25,
    }
}

fn shape(extents: &[usize], groups: &[&[usize]]) -> ShapeRequest {
    ShapeRequest {
        extents: extents.to_vec(),
        groups: groups.iter().map(|g| g.to_vec()).collect(),
    }
}

fn tenant() -> TenantConfig {
    TenantConfig {
        weight: 1.0,
        node_quota: usize::MAX,
        max_queued: usize::MAX,
    }
}

/// The bare solve: what a user would run with the partition in hand.
fn cg_direct(op: &WilsonDirac<'_>, b: &FermionField) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne(op, &mut x, black_box(b), params());
    report.final_residual
}

/// The same solve driven through the scheduler: submit one job against
/// a quiet booted qdaemon, let the scheduler place it, charge one tick
/// of accounting per CG iteration, and complete/vacate at the end.
fn cg_managed(op: &WilsonDirac<'_>, b: &FermionField, q: &mut Qdaemon, iters: u64) -> f64 {
    let mut sched = Scheduler::new(q.machine().clone(), SchedConfig::default());
    sched.add_tenant("bench", tenant());
    let id = sched
        .submit(JobSpec {
            tenant: "bench".into(),
            priority: Priority::Standard,
            shapes: vec![shape(&[4, 2, 2], &[&[0], &[1], &[2]])],
            work: iters,
            preemptible: false,
        })
        .expect("quiet machine admits the job");
    sched.schedule(q);
    assert!(sched.job(id).expect("submitted").placement.is_some());

    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne(op, &mut x, black_box(b), params());
    // One scheduler tick per CG iteration, as the qdaemon run loop does.
    for _ in 0..iters {
        sched.advance(1, q);
    }
    assert_eq!(sched.running_count(), 0, "job must complete on schedule");
    report.final_residual
}

/// The full machine of the paper and a shape menu whose multi-axis
/// groups all end on an extent-2 axis (unit-dilation rings).
fn big_machine() -> TorusShape {
    TorusShape::new(&[8, 8, 6, 4, 4, 2])
}

fn menu() -> Vec<ShapeRequest> {
    vec![
        shape(&[8, 8, 6, 4, 4, 2], &[&[0], &[1], &[2], &[3], &[4], &[5]]),
        shape(&[8, 8, 6, 4, 4, 1], &[&[0], &[1], &[2], &[3], &[4]]),
        shape(&[8, 8, 6, 4, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),
        shape(&[8, 8, 6, 2, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),
        shape(&[8, 8, 6, 2, 1, 1], &[&[0], &[1], &[2, 3]]),
        shape(&[8, 8, 2, 2, 1, 1], &[&[0], &[1], &[2, 3]]),
        shape(&[8, 2, 2, 1, 1, 1], &[&[0], &[1, 2]]),
        shape(&[2, 2, 1, 1, 1, 1], &[&[0, 1]]),
    ]
}

/// A scheduler + mesh with `held` background jobs pinned on the full
/// machine (work is effectively infinite, so they never complete while
/// the decision latency is being probed).
fn loaded_mesh(held: &[ShapeRequest]) -> (Scheduler, SimMesh) {
    let mut sched = Scheduler::new(big_machine(), SchedConfig::default());
    sched.add_tenant("bench", tenant());
    let mut mesh = SimMesh::new(big_machine());
    for s in held {
        sched
            .submit(JobSpec {
                tenant: "bench".into(),
                priority: Priority::Standard,
                shapes: vec![s.clone()],
                work: u64::MAX / 2,
                preemptible: false,
            })
            .expect("background job admits");
    }
    sched.schedule(&mut mesh);
    assert_eq!(sched.running_count(), held.len(), "background load placed");
    (sched, mesh)
}

/// One placement decision on the 12,288-node mesh: submit a 32-node
/// job, schedule it onto the machine, then cancel it (vacating the
/// nodes) so the next probe sees identical state.
fn decision_cycle(sched: &mut Scheduler, mesh: &mut SimMesh) {
    let id = sched
        .submit(JobSpec {
            tenant: "bench".into(),
            priority: Priority::Standard,
            shapes: vec![shape(&[8, 2, 2, 1, 1, 1], &[&[0], &[1, 2]])],
            work: 8,
            preemptible: true,
        })
        .expect("probe job admits");
    sched.schedule(mesh);
    assert!(sched.cancel(id, mesh), "probe job cancels");
}

/// Seeded mini-soak on the full machine; returns (achieved occupancy,
/// oracle occupancy) where the oracle is the work-conserving bound
/// `total node-ticks / (nodes * ideal makespan)`.
fn soak_occupancy(jobs: usize, seed: u64) -> (f64, f64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let machine = big_machine();
    let nodes = machine.node_count() as u64;
    let mut sched = Scheduler::new(
        machine.clone(),
        SchedConfig {
            aging_ticks: 48,
            window: 8,
            ..SchedConfig::default()
        },
    );
    sched.add_tenant("bench", tenant());
    let mut mesh = SimMesh::new(machine);
    let menu = menu();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_node_ticks = 0u64;
    for _ in 0..jobs {
        let first = rng.gen_range(0..menu.len());
        let shapes: Vec<ShapeRequest> = menu[first..].iter().take(2).map(Clone::clone).collect();
        let work = rng.gen_range(2..=24u64);
        // The oracle charges the smallest shape the job would accept.
        let min_nodes = shapes.iter().map(ShapeRequest::node_count).min().unwrap();
        total_node_ticks += work * min_nodes as u64;
        sched
            .submit(JobSpec {
                tenant: "bench".into(),
                priority: Priority::Standard,
                shapes,
                work,
                preemptible: true,
            })
            .expect("soak job admits");
    }
    assert!(sched.drain(&mut mesh, 1_000_000), "soak queue drains");
    let ideal_makespan = total_node_ticks.div_ceil(nodes).max(1);
    let oracle = total_node_ticks as f64 / (nodes * ideal_makespan) as f64;
    (sched.occupancy_ratio(), oracle)
}

/// The acceptance gate: a scheduler-managed CG solve stays within 5%
/// of the bare solve, and the measured numbers are exported to
/// `BENCH_sched.json`.
fn smoke_check() {
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    let mut q = Qdaemon::new(TorusShape::new(&[4, 2, 2]));
    q.boot(&[]);
    let mut probe = FermionField::zero(b.lattice());
    let iters = solve_cgne(&op, &mut probe, &b, params()).iterations as u64;

    black_box(cg_direct(&op, &b));
    black_box(cg_managed(&op, &b, &mut q, iters));
    let mut verdict = None;
    let mut measured = (0.0, 0.0);
    for attempt in 1..=3 {
        let direct = min_seconds(
            || {
                black_box(cg_direct(&op, &b));
            },
            7,
        );
        let managed = min_seconds(
            || {
                black_box(cg_managed(&op, &b, &mut q, iters));
            },
            7,
        );
        let ratio = managed / direct;
        println!(
            "sched_overhead smoke attempt {attempt}: direct {:.1} ms, managed {:.1} ms, ratio {ratio:.4}",
            direct * 1e3,
            managed * 1e3,
        );
        measured = (direct, ratio);
        if ratio < 1.05 {
            verdict = Some(ratio);
            break;
        }
    }
    let ratio = verdict.expect("scheduler-managed CG exceeded 5% overhead in 3 attempts");
    println!("sched_overhead smoke PASS: managed ratio {ratio:.4} < 1.05");

    // Price one placement decision on the full 12,288-node mesh, empty
    // and with half the machine pinned by background jobs. A histogram
    // over all 64 cycles — not just the minimum — so the judge can gate
    // the tail (p99) as well as the floor.
    let (mut s0, mut m0) = loaded_mesh(&[]);
    let empty_h = time_histogram_us(|| decision_cycle(&mut s0, &mut m0), 64);
    let half = menu()[1].clone();
    let (mut s1, mut m1) = loaded_mesh(std::slice::from_ref(&half));
    let half_h = time_histogram_us(|| decision_cycle(&mut s1, &mut m1), 64);
    println!(
        "sched_overhead: decision latency p50/p99 {}/{} us empty, {}/{} us half-loaded",
        empty_h.p50(),
        empty_h.p99(),
        half_h.p50(),
        half_h.p99(),
    );

    // Occupancy against the work-conserving oracle (informational — the
    // oracle ignores shape granularity, so < 1.0 is expected).
    let (achieved, oracle) = soak_occupancy(160, 2004);
    let vs_oracle = achieved / oracle;
    println!(
        "sched_overhead: soak occupancy {:.1}% vs oracle {:.1}% (ratio {vs_oracle:.3})",
        achieved * 1e2,
        oracle * 1e2,
    );

    let mut run = BenchRun::new("sched");
    run.gauge("sched_cg_direct_seconds", measured.0);
    run.gauge("sched_managed_overhead_ratio", measured.1);
    run.gauge("sched_overhead_gate", 1.05);
    run.histogram("sched_decision_latency_us", "empty", &empty_h);
    run.histogram("sched_decision_latency_us", "half", &half_h);
    run.gauge("sched_soak_occupancy", achieved);
    run.gauge("sched_soak_occupancy_oracle", oracle);
    run.gauge("sched_occupancy_vs_oracle", vs_oracle);
    run.export();
}

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_overhead");
    group.sample_size(10);
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    let mut q = Qdaemon::new(TorusShape::new(&[4, 2, 2]));
    q.boot(&[]);
    let mut probe = FermionField::zero(b.lattice());
    let iters = solve_cgne(&op, &mut probe, &b, params()).iterations as u64;
    group.bench_function("cg_4x4x4x4_direct", |bch| bch.iter(|| cg_direct(&op, &b)));
    group.bench_function("cg_4x4x4x4_managed", |bch| {
        bch.iter(|| cg_managed(&op, &b, &mut q, iters))
    });
    let (mut s0, mut m0) = loaded_mesh(&[]);
    group.bench_function("decision_12288_nodes_empty", |bch| {
        bch.iter(|| decision_cycle(&mut s0, &mut m0))
    });
    let half = menu()[1].clone();
    let (mut s1, mut m1) = loaded_mesh(std::slice::from_ref(&half));
    group.bench_function("decision_12288_nodes_half_load", |bch| {
        bch.iter(|| decision_cycle(&mut s1, &mut m1))
    });
    group.bench_function("soak_80_jobs_full_machine", |bch| {
        bch.iter(|| soak_occupancy(80, 7))
    });
    group.finish();
}

criterion_group!(benches, overhead);

fn main() {
    smoke_check();
    benches();
}
