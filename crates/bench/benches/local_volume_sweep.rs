//! E2 — efficiency vs local volume: the EDRAM cliff.
//!
//! §4: "For most of the fermion formulations, a 6⁴ local volume still fits
//! in our 4 Megabytes of imbedded memory. For still larger volumes, when
//! we must put part of the problem in external DDR DRAM, the performance
//! figures fall to the range of 30% of peak."
//!
//! Prints the efficiency series over local volumes 2⁴..8⁴ (with the
//! EDRAM-fit flag), plus the prefetch ablation, then benchmarks the EDRAM
//! controller model under 1..4 interleaved streams.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_asic::edram::{EdramConfig, EdramController};
use qcdoc_core::perf::DiracPerf;
use qcdoc_lattice::counts::Action;
use std::hint::black_box;

fn print_series() {
    eprintln!("\n=== E2: efficiency vs local volume (clover, 450 MHz) ===");
    eprintln!(
        "{:>8} {:>12} {:>10} {:>10}",
        "volume", "resident kB", "EDRAM?", "eff %"
    );
    for l in [2usize, 3, 4, 5, 6, 7, 8] {
        let mut perf = DiracPerf::paper_bench();
        perf.local_dims = [l, l, l, l];
        let r = perf.evaluate(Action::Clover);
        eprintln!(
            "{:>7}4 {:>12.0} {:>10} {:>10.1}",
            l,
            r.resident_bytes as f64 / 1024.0,
            if r.fits_edram { "yes" } else { "no" },
            100.0 * r.efficiency
        );
    }
    // Ablation: disable the prefetch streams — every row pays a page miss.
    let ctl_on = EdramController::new(EdramConfig::default());
    let ctl_off = EdramController::new(EdramConfig {
        prefetch: false,
        ..Default::default()
    });
    eprintln!(
        "\nprefetch ablation: effective EDRAM rate {} B/cycle with streams, {:.1} without",
        ctl_on.effective_bytes_per_cycle(2),
        ctl_off.effective_bytes_per_cycle(2)
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e2_edram_streams");
    for streams in 1..=4usize {
        group.bench_function(format!("streams_{streams}"), |b| {
            b.iter(|| {
                let mut ctl = EdramController::new(EdramConfig::default());
                let mut addrs: Vec<u64> = (0..streams).map(|s| s as u64 * 0x10_0000).collect();
                let mut total = 0u64;
                for _ in 0..256 {
                    for a in &mut addrs {
                        total += ctl.access(*a, 128).count();
                        *a += 128;
                    }
                }
                black_box(total)
            })
        });
    }
    group.finish();

    // The volume sweep itself.
    c.bench_function("e2_volume_sweep_model", |b| {
        b.iter(|| {
            for l in [2usize, 4, 6, 8] {
                let mut perf = DiracPerf::paper_bench();
                perf.local_dims = [l, l, l, l];
                black_box(perf.evaluate(Action::Clover));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
