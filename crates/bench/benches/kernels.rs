//! AoSoA vs scalar Dslash kernels at both precisions — the layout
//! experiment behind EXPERIMENTS.md E16.
//!
//! E11 measured the scalar (AoS) kernels and found f32 *slower* than f64
//! (0.68×): interleaved re/im storage makes complex arithmetic
//! shuffle-bound, so narrower lanes buy nothing. The AoSoA layout in
//! `qcdoc_lattice::aosoa` separates re/im into lane-major planes, turning
//! the same arithmetic into shuffle-free packed ops where f32's 2× lane
//! count is finally worth wall-clock time. The smoke check *gates the
//! direction*: AoSoA f32 must beat AoSoA f64 or the bench fails. The
//! judge then gates the exported ratio against the blessed baseline.
//!
//! All four kernels are bit-identical per precision (asserted here on the
//! benchmark workload and in the lattice crate's test suite), so the
//! comparison is pure layout, not algorithm.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_lattice::aosoa::{dslash_aosoa, FermionBlocks, GaugeBlocks};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice, NeighbourTable};
use qcdoc_lattice::wilson::WilsonDirac;

/// The seeded workload every number below is measured on: the paper's
/// 8⁴ benchmark volume.
fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([8, 8, 8, 8]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

/// Dslash applications per timed closure — enough to amortize timer
/// granularity on a millisecond-scale kernel.
const APPLICATIONS: usize = 20;
/// Repetitions per measurement; `min_seconds` keeps the minimum.
const REPS: usize = 5;

struct KernelTimes {
    scalar_f64: f64,
    scalar_f32: f64,
    aosoa_f64: f64,
    aosoa_f32: f64,
}

fn measure() -> KernelTimes {
    let (gauge, psi) = workload();
    let lat = gauge.lattice();
    let hops = NeighbourTable::new(lat);
    let gauge32 = gauge.to_f32();
    let psi32 = psi.to_f32();
    let op = WilsonDirac::new(&gauge, 0.12);
    let op32 = WilsonDirac::new(&gauge32, 0.12);
    let gb = GaugeBlocks::from_field(&gauge);
    let pb = FermionBlocks::from_field(&psi);
    let gb32 = GaugeBlocks::from_field(&gauge32);
    let pb32 = FermionBlocks::from_field(&psi32);

    let mut out = FermionField::zero(lat);
    let scalar_f64 = min_seconds(
        || {
            for _ in 0..APPLICATIONS {
                op.dslash(&mut out, black_box(&psi));
            }
        },
        REPS,
    );
    let mut out32 = FermionField::<f32>::zero(lat);
    let scalar_f32 = min_seconds(
        || {
            for _ in 0..APPLICATIONS {
                op32.dslash(&mut out32, black_box(&psi32));
            }
        },
        REPS,
    );
    let mut ob = FermionBlocks::zero(lat);
    let aosoa_f64 = min_seconds(
        || {
            for _ in 0..APPLICATIONS {
                dslash_aosoa(&mut ob, &gb, black_box(&pb), &hops);
            }
        },
        REPS,
    );
    let mut ob32 = FermionBlocks::<f32>::zero(lat);
    let aosoa_f32 = min_seconds(
        || {
            for _ in 0..APPLICATIONS {
                dslash_aosoa(&mut ob32, &gb32, black_box(&pb32), &hops);
            }
        },
        REPS,
    );

    KernelTimes {
        scalar_f64,
        scalar_f32,
        aosoa_f64,
        aosoa_f32,
    }
}

fn smoke_check() {
    // Correctness first: the AoSoA kernels must reproduce the scalar
    // kernels bit-for-bit on the benchmark workload at both precisions.
    let (gauge, psi) = workload();
    let lat = gauge.lattice();
    let hops = NeighbourTable::new(lat);
    let op = WilsonDirac::new(&gauge, 0.12);
    let mut scalar = FermionField::zero(lat);
    op.dslash(&mut scalar, &psi);
    let mut ob = FermionBlocks::zero(lat);
    dslash_aosoa(
        &mut ob,
        &GaugeBlocks::from_field(&gauge),
        &FermionBlocks::from_field(&psi),
        &hops,
    );
    assert_eq!(
        ob.to_field().fingerprint(),
        scalar.fingerprint(),
        "AoSoA f64 dslash must be bit-identical to the scalar kernel"
    );
    let gauge32 = gauge.to_f32();
    let psi32 = psi.to_f32();
    let op32 = WilsonDirac::new(&gauge32, 0.12);
    let mut scalar32 = FermionField::zero(lat);
    op32.dslash(&mut scalar32, &psi32);
    let mut ob32 = FermionBlocks::zero(lat);
    dslash_aosoa(
        &mut ob32,
        &GaugeBlocks::from_field(&gauge32),
        &FermionBlocks::from_field(&psi32),
        &hops,
    );
    assert_eq!(
        ob32.to_field(),
        scalar32,
        "AoSoA f32 dslash must be bit-identical to the scalar kernel"
    );

    // Direction gate, with a retry envelope to ride out host noise: the
    // single-precision AoSoA kernel must be faster than the double one.
    let mut verdict = None;
    for attempt in 1..=3 {
        let t = measure();
        let aosoa_ratio = t.aosoa_f64 / t.aosoa_f32;
        let scalar_ratio = t.scalar_f64 / t.scalar_f32;
        println!(
            "kernels smoke attempt {attempt}: scalar f64 {:.1} ms, scalar f32 {:.1} ms \
             (ratio {scalar_ratio:.2}x), aosoa f64 {:.1} ms, aosoa f32 {:.1} ms \
             (ratio {aosoa_ratio:.2}x)",
            t.scalar_f64 * 1e3,
            t.scalar_f32 * 1e3,
            t.aosoa_f64 * 1e3,
            t.aosoa_f32 * 1e3,
        );
        if aosoa_ratio > 1.0 {
            verdict = Some(t);
            break;
        }
    }
    let t = verdict.expect("AoSoA f32 dslash must beat AoSoA f64 — the layout experiment failed");
    let aosoa_ratio = t.aosoa_f64 / t.aosoa_f32;
    let scalar_ratio = t.scalar_f64 / t.scalar_f32;
    println!(
        "kernels smoke PASS: AoSoA f32 is {aosoa_ratio:.2}x faster than f64 \
         (scalar layout managed only {scalar_ratio:.2}x; E11's shuffle-bound regime)"
    );

    let mut run = BenchRun::new("kernels");
    run.gauge("kernels_aosoa_f32_speedup", aosoa_ratio);
    run.gauge("kernels_scalar_f32_speedup", scalar_ratio);
    run.gauge("kernels_aosoa_vs_scalar_f64", t.scalar_f64 / t.aosoa_f64);
    run.gauge("kernels_aosoa_vs_scalar_f32", t.scalar_f32 / t.aosoa_f32);
    run.gauge(
        "kernels_scalar_f64_ms_per_dslash",
        t.scalar_f64 * 1e3 / APPLICATIONS as f64,
    );
    run.gauge(
        "kernels_aosoa_f32_ms_per_dslash",
        t.aosoa_f32 * 1e3 / APPLICATIONS as f64,
    );
    run.export();
}

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    let (gauge, psi) = workload();
    let lat = gauge.lattice();
    let hops = NeighbourTable::new(lat);
    let gauge32 = gauge.to_f32();
    let psi32 = psi.to_f32();
    let op = WilsonDirac::new(&gauge, 0.12);
    let op32 = WilsonDirac::new(&gauge32, 0.12);
    let gb = GaugeBlocks::from_field(&gauge);
    let pb = FermionBlocks::from_field(&psi);
    let gb32 = GaugeBlocks::from_field(&gauge32);
    let pb32 = FermionBlocks::from_field(&psi32);

    let mut out = FermionField::zero(lat);
    group.bench_function("dslash_scalar_f64", |b| {
        b.iter(|| {
            op.dslash(&mut out, black_box(&psi));
            out.site(0).0[0].0[0].re
        })
    });
    let mut out32 = FermionField::<f32>::zero(lat);
    group.bench_function("dslash_scalar_f32", |b| {
        b.iter(|| {
            op32.dslash(&mut out32, black_box(&psi32));
            out32.site(0).0[0].0[0].re
        })
    });
    let mut ob = FermionBlocks::zero(lat);
    group.bench_function("dslash_aosoa_f64", |b| {
        b.iter(|| dslash_aosoa(&mut ob, &gb, black_box(&pb), &hops))
    });
    let mut ob32 = FermionBlocks::<f32>::zero(lat);
    group.bench_function("dslash_aosoa_f32", |b| {
        b.iter(|| dslash_aosoa(&mut ob32, &gb32, black_box(&pb32), &hops))
    });
    group.finish();
}

criterion_group!(benches, kernels);

fn main() {
    smoke_check();
    benches();
}
