//! E6 — software partitioning (§2.2, §3.1): remapping the native 6-D mesh
//! to every logical rank 1..6 without moving cables, always at dilation 1.
//!
//! Prints the remap table for the 1024-node rack, then benchmarks
//! partition construction, the coordinate maps, and the dilation audit.

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_geometry::{NodeId, Partition, PartitionSpec, TorusShape};
use std::hint::black_box;

/// Whole-machine grouping folding the trailing axes into the last logical
/// dimension.
fn grouping(machine: &TorusShape, rank: usize) -> PartitionSpec {
    let keep = rank - 1;
    let mut groups: Vec<Vec<usize>> = (0..keep).map(|a| vec![a]).collect();
    groups.push((keep..machine.rank()).collect());
    PartitionSpec {
        origin: qcdoc_geometry::NodeCoord::ORIGIN,
        extents: machine.dims().to_vec(),
        groups,
    }
}

fn print_table() {
    let machine = TorusShape::rack_1024();
    eprintln!("\n=== E6: software remaps of the 1024-node rack (8x4x4x2x2x2) ===");
    eprintln!("{:>6} {:>20} {:>10}", "rank", "logical shape", "dilation");
    for rank in 1..=6usize {
        let p = Partition::new(&machine, grouping(&machine, rank)).unwrap();
        eprintln!(
            "{:>6} {:>20} {:>10}",
            rank,
            p.logical_shape().to_string(),
            p.dilation()
        );
        assert_eq!(p.dilation(), 1, "every remap must keep neighbours adjacent");
    }
    eprintln!("(no cables moved: the fold is a Gray cycle through the physical mesh)");
}

fn bench(c: &mut Criterion) {
    print_table();
    let machine = TorusShape::rack_1024();

    c.bench_function("e6_partition_build_4d", |b| {
        b.iter(|| black_box(Partition::new(&machine, grouping(&machine, 4)).unwrap()))
    });

    let p = Partition::new(&machine, grouping(&machine, 4)).unwrap();
    c.bench_function("e6_logical_to_physical_1024", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1024u32 {
                acc ^= p.physical_id(NodeId(i)).0;
            }
            black_box(acc)
        })
    });

    c.bench_function("e6_dilation_audit_1024", |b| {
        b.iter(|| black_box(p.dilation()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
