//! E1 — the §4 benchmark table: CG efficiency for each fermion action at
//! 4⁴ local volume on 128 nodes.
//!
//! Prints the paper-vs-model efficiency table, then measures the real
//! wall time of each Dirac operator kernel on this host (the *shape* —
//! clover > Wilson > ASQTAD in flops and the relative kernel costs — is
//! what transfers; absolute numbers are the host's, not the ASIC's).

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_core::perf::{DiracPerf, PAPER_EFFICIENCIES};
use qcdoc_lattice::clover::CloverDirac;
use qcdoc_lattice::dwf::{DwfDirac, DwfField};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice, StaggeredField};
use qcdoc_lattice::staggered::{AsqtadCoeffs, AsqtadDirac, AsqtadLinks, StaggeredDirac};
use qcdoc_lattice::wilson::WilsonDirac;
use std::hint::black_box;

fn print_table() {
    let perf = DiracPerf::paper_bench();
    eprintln!("\n=== E1: CG efficiency, 128 nodes, 4^4 local volume, double precision ===");
    eprint!("{}", perf.render_table());
    for (action, paper) in PAPER_EFFICIENCIES {
        let got = perf.evaluate(action).efficiency;
        eprintln!(
            "  {:<8} model {:>5.1}%  paper {:>5.1}%",
            action.name(),
            100.0 * got,
            100.0 * paper
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let lat = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::hot(lat, 1);
    let psi = FermionField::gaussian(lat, 2);
    let chi = StaggeredField::gaussian(lat, 3);

    let mut group = c.benchmark_group("e1_dirac_apply_4x4");
    group.sample_size(20);

    let wilson = WilsonDirac::new(&gauge, 0.12);
    let mut out = FermionField::zero(lat);
    group.bench_function("wilson", |b| {
        b.iter(|| wilson.apply(&mut out, black_box(&psi)))
    });

    let clover = CloverDirac::new(&gauge, 0.12, 1.0);
    group.bench_function("clover", |b| {
        b.iter(|| clover.apply(&mut out, black_box(&psi)))
    });

    let stag = StaggeredDirac::new(&gauge, 0.1);
    let mut outs = StaggeredField::zero(lat);
    group.bench_function("staggered", |b| {
        b.iter(|| stag.apply(&mut outs, black_box(&chi)))
    });

    let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
    let asqtad = AsqtadDirac::new(&links, 0.1);
    group.bench_function("asqtad", |b| {
        b.iter(|| asqtad.apply(&mut outs, black_box(&chi)))
    });

    let dwf = DwfDirac::new(&gauge, 1.8, 0.1, 8);
    let psid = DwfField::gaussian(lat, 8, 4);
    let mut outd = DwfField::zero(lat, 8);
    group.bench_function("dwf_ls8", |b| {
        b.iter(|| dwf.apply(&mut outd, black_box(&psid)))
    });

    group.finish();

    // Model evaluation itself (cheap; confirms it is benchmark-grade).
    let perf = DiracPerf::paper_bench();
    c.bench_function("e1_model_evaluation", |b| {
        b.iter(|| {
            for (action, _) in PAPER_EFFICIENCIES {
                black_box(perf.evaluate(action));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
