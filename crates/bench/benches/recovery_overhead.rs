//! Cost of checkpointing on the CG solver.
//!
//! The self-healing contract mirrors the telemetry one: resilience must be
//! free when it isn't used. `solve_cgne_checkpointed` with the interval set
//! to 0 runs the very same loop as the raw solver — the only addition is a
//! `interval > 0` branch per iteration — so it must hold raw-CG speed. The
//! smoke check asserts that (minimum-of-several timing, 5% gate), and the
//! criterion group then prices the real thing: raw CG, checkpoint-disabled
//! CG, periodic in-memory checkpoints, and periodic checkpoints serialized
//! through the NERSC-style archive writer.

use criterion::{black_box, criterion_group, Criterion};
use qcdoc_bench::{min_seconds, BenchRun};
use qcdoc_lattice::checkpoint::{write_checkpoint, CgCheckpoint};
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne, solve_cgne_checkpointed, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;

fn workload() -> (GaugeField, FermionField) {
    let lat = Lattice::new([4, 4, 4, 4]);
    (GaugeField::hot(lat, 42), FermionField::gaussian(lat, 43))
}

fn params() -> CgParams {
    CgParams {
        tolerance: 1e-10,
        max_iterations: 25,
    }
}

fn cg_raw(op: &WilsonDirac<'_>, b: &FermionField) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let report = solve_cgne(op, &mut x, black_box(b), params());
    report.final_residual
}

fn cg_checkpointed(op: &WilsonDirac<'_>, b: &FermionField, interval: usize) -> f64 {
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    let report = solve_cgne_checkpointed(op, &mut x, black_box(b), params(), interval, &mut sink);
    black_box(sink.len());
    report.final_residual
}

/// The acceptance gate: checkpoint-disabled CG stays within 5% of raw
/// CG. The measured ratio plus the periodic-checkpoint price and the
/// deterministic archive size land in `BENCH_recovery.json`.
fn smoke_check() {
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    black_box(cg_raw(&op, &b));
    black_box(cg_checkpointed(&op, &b, 0));
    let mut verdict = None;
    let mut raw_s = 0.0;
    for attempt in 1..=3 {
        let raw = min_seconds(
            || {
                black_box(cg_raw(&op, &b));
            },
            7,
        );
        let disabled = min_seconds(
            || {
                black_box(cg_checkpointed(&op, &b, 0));
            },
            7,
        );
        let ratio = disabled / raw;
        println!(
            "recovery_overhead smoke attempt {attempt}: raw {:.1} ms, interval-0 {:.1} ms, ratio {ratio:.4}",
            raw * 1e3,
            disabled * 1e3,
        );
        raw_s = raw;
        if ratio < 1.05 {
            verdict = Some(ratio);
            break;
        }
    }
    let ratio = verdict.expect("checkpoint-disabled CG exceeded 5% overhead in 3 attempts");
    println!("recovery_overhead smoke PASS: interval-0 ratio {ratio:.4} < 1.05");

    // Price the real thing and size one archived checkpoint; the count
    // and byte size are deterministic, so the judge gates them tightly.
    let every5 = min_seconds(
        || {
            black_box(cg_checkpointed(&op, &b, 5));
        },
        7,
    );
    let mut x = FermionField::zero(b.lattice());
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    solve_cgne_checkpointed(&op, &mut x, &b, params(), 5, &mut sink);
    let archive_bytes: usize = sink.iter().map(|ck| write_checkpoint(ck).len()).sum();
    println!(
        "recovery_overhead: every-5 ratio {:.4}, {} checkpoints, {} archive bytes",
        every5 / raw_s,
        sink.len(),
        archive_bytes,
    );

    let mut run = BenchRun::new("recovery");
    run.gauge("recovery_cg_raw_seconds", raw_s);
    run.gauge("recovery_disabled_overhead_ratio", ratio);
    run.gauge("recovery_disabled_gate", 1.05);
    run.gauge("recovery_every5_overhead_ratio", every5 / raw_s);
    run.gauge("recovery_checkpoint_count", sink.len() as f64);
    run.gauge("recovery_archive_bytes", archive_bytes as f64);
    run.export();
}

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_overhead");
    group.sample_size(10);
    let (gauge, b) = workload();
    let op = WilsonDirac::new(&gauge, 0.12);
    group.bench_function("cg_4x4x4x4_raw", |bch| bch.iter(|| cg_raw(&op, &b)));
    group.bench_function("cg_4x4x4x4_checkpoint_disabled", |bch| {
        bch.iter(|| cg_checkpointed(&op, &b, 0))
    });
    group.bench_function("cg_4x4x4x4_checkpoint_every_5", |bch| {
        bch.iter(|| cg_checkpointed(&op, &b, 5))
    });
    group.bench_function("cg_4x4x4x4_checkpoint_every_5_archived", |bch| {
        bch.iter(|| {
            let mut x = FermionField::zero(b.lattice());
            let mut sink: Vec<CgCheckpoint> = Vec::new();
            let report = solve_cgne_checkpointed(&op, &mut x, &b, params(), 5, &mut sink);
            let bytes: usize = sink.iter().map(|ck| write_checkpoint(ck).len()).sum();
            black_box(bytes);
            report.final_residual
        })
    });
    group.finish();
}

criterion_group!(benches, overhead);

fn main() {
    smoke_check();
    benches();
}
