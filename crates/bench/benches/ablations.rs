//! Design-choice ablations (DESIGN.md §7): what each piece of the QCDOC
//! architecture buys, measured by switching it off.
//!
//! * EDRAM prefetch streams on/off;
//! * pass-through vs store-and-forward global operations;
//! * doubled vs single global link sets;
//! * three-in-the-air vs handshake-per-word link window;
//! * even/odd preconditioning on/off (the software-side counterpart).

use criterion::{criterion_group, criterion_main, Criterion};
use qcdoc_asic::clock::Clock;
use qcdoc_asic::edram::{EdramConfig, EdramController};
use qcdoc_lattice::eo::EoWilson;
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::solver::{solve_cgne, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;
use qcdoc_scu::global::GlobalTimingConfig;
use std::hint::black_box;

fn print_ablation_table() {
    eprintln!("\n=== ablations: what each design choice buys ===");

    // 1. EDRAM prefetch.
    let on = EdramController::new(EdramConfig::default());
    let off = EdramController::new(EdramConfig {
        prefetch: false,
        ..Default::default()
    });
    eprintln!(
        "EDRAM prefetch        : {:>6.1} B/cycle with, {:>5.1} without  ({:.1}x)",
        on.effective_bytes_per_cycle(2),
        off.effective_bytes_per_cycle(2),
        on.effective_bytes_per_cycle(2) / off.effective_bytes_per_cycle(2)
    );

    // 2/3. Global operations.
    let cfg = GlobalTimingConfig::default();
    let dims = [8usize, 8, 8, 16];
    let clock = Clock::DESIGN;
    let best = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, true, true));
    let no_double = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, false, true));
    let no_pass = clock.cycles_to_ns(cfg.global_sum_cycles(&dims, true, false));
    eprintln!(
        "global sum (8x8x8x16) : {:>6.2} us; single link set {:>5.2} us; store-and-forward {:>5.2} us",
        best / 1000.0,
        no_double / 1000.0,
        no_pass / 1000.0
    );

    // 4. Link window (handshakes for a 24-word message).
    eprintln!(
        "ack window            : 24-word message needs {} round trips at window 3, {} at window 1",
        24u64.div_ceil(3),
        24
    );
}

fn bench(c: &mut Criterion) {
    print_ablation_table();

    // 5. Even/odd preconditioning: measured iteration counts + wall time.
    let lat = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::hot(lat, 77);
    let b = FermionField::gaussian(lat, 78);
    let params = CgParams {
        tolerance: 1e-8,
        max_iterations: 4000,
    };
    let full_op = WilsonDirac::new(&gauge, 0.12);
    let mut x = FermionField::zero(lat);
    let full_iters = solve_cgne(&full_op, &mut x, &b, params).iterations;
    let eo = EoWilson::new(&gauge, 0.12);
    let eo_iters = eo.solve(&b, params).1.iterations;
    eprintln!(
        "even/odd precondition : {} CG iterations unpreconditioned, {} preconditioned",
        full_iters, eo_iters
    );

    let mut group = c.benchmark_group("ablation_eo_preconditioning");
    group.sample_size(10);
    group.bench_function("wilson_cg_full", |bch| {
        bch.iter(|| {
            let mut x = FermionField::zero(lat);
            black_box(solve_cgne(&full_op, &mut x, &b, params).iterations)
        })
    });
    group.bench_function("wilson_cg_eo", |bch| {
        bch.iter(|| black_box(eo.solve(&b, params).1.iterations))
    });
    group.finish();

    // Prefetch ablation as a measured loop.
    let mut group = c.benchmark_group("ablation_prefetch");
    for (label, prefetch) in [("on", true), ("off", false)] {
        group.bench_function(label, |bch| {
            bch.iter(|| {
                let mut ctl = EdramController::new(EdramConfig {
                    prefetch,
                    ..Default::default()
                });
                let mut a = 0u64;
                let mut bb = 0x100_000u64;
                let mut cycles = 0u64;
                for _ in 0..512 {
                    cycles += ctl.access(a, 128).count();
                    cycles += ctl.access(bb, 128).count();
                    a += 128;
                    bb += 128;
                }
                black_box(cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
