//! Shared helpers for the experiment benches (see DESIGN.md §4).
//!
//! Every overhead bench exports its measured numbers through one
//! [`BenchRun`], so all `BENCH_*.json` files carry the same schema stamp
//! (`qcdoc-telemetry-v2`), a bench name, real span-derived phase tables,
//! and histogram quantiles — the contract `bench-judge` gates on.

#![warn(missing_docs)]

use qcdoc_telemetry::{bench_summary_json, Histogram, MetricsRegistry, Span};
use std::time::Instant;

/// Minimum wall time of `f` over `reps` runs, in seconds. The minimum —
/// not the mean — is the noise-robust statistic for a deterministic
/// workload on a shared host.
pub fn min_seconds<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Time `cycles` runs of `f` and observe each wall time in microseconds
/// into a fresh [`Histogram`] — the distribution (not just the min) of a
/// repeated operation, so the judge can gate its tail.
pub fn time_histogram_us<F: FnMut()>(mut f: F, cycles: usize) -> Histogram {
    let mut h = Histogram::default();
    for _ in 0..cycles {
        let start = Instant::now();
        f();
        h.observe(start.elapsed().as_micros() as u64);
    }
    h
}

/// One bench's export in progress: a metrics registry, optional spans
/// (for the phase table), and the bench name the judge matches baselines
/// by. Dropping it without calling [`BenchRun::export`] writes nothing.
pub struct BenchRun {
    name: &'static str,
    /// Metrics to export — gauges, counters, histograms.
    pub reg: MetricsRegistry,
    spans: Vec<Span>,
}

impl BenchRun {
    /// A fresh export destined for `BENCH_<name>.json`.
    pub fn new(name: &'static str) -> BenchRun {
        BenchRun {
            name,
            reg: MetricsRegistry::new(),
            spans: Vec::new(),
        }
    }

    /// Set an unlabeled gauge.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.reg.gauge_set(name, &[], v);
    }

    /// Merge a histogram under `name` with one `load=<load>` label — the
    /// shape the judge's `:p99` gates key on.
    pub fn histogram(&mut self, name: &str, load: &str, h: &Histogram) {
        self.reg
            .histogram_merge(name, &[("load", load.to_string())], h);
    }

    /// Attach spans; the exporter derives the phase table from them.
    pub fn spans(&mut self, spans: Vec<Span>) {
        self.spans = spans;
    }

    /// Render the v2 JSON document without writing it.
    pub fn render(&self) -> String {
        bench_summary_json(self.name, &self.reg, &self.spans)
    }

    /// Write `BENCH_<name>.json` at the workspace root (where verify.sh
    /// and `bench-judge --current .` look for it).
    pub fn export(&self) {
        let json = self.render();
        let path = format!(
            "{}/../../BENCH_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            self.name
        );
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("write BENCH_{}.json: {e}", self.name));
        println!("Wrote BENCH_{}.json ({} bytes)", self.name, json.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_renders_v2_with_name_and_histogram() {
        let mut run = BenchRun::new("selftest");
        run.gauge("ratio", 1.25);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(200);
        run.histogram("lat_us", "empty", &h);
        let json = run.render();
        assert!(
            json.contains("\"schema\": \"qcdoc-telemetry-v2\""),
            "{json}"
        );
        assert!(json.contains("\"bench\": \"selftest\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        assert!(json.contains("\"load\": \"empty\""), "{json}");
    }

    #[test]
    fn time_histogram_counts_every_cycle() {
        let mut n = 0u64;
        let h = time_histogram_us(|| n += 1, 17);
        assert_eq!(h.count(), 17);
        assert_eq!(n, 17);
    }

    #[test]
    fn min_seconds_is_finite_and_positive() {
        let s = min_seconds(
            || {
                std::hint::black_box(1 + 1);
            },
            3,
        );
        assert!(s.is_finite() && s >= 0.0);
    }
}
