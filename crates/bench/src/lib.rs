//! Shared helpers for the experiment benches (see DESIGN.md §4).
