//! The clover-improved Wilson operator — the best performer of the §4
//! benchmarks (46.5% of peak).
//!
//! `M = A(x) − κ D_hop`, where the clover term
//! `A(x) = 1 + (c_sw κ / 2) Σ_{μ<ν} σ_μν F_μν(x)` removes the O(a)
//! discretization error. `F_μν` is the traceless anti-Hermitian part of the
//! four "clover leaf" plaquettes around the site. Because σ_μν commutes
//! with γ₅ in the chiral basis, `A` is block-diagonal in chirality: two
//! Hermitian 6×6 (spin⊗color) blocks per site, which is also how real
//! clover codes store and apply it.

use crate::complex::{Complex, C64};
use crate::field::{FermionField, GaugeField, Lattice};
use crate::gamma::sigma;
use crate::real::Real;
use crate::su3::Su3;
use crate::wilson::WilsonDirac;

/// One site's clover term: Hermitian 6×6 blocks for the two chiralities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloverSite<T: Real = f64> {
    /// Upper-chirality block (spins 0, 1).
    pub upper: [[Complex<T>; 6]; 6],
    /// Lower-chirality block (spins 2, 3).
    pub lower: [[Complex<T>; 6]; 6],
}

impl<T: Real> CloverSite<T> {
    fn identity() -> CloverSite<T> {
        let mut b = [[Complex::ZERO; 6]; 6];
        for (i, row) in b.iter_mut().enumerate() {
            row[i] = Complex::ONE;
        }
        CloverSite { upper: b, lower: b }
    }
}

/// The field-strength tensor at `x` in the (μ,ν) plane from the four
/// clover leaves: `F = (Q − Q†)/8` with the trace removed, where `Q` is
/// the sum of the four plaquette loops around `x`.
pub fn clover_field_strength<T: Real>(
    gauge: &GaugeField<T>,
    x: usize,
    mu: usize,
    nu: usize,
) -> Su3<T> {
    let lat = gauge.lattice();
    let xpm = lat.neighbour(x, mu, true);
    let xpn = lat.neighbour(x, nu, true);
    let xmm = lat.neighbour(x, mu, false);
    let xmn = lat.neighbour(x, nu, false);
    let xpm_mn = lat.neighbour(xpm, nu, false);
    let xmm_pn = lat.neighbour(xmm, nu, true);
    let xmm_mn = lat.neighbour(xmm, nu, false);

    let u = |s: usize, d: usize| *gauge.link(s, d);

    // Leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x.
    let q1 = u(x, mu) * u(xpm, nu) * u(xpn, mu).adjoint() * u(x, nu).adjoint();
    // Leaf 2: x -> x+nu -> x-mu+nu -> x-mu -> x.
    let q2 = u(x, nu) * u(xmm_pn, mu).adjoint() * u(xmm, nu).adjoint() * u(xmm, mu);
    // Leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x.
    let q3 = u(xmm, mu).adjoint() * u(xmm_mn, nu).adjoint() * u(xmm_mn, mu) * u(xmn, nu);
    // Leaf 4: x -> x-nu -> x+mu-nu -> x+mu -> x.
    let q4 = u(xmn, nu).adjoint() * u(xmn, mu) * u(xpm_mn, nu) * u(x, mu).adjoint();

    let q = q1 + q2 + q3 + q4;
    let anti = q - q.adjoint();
    // Remove the trace and scale by 1/8.
    let tr = anti.trace() * T::from_f64(1.0 / 3.0);
    let mut f = anti.scale(Complex::real(T::from_f64(0.125)));
    for d in 0..3 {
        f.0[d][d] -= tr * T::from_f64(0.125);
    }
    f
}

/// The clover Dirac operator with precomputed per-site clover blocks.
///
/// Generic over the [`Real`] scalar: at `f32` the clover blocks are built
/// from the single-precision gauge field with the same operation sequence,
/// so the term is a deterministic function of the truncated links.
#[derive(Debug, Clone)]
pub struct CloverDirac<'a, T: Real = f64> {
    wilson: WilsonDirac<'a, T>,
    terms: Vec<CloverSite<T>>,
    csw: f64,
}

impl<'a, T: Real> CloverDirac<'a, T> {
    /// Build with hopping parameter `kappa` and clover coefficient `csw`
    /// (tree level: 1.0).
    pub fn new(gauge: &'a GaugeField<T>, kappa: f64, csw: f64) -> CloverDirac<'a, T> {
        let lat = gauge.lattice();
        let coeff = T::from_f64(csw * kappa * 0.5);
        let mut terms = Vec::with_capacity(lat.volume());
        for x in lat.sites() {
            let mut site = CloverSite::identity();
            for mu in 0..4 {
                for nu in (mu + 1)..4 {
                    let f = clover_field_strength(gauge, x, mu, nu);
                    let s = sigma(mu, nu);
                    // sigma is block diagonal: upper 2x2 (spins 0,1) and
                    // lower 2x2 (spins 2,3).
                    for s1 in 0..2 {
                        for s2 in 0..2 {
                            for c1 in 0..3 {
                                for c2 in 0..3 {
                                    // F is anti-Hermitian; i*sigma*F... the
                                    // Hermitian combination is sigma ⊗ (i F)
                                    // since sigma is Hermitian and iF is
                                    // Hermitian.
                                    let v =
                                        Complex::from_c64(s[s1][s2]) * f.0[c1][c2].mul_i() * coeff;
                                    site.upper[3 * s1 + c1][3 * s2 + c2] += v;
                                    let vl = Complex::from_c64(s[s1 + 2][s2 + 2])
                                        * f.0[c1][c2].mul_i()
                                        * coeff;
                                    site.lower[3 * s1 + c1][3 * s2 + c2] += vl;
                                }
                            }
                        }
                    }
                }
            }
            terms.push(site);
        }
        CloverDirac {
            wilson: WilsonDirac::new(gauge, kappa),
            terms,
            csw,
        }
    }

    /// The clover coefficient.
    pub fn csw(&self) -> f64 {
        self.csw
    }

    /// The lattice.
    pub fn lattice(&self) -> Lattice {
        self.wilson.gauge().lattice()
    }

    /// The per-site clover blocks (exposed for tests and ledgers).
    pub fn site_term(&self, x: usize) -> &CloverSite<T> {
        &self.terms[x]
    }

    /// Apply the clover term alone: `out = A inp`.
    pub fn apply_clover_term(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        let lat = self.lattice();
        for x in lat.sites() {
            let t = &self.terms[x];
            let s = inp.site(x);
            let mut o = crate::spinor::Spinor::ZERO;
            for row in 0..6 {
                let (rs, rc) = (row / 3, row % 3);
                let mut up = Complex::ZERO;
                let mut lo = Complex::ZERO;
                for col in 0..6 {
                    let (cs, cc) = (col / 3, col % 3);
                    up = up.madd(t.upper[row][col], s.0[cs].0[cc]);
                    lo = lo.madd(t.lower[row][col], s.0[cs + 2].0[cc]);
                }
                o.0[rs].0[rc] = up;
                o.0[rs + 2].0[rc] = lo;
            }
            *out.site_mut(x) = o;
        }
    }

    /// Apply the full operator: `out = A inp − κ D inp`.
    pub fn apply(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        let lat = self.lattice();
        let mut hop = FermionField::zero(lat);
        self.wilson.dslash(&mut hop, inp);
        self.apply_clover_term(out, inp);
        let mk = C64::real(-self.wilson.kappa());
        out.axpy(mk, &hop);
    }

    /// `M† = γ₅ M γ₅` (the clover term commutes with γ₅).
    pub fn apply_dagger(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        let lat = self.lattice();
        let mut tmp = FermionField::zero(lat);
        for x in lat.sites() {
            *tmp.site_mut(x) = inp.site(x).apply_gamma5();
        }
        self.apply(out, &tmp);
        for x in lat.sites() {
            let g = out.site(x).apply_gamma5();
            *out.site_mut(x) = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::new([4, 4, 2, 2])
    }

    #[test]
    fn field_strength_vanishes_on_unit_links() {
        let gauge: GaugeField = GaugeField::unit(lat());
        for mu in 0..4 {
            for nu in (mu + 1)..4 {
                let f = clover_field_strength(&gauge, 0, mu, nu);
                assert!(f.distance(&Su3::ZERO) < 1e-14);
            }
        }
    }

    #[test]
    fn field_strength_is_antihermitian_traceless() {
        let gauge = GaugeField::hot(lat(), 5);
        for x in [0, 7, 13] {
            for mu in 0..4 {
                for nu in (mu + 1)..4 {
                    let f = clover_field_strength(&gauge, x, mu, nu);
                    assert!((f + f.adjoint()).distance(&Su3::ZERO) < 1e-12);
                    assert!(f.trace().abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn clover_blocks_are_hermitian() {
        let gauge = GaugeField::hot(lat(), 6);
        let d = CloverDirac::new(&gauge, 0.12, 1.0);
        for x in [0, 3, 11] {
            let t = d.site_term(x);
            for r in 0..6 {
                for c in 0..6 {
                    assert!((t.upper[r][c] - t.upper[c][r].conj()).abs() < 1e-12);
                    assert!((t.lower[r][c] - t.lower[c][r].conj()).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn reduces_to_wilson_on_unit_links() {
        // F = 0 on the free field, so A = 1 and clover == Wilson.
        let gauge = GaugeField::unit(lat());
        let dc = CloverDirac::new(&gauge, 0.11, 1.0);
        let dw = WilsonDirac::new(&gauge, 0.11);
        let inp = FermionField::gaussian(lat(), 9);
        let mut oc = FermionField::zero(lat());
        let mut ow = FermionField::zero(lat());
        dc.apply(&mut oc, &inp);
        dw.apply(&mut ow, &inp);
        for x in lat().sites() {
            for s in 0..4 {
                for c in 0..3 {
                    assert!((oc.site(x).0[s].0[c] - ow.site(x).0[s].0[c]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn reduces_to_wilson_at_csw_zero() {
        let gauge = GaugeField::hot(lat(), 12);
        let dc = CloverDirac::new(&gauge, 0.1, 0.0);
        let dw = WilsonDirac::new(&gauge, 0.1);
        let inp = FermionField::gaussian(lat(), 13);
        let mut oc = FermionField::zero(lat());
        let mut ow = FermionField::zero(lat());
        dc.apply(&mut oc, &inp);
        dw.apply(&mut ow, &inp);
        for x in lat().sites() {
            for s in 0..4 {
                for c in 0..3 {
                    assert!((oc.site(x).0[s].0[c] - ow.site(x).0[s].0[c]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn gamma5_hermiticity() {
        let gauge = GaugeField::hot(lat(), 21);
        let d = CloverDirac::new(&gauge, 0.13, 1.2);
        let u = FermionField::gaussian(lat(), 22);
        let v = FermionField::gaussian(lat(), 23);
        let mut mv = FermionField::zero(lat());
        d.apply(&mut mv, &v);
        let mut mdag_u = FermionField::zero(lat());
        d.apply_dagger(&mut mdag_u, &u);
        let a = u.dot(&mv);
        let b = mdag_u.dot(&v);
        assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn clover_term_alone_is_hermitian_operator() {
        let gauge = GaugeField::hot(lat(), 25);
        let d = CloverDirac::new(&gauge, 0.1, 1.0);
        let u = FermionField::gaussian(lat(), 26);
        let v = FermionField::gaussian(lat(), 27);
        let mut av = FermionField::zero(lat());
        d.apply_clover_term(&mut av, &v);
        let mut au = FermionField::zero(lat());
        d.apply_clover_term(&mut au, &u);
        let x = u.dot(&av);
        let y = au.dot(&v);
        assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
    }
}
