//! AoSoA lane-blocked field layouts and the SIMD Wilson hot path.
//!
//! The scalar kernels in [`crate::wilson`] store one `Spinor` per site
//! (array-of-structures). That layout makes a complex multiply a shuffle
//! festival for the vectorizer: the real and imaginary parts it wants in
//! separate registers are interleaved in memory, and EXPERIMENTS.md E11
//! measured the consequence — scalar f32 ran at 0.68× the *f64* kernel,
//! because the narrower lanes bought nothing while the shuffles cost the
//! same.
//!
//! This module fixes the layout instead of the instruction mix. Fields are
//! re-blocked **AoSoA** — array of structures of arrays — over groups of
//! [`LANES`] consecutive sites:
//!
//! ```text
//! FermionBlocks  [block][spin 4][color 3]{ re[LANES], im[LANES] }
//! GaugeBlocks    [block][mu 4][row 3][col 3]{ re[LANES], im[LANES] }
//! ```
//!
//! Within a block, the same (spin, color) component of [`LANES`] sites is
//! contiguous, reals separated from imaginaries. Every algebraic step of
//! the Dslash then becomes [`LANES`] independent copies of the identical
//! scalar recurrence with **no intra-vector shuffles**, which the
//! autovectorizer turns into plain packed mul/add — and packed f32 finally
//! earns its 2× lane advantage over f64.
//!
//! **Bit-compatibility contract.** The resilience stack (ABFT checksums,
//! exact-bits checkpoints, the §4 reproducibility story) requires kernels
//! to produce identical bits regardless of execution strategy. Every lane
//! of every [`LaneComplex`] op executes *exactly* the operation sequence of
//! the corresponding scalar [`Complex`] op — same
//! madd decomposition, same accumulation order over mu/spin/color — so
//! [`dslash_aosoa`] and [`WilsonDirac::dslash`](crate::wilson::WilsonDirac)
//! agree bit-for-bit at each precision, and the layout converters are pure
//! data movement. Tests below assert both.

use crate::complex::{Complex, C64};
use crate::field::{FermionField, GaugeField, Lattice, NeighbourTable};
use crate::gamma::GAMMA;
use crate::real::Real;
use crate::spinor::ProjSign;

/// Sites per AoSoA block. Eight f32 values fill one AVX2 register; for
/// f64 a block spans two registers, which costs nothing extra — the loop
/// body is lane-count agnostic.
pub const LANES: usize = 8;

/// [`LANES`] complex numbers with all real parts contiguous, then all
/// imaginary parts — the unit of AoSoA storage.
///
/// Each method is a lane loop whose body is the exact scalar
/// [`Complex`] formula, so per-lane results are
/// bit-identical to the scalar stack at both precisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneComplex<T: Real = f64> {
    /// Real parts, one per lane.
    pub re: [T; LANES],
    /// Imaginary parts, one per lane.
    pub im: [T; LANES],
}

impl<T: Real> LaneComplex<T> {
    /// All lanes zero.
    pub const ZERO: LaneComplex<T> = LaneComplex {
        re: [T::ZERO; LANES],
        im: [T::ZERO; LANES],
    };

    /// Lane-wise `self + a * b` in the scalar `madd` decomposition
    /// (broadcast-form complex FMA — see
    /// [`Complex::madd`](crate::complex::Complex::madd)).
    #[inline(always)]
    pub fn madd(&self, a: &LaneComplex<T>, b: &LaneComplex<T>) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            let t_re = self.re[l] + a.re[l] * b.re[l];
            let t_im = self.im[l] + a.re[l] * b.im[l];
            out.re[l] = t_re + a.im[l] * (-b.im[l]);
            out.im[l] = t_im + a.im[l] * b.re[l];
        }
        out
    }

    /// Lane-wise `self + a * b` with a uniform (broadcast) `a` — the shape
    /// of the κ-recurrence in the Wilson operator.
    #[inline(always)]
    pub fn madd_broadcast(&self, a: Complex<T>, b: &LaneComplex<T>) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            let t_re = self.re[l] + a.re * b.re[l];
            let t_im = self.im[l] + a.re * b.im[l];
            out.re[l] = t_re + a.im * (-b.im[l]);
            out.im[l] = t_im + a.im * b.re[l];
        }
        out
    }

    /// Lane-wise product with a uniform complex factor, in the scalar
    /// `Mul` operand order (`self * s`).
    #[inline(always)]
    pub fn mul_broadcast(&self, s: Complex<T>) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            out.re[l] = self.re[l] * s.re - self.im[l] * s.im;
            out.im[l] = self.re[l] * s.im + self.im[l] * s.re;
        }
        out
    }

    /// Lane-wise conjugate.
    #[inline(always)]
    pub fn conj(&self) -> LaneComplex<T> {
        let mut out = *self;
        for l in 0..LANES {
            out.im[l] = -out.im[l];
        }
        out
    }

    /// Lane-wise addition.
    #[inline(always)]
    pub fn add(&self, rhs: &LaneComplex<T>) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            out.re[l] = self.re[l] + rhs.re[l];
            out.im[l] = self.im[l] + rhs.im[l];
        }
        out
    }

    /// Lane-wise subtraction.
    #[inline(always)]
    pub fn sub(&self, rhs: &LaneComplex<T>) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            out.re[l] = self.re[l] - rhs.re[l];
            out.im[l] = self.im[l] - rhs.im[l];
        }
        out
    }

    /// Lane-wise negation.
    #[inline(always)]
    pub fn neg(&self) -> LaneComplex<T> {
        let mut out = LaneComplex::ZERO;
        for l in 0..LANES {
            out.re[l] = -self.re[l];
            out.im[l] = -self.im[l];
        }
        out
    }
}

fn assert_blockable(lat: Lattice) -> usize {
    let vol = lat.volume();
    assert!(
        vol.is_multiple_of(LANES),
        "AoSoA layout needs volume divisible by {LANES} sites, got {vol} \
         (dims {:?})",
        lat.dims()
    );
    vol / LANES
}

/// A fermion field re-blocked into the AoSoA layout.
///
/// Conversion is pure data movement — bits survive a round trip exactly,
/// at either precision:
///
/// ```
/// use qcdoc_lattice::aosoa::FermionBlocks;
/// use qcdoc_lattice::field::{FermionField, Lattice};
///
/// let lat = Lattice::new([4, 2, 2, 2]);
/// let psi = FermionField::gaussian(lat, 7);
/// let blocks = FermionBlocks::from_field(&psi);
/// assert_eq!(blocks.to_field().fingerprint(), psi.fingerprint());
///
/// let lo = psi.to_f32();
/// let back = FermionBlocks::from_field(&lo).to_field();
/// assert_eq!(back, lo);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FermionBlocks<T: Real = f64> {
    lat: Lattice,
    /// `[block][spin 4][color 3]` lane groups.
    data: Vec<LaneComplex<T>>,
}

impl<T: Real> FermionBlocks<T> {
    /// Re-block an AoS fermion field. Panics unless the volume is a
    /// multiple of [`LANES`].
    pub fn from_field(f: &FermionField<T>) -> FermionBlocks<T> {
        let lat = f.lattice();
        let blocks = assert_blockable(lat);
        let mut data = vec![LaneComplex::ZERO; blocks * 12];
        for x in lat.sites() {
            let (b, l) = (x / LANES, x % LANES);
            for s in 0..4 {
                for c in 0..3 {
                    let z = f.site(x).0[s].0[c];
                    let slot = &mut data[(b * 4 + s) * 3 + c];
                    slot.re[l] = z.re;
                    slot.im[l] = z.im;
                }
            }
        }
        FermionBlocks { lat, data }
    }

    /// The zero field in block layout.
    pub fn zero(lat: Lattice) -> FermionBlocks<T> {
        let blocks = assert_blockable(lat);
        FermionBlocks {
            lat,
            data: vec![LaneComplex::ZERO; blocks * 12],
        }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Scatter back to the AoS layout — the exact inverse of
    /// [`FermionBlocks::from_field`].
    pub fn to_field(&self) -> FermionField<T> {
        let mut f = FermionField::zero(self.lat);
        for x in self.lat.sites() {
            let (b, l) = (x / LANES, x % LANES);
            for s in 0..4 {
                for c in 0..3 {
                    let slot = &self.data[(b * 4 + s) * 3 + c];
                    f.site_mut(x).0[s].0[c] = Complex::new(slot.re[l], slot.im[l]);
                }
            }
        }
        f
    }
}

/// A gauge field re-blocked into the AoSoA layout.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeBlocks<T: Real = f64> {
    lat: Lattice,
    /// `[block][mu 4][row 3][col 3]` lane groups.
    data: Vec<LaneComplex<T>>,
}

impl<T: Real> GaugeBlocks<T> {
    /// Re-block an AoS gauge field. Panics unless the volume is a
    /// multiple of [`LANES`].
    pub fn from_field(g: &GaugeField<T>) -> GaugeBlocks<T> {
        let lat = g.lattice();
        let blocks = assert_blockable(lat);
        let mut data = vec![LaneComplex::ZERO; blocks * 36];
        for x in lat.sites() {
            let (b, l) = (x / LANES, x % LANES);
            for mu in 0..4 {
                for r in 0..3 {
                    for c in 0..3 {
                        let z = g.link(x, mu).0[r][c];
                        let slot = &mut data[((b * 4 + mu) * 3 + r) * 3 + c];
                        slot.re[l] = z.re;
                        slot.im[l] = z.im;
                    }
                }
            }
        }
        GaugeBlocks { lat, data }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Scatter back to the AoS layout — the exact inverse of
    /// [`GaugeBlocks::from_field`].
    pub fn to_field(&self) -> GaugeField<T> {
        let mut g = GaugeField::unit(self.lat);
        for x in self.lat.sites() {
            let (b, l) = (x / LANES, x % LANES);
            for mu in 0..4 {
                for r in 0..3 {
                    for c in 0..3 {
                        let slot = &self.data[((b * 4 + mu) * 3 + r) * 3 + c];
                        g.link_mut(x, mu).0[r][c] = Complex::new(slot.re[l], slot.im[l]);
                    }
                }
            }
        }
        g
    }
}

/// A lane-blocked half-spinor: 2 spins × 3 colors of lane groups.
type LaneHalf<T> = [[LaneComplex<T>; 3]; 2];
/// A lane-blocked full spinor: 4 spins × 3 colors of lane groups.
type LaneSpinor<T> = [[LaneComplex<T>; 3]; 4];

/// Lane-wise `(1 ∓ γ_μ)` projection — the scalar
/// [`Spinor::project`](crate::spinor::Spinor::project) per lane.
#[inline(always)]
fn project_lanes<T: Real>(psi: &LaneSpinor<T>, mu: usize, sign: ProjSign) -> LaneHalf<T> {
    let g = &GAMMA[mu];
    let mut h = [[LaneComplex::ZERO; 3]; 2];
    for s in 0..2 {
        let phase = Complex::from_c64(g.phase[s]);
        for c in 0..3 {
            let gpart = psi[g.col[s]][c].mul_broadcast(phase);
            h[s][c] = match sign {
                ProjSign::Minus => psi[s][c].sub(&gpart),
                ProjSign::Plus => psi[s][c].add(&gpart),
            };
        }
    }
    h
}

/// Lane-wise reconstruction and accumulation: `acc += reconstruct(h)` in
/// the scalar operation order
/// ([`Spinor::reconstruct`](crate::spinor::Spinor::reconstruct) followed by
/// the spinor `+=`).
#[inline(always)]
fn accumulate_reconstruct<T: Real>(
    acc: &mut LaneSpinor<T>,
    h: &LaneHalf<T>,
    mu: usize,
    sign: ProjSign,
) {
    let g = &GAMMA[mu];
    for c in 0..3 {
        acc[0][c] = acc[0][c].add(&h[0][c]);
        acc[1][c] = acc[1][c].add(&h[1][c]);
    }
    for r in 2..4 {
        let phase = Complex::from_c64(g.phase[r]);
        for c in 0..3 {
            let src = h[g.col[r]][c].mul_broadcast(phase);
            let signed = match sign {
                ProjSign::Minus => src.neg(),
                ProjSign::Plus => src,
            };
            acc[r][c] = acc[r][c].add(&signed);
        }
    }
}

/// Gather the full spinors of the `mu`-neighbours (forward or backward) of
/// a block's [`LANES`] sites into lane-major temporaries.
#[inline(always)]
fn gather_neighbour_spinor<T: Real>(
    inp: &FermionBlocks<T>,
    hops: &NeighbourTable,
    base: usize,
    mu: usize,
    forward: bool,
) -> LaneSpinor<T> {
    // Index loops mirror the scalar kernel's traversal order exactly.
    #![allow(clippy::needless_range_loop)]
    let mut out = [[LaneComplex::ZERO; 3]; 4];
    for l in 0..LANES {
        let nb = if forward {
            hops.fwd(base + l, mu)
        } else {
            hops.bwd(base + l, mu)
        };
        let (nb_b, nb_l) = (nb / LANES, nb % LANES);
        for s in 0..4 {
            for c in 0..3 {
                let src = &inp.data[(nb_b * 4 + s) * 3 + c];
                out[s][c].re[l] = src.re[nb_l];
                out[s][c].im[l] = src.im[nb_l];
            }
        }
    }
    out
}

/// Gather the `mu`-links *at the backward neighbours* of a block's sites
/// (the `U†_μ(x−μ̂)` operand, which lives in the neighbour's block).
#[inline(always)]
fn gather_backward_links<T: Real>(
    gauge: &GaugeBlocks<T>,
    hops: &NeighbourTable,
    base: usize,
    mu: usize,
) -> [[LaneComplex<T>; 3]; 3] {
    #![allow(clippy::needless_range_loop)]
    let mut out = [[LaneComplex::ZERO; 3]; 3];
    for l in 0..LANES {
        let xb = hops.bwd(base + l, mu);
        let (bb, bl) = (xb / LANES, xb % LANES);
        for r in 0..3 {
            for c in 0..3 {
                let src = &gauge.data[((bb * 4 + mu) * 3 + r) * 3 + c];
                out[r][c].re[l] = src.re[bl];
                out[r][c].im[l] = src.im[bl];
            }
        }
    }
    out
}

/// Lane-wise paired SU(3) products `(U h₀, U h₁)` sharing one matrix
/// traversal — the scalar [`Su3::mul_vec2`](crate::su3::Su3::mul_vec2)
/// recurrence per lane. `adjoint` selects the `U†` variant
/// ([`Su3::adj_mul_vec2`](crate::su3::Su3::adj_mul_vec2)).
#[inline(always)]
fn mul_su3_lanes<T: Real>(
    u: &[[LaneComplex<T>; 3]; 3],
    h: &LaneHalf<T>,
    adjoint: bool,
) -> LaneHalf<T> {
    let mut out = [[LaneComplex::ZERO; 3]; 2];
    for r in 0..3 {
        let mut acc_a = LaneComplex::ZERO;
        let mut acc_b = LaneComplex::ZERO;
        for c in 0..3 {
            let m = if adjoint { u[c][r].conj() } else { u[r][c] };
            acc_a = acc_a.madd(&m, &h[0][c]);
            acc_b = acc_b.madd(&m, &h[1][c]);
        }
        out[0][r] = acc_a;
        out[1][r] = acc_b;
    }
    out
}

/// The Wilson hopping term on AoSoA-blocked fields — bit-identical per
/// precision to [`WilsonDirac::dslash`](crate::wilson::WilsonDirac::dslash)
/// on the corresponding AoS fields, but with every algebraic step running
/// [`LANES`] sites wide.
pub fn dslash_aosoa<T: Real>(
    out: &mut FermionBlocks<T>,
    gauge: &GaugeBlocks<T>,
    inp: &FermionBlocks<T>,
    hops: &NeighbourTable,
) {
    #![allow(clippy::needless_range_loop)]
    let lat = gauge.lat;
    assert_eq!(inp.lat, lat);
    assert_eq!(out.lat, lat);
    let blocks = lat.volume() / LANES;
    for b in 0..blocks {
        let base = b * LANES;
        let mut acc: LaneSpinor<T> = [[LaneComplex::ZERO; 3]; 4];
        for mu in 0..4 {
            // Forward: U_mu(x) (1-gamma_mu) psi(x+mu). The link is this
            // block's own, already lane-major.
            let nf = gather_neighbour_spinor(inp, hops, base, mu, true);
            let hf = project_lanes(&nf, mu, ProjSign::Minus);
            let mut uf = [[LaneComplex::ZERO; 3]; 3];
            for r in 0..3 {
                for c in 0..3 {
                    uf[r][c] = gauge.data[((b * 4 + mu) * 3 + r) * 3 + c];
                }
            }
            let hf = mul_su3_lanes(&uf, &hf, false);
            accumulate_reconstruct(&mut acc, &hf, mu, ProjSign::Minus);
            // Backward: U_mu(x-mu)^dag (1+gamma_mu) psi(x-mu). Both the
            // spinor and the link live in the neighbour's block.
            let nb = gather_neighbour_spinor(inp, hops, base, mu, false);
            let hb = project_lanes(&nb, mu, ProjSign::Plus);
            let ub = gather_backward_links(gauge, hops, base, mu);
            let hb = mul_su3_lanes(&ub, &hb, true);
            accumulate_reconstruct(&mut acc, &hb, mu, ProjSign::Plus);
        }
        for s in 0..4 {
            for c in 0..3 {
                out.data[(b * 4 + s) * 3 + c] = acc[s][c];
            }
        }
    }
}

/// The full Wilson operator `M = 1 − κ D` on AoSoA fields — bit-identical
/// per precision to [`WilsonDirac::apply`](crate::wilson::WilsonDirac::apply).
pub fn wilson_apply_aosoa<T: Real>(
    out: &mut FermionBlocks<T>,
    gauge: &GaugeBlocks<T>,
    inp: &FermionBlocks<T>,
    hops: &NeighbourTable,
    kappa: f64,
) {
    dslash_aosoa(out, gauge, inp, hops);
    let mk = Complex::from_c64(C64::real(-kappa));
    for (o, i) in out.data.iter_mut().zip(inp.data.iter()) {
        *o = i.madd_broadcast(mk, o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wilson::WilsonDirac;

    fn shapes() -> Vec<Lattice> {
        vec![
            Lattice::new([2, 2, 2, 2]),
            Lattice::new([4, 2, 2, 2]),
            Lattice::new([4, 4, 2, 2]),
            Lattice::new([8, 1, 1, 1]),
        ]
    }

    #[test]
    fn fermion_roundtrip_is_bit_exact_both_precisions() {
        for (seed, lat) in shapes().into_iter().enumerate() {
            let psi = FermionField::gaussian(lat, seed as u64 + 1);
            let back = FermionBlocks::from_field(&psi).to_field();
            assert_eq!(back.fingerprint(), psi.fingerprint(), "{:?}", lat.dims());
            let lo = psi.to_f32();
            let back32 = FermionBlocks::from_field(&lo).to_field();
            assert_eq!(back32, lo, "{:?} f32", lat.dims());
        }
    }

    #[test]
    fn gauge_roundtrip_is_bit_exact_both_precisions() {
        for (seed, lat) in shapes().into_iter().enumerate() {
            let g = GaugeField::hot(lat, seed as u64 + 10);
            let back = GaugeBlocks::from_field(&g).to_field();
            assert_eq!(back.fingerprint(), g.fingerprint(), "{:?}", lat.dims());
            let lo = g.to_f32();
            let back32 = GaugeBlocks::from_field(&lo).to_field();
            assert_eq!(back32, lo, "{:?} f32", lat.dims());
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_volume_is_rejected() {
        let lat = Lattice::new([3, 1, 1, 1]);
        FermionBlocks::<f64>::zero(lat);
    }

    fn assert_fields_bit_equal<T: Real>(a: &FermionField<T>, b: &FermionField<T>, what: &str) {
        for x in a.lattice().sites() {
            for s in 0..4 {
                for c in 0..3 {
                    let za = a.site(x).0[s].0[c];
                    let zb = b.site(x).0[s].0[c];
                    assert_eq!(za.re.bits64(), zb.re.bits64(), "{what} x={x} s={s} c={c}");
                    assert_eq!(za.im.bits64(), zb.im.bits64(), "{what} x={x} s={s} c={c}");
                }
            }
        }
    }

    #[test]
    fn dslash_matches_scalar_kernel_bitwise_f64() {
        for (seed, lat) in shapes().into_iter().enumerate() {
            let gauge = GaugeField::hot(lat, seed as u64 + 40);
            let psi = FermionField::gaussian(lat, seed as u64 + 41);
            let d = WilsonDirac::new(&gauge, 0.124);
            let mut scalar = FermionField::zero(lat);
            d.dslash(&mut scalar, &psi);

            let gb = GaugeBlocks::from_field(&gauge);
            let pb = FermionBlocks::from_field(&psi);
            let mut ob = FermionBlocks::zero(lat);
            let hops = NeighbourTable::new(lat);
            dslash_aosoa(&mut ob, &gb, &pb, &hops);
            assert_fields_bit_equal(&ob.to_field(), &scalar, "dslash f64");
        }
    }

    #[test]
    fn dslash_matches_scalar_kernel_bitwise_f32() {
        for (seed, lat) in shapes().into_iter().enumerate() {
            let gauge = GaugeField::hot(lat, seed as u64 + 50).to_f32();
            let psi = FermionField::gaussian(lat, seed as u64 + 51).to_f32();
            let d = WilsonDirac::new(&gauge, 0.124);
            let mut scalar = FermionField::zero(lat);
            d.dslash(&mut scalar, &psi);

            let gb = GaugeBlocks::from_field(&gauge);
            let pb = FermionBlocks::from_field(&psi);
            let mut ob = FermionBlocks::zero(lat);
            let hops = NeighbourTable::new(lat);
            dslash_aosoa(&mut ob, &gb, &pb, &hops);
            assert_fields_bit_equal(&ob.to_field(), &scalar, "dslash f32");
        }
    }

    #[test]
    fn wilson_apply_matches_scalar_kernel_bitwise_both_precisions() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(lat, 60);
        let psi = FermionField::gaussian(lat, 61);
        let hops = NeighbourTable::new(lat);
        let kappa = 0.117;

        let d = WilsonDirac::new(&gauge, kappa);
        let mut scalar = FermionField::zero(lat);
        d.apply(&mut scalar, &psi);
        let mut ob = FermionBlocks::zero(lat);
        wilson_apply_aosoa(
            &mut ob,
            &GaugeBlocks::from_field(&gauge),
            &FermionBlocks::from_field(&psi),
            &hops,
            kappa,
        );
        assert_fields_bit_equal(&ob.to_field(), &scalar, "apply f64");

        let gauge32 = gauge.to_f32();
        let psi32 = psi.to_f32();
        let d32 = WilsonDirac::new(&gauge32, kappa);
        let mut scalar32 = FermionField::zero(lat);
        d32.apply(&mut scalar32, &psi32);
        let mut ob32 = FermionBlocks::zero(lat);
        wilson_apply_aosoa(
            &mut ob32,
            &GaugeBlocks::from_field(&gauge32),
            &FermionBlocks::from_field(&psi32),
            &hops,
            kappa,
        );
        assert_fields_bit_equal(&ob32.to_field(), &scalar32, "apply f32");
    }

    #[test]
    fn lane_complex_ops_match_scalar_complex_bitwise() {
        // Randomised per-lane cross-check of every LaneComplex op against
        // the scalar Complex it mirrors.
        use crate::rng::SiteRng;
        let mut rng = SiteRng::new(99, 7);
        let mut mk = |_: usize| {
            let mut lc = LaneComplex::<f64>::ZERO;
            for l in 0..LANES {
                lc.re[l] = rng.normal();
                lc.im[l] = rng.normal();
            }
            lc
        };
        let (a, b, c) = (mk(0), mk(1), mk(2));
        let s = Complex::new(0.7, -1.3);
        for l in 0..LANES {
            let za = Complex::new(a.re[l], a.im[l]);
            let zb = Complex::new(b.re[l], b.im[l]);
            let zc = Complex::new(c.re[l], c.im[l]);
            let pairs: Vec<(Complex<f64>, LaneComplex<f64>)> = vec![
                (za.madd(zb, zc), a.madd(&b, &c)),
                (za.madd(s, zb), a.madd_broadcast(s, &b)),
                (za * s, a.mul_broadcast(s)),
                (za.conj(), a.conj()),
                (za + zb, a.add(&b)),
                (za - zb, a.sub(&b)),
                (-za, a.neg()),
            ];
            for (i, (scalar, lanes)) in pairs.iter().enumerate() {
                assert_eq!(
                    scalar.re.to_bits(),
                    lanes.re[l].to_bits(),
                    "op {i} lane {l}"
                );
                assert_eq!(
                    scalar.im.to_bits(),
                    lanes.im[l].to_bits(),
                    "op {i} lane {l}"
                );
            }
        }
    }
}
