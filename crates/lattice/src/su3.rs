//! SU(3) matrices — the gauge links of lattice QCD.

use crate::colorvec::ColorVec;
use crate::complex::{Complex, C64};
use crate::real::Real;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A 3×3 complex matrix, usually (but not necessarily) in SU(3), over a
/// [`Real`] component type (default `f64`).
///
/// Row-major storage: `m[row][col]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Su3<T: Real = f64>(pub [[Complex<T>; 3]; 3]);

impl<T: Real> Default for Su3<T> {
    fn default() -> Self {
        Su3::IDENTITY
    }
}

impl<T: Real> Su3<T> {
    /// The zero matrix.
    pub const ZERO: Su3<T> = Su3([[Complex::ZERO; 3]; 3]);

    /// The identity.
    pub const IDENTITY: Su3<T> = Su3([
        [Complex::ONE, Complex::ZERO, Complex::ZERO],
        [Complex::ZERO, Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::ZERO, Complex::ONE],
    ]);

    /// Hermitian conjugate (adjoint).
    pub fn adjoint(&self) -> Su3<T> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = self.0[c][r].conj();
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex<T> {
        self.0[0][0] + self.0[1][1] + self.0[2][2]
    }

    /// Determinant.
    pub fn det(&self) -> Complex<T> {
        let m = &self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &ColorVec<T>) -> ColorVec<T> {
        let mut out = ColorVec::ZERO;
        for r in 0..3 {
            let mut acc = Complex::ZERO;
            for c in 0..3 {
                acc = acc.madd(self.0[r][c], v.0[c]);
            }
            out.0[r] = acc;
        }
        out
    }

    /// Adjoint-matrix–vector product `U† v` without forming the adjoint.
    pub fn adj_mul_vec(&self, v: &ColorVec<T>) -> ColorVec<T> {
        let mut out = ColorVec::ZERO;
        for r in 0..3 {
            let mut acc = Complex::ZERO;
            for c in 0..3 {
                acc = acc.madd(self.0[c][r].conj(), v.0[c]);
            }
            out.0[r] = acc;
        }
        out
    }

    /// Two matrix–vector products sharing one matrix traversal — the shape
    /// of a half-spinor hop, where both spin components see the same link.
    /// Each accumulator runs exactly the [`Su3::mul_vec`] operation
    /// sequence (results are bit-identical); interleaving the two
    /// independent chains lets the compiler pack them into wider vector
    /// registers, which is where single precision earns its 2× lane
    /// advantage.
    pub fn mul_vec2(&self, a: &ColorVec<T>, b: &ColorVec<T>) -> (ColorVec<T>, ColorVec<T>) {
        let mut oa = ColorVec::ZERO;
        let mut ob = ColorVec::ZERO;
        for r in 0..3 {
            let mut acc_a = Complex::ZERO;
            let mut acc_b = Complex::ZERO;
            for c in 0..3 {
                let u = self.0[r][c];
                acc_a = acc_a.madd(u, a.0[c]);
                acc_b = acc_b.madd(u, b.0[c]);
            }
            oa.0[r] = acc_a;
            ob.0[r] = acc_b;
        }
        (oa, ob)
    }

    /// Paired adjoint products `(U†a, U†b)`; see [`Su3::mul_vec2`].
    pub fn adj_mul_vec2(&self, a: &ColorVec<T>, b: &ColorVec<T>) -> (ColorVec<T>, ColorVec<T>) {
        let mut oa = ColorVec::ZERO;
        let mut ob = ColorVec::ZERO;
        for r in 0..3 {
            let mut acc_a = Complex::ZERO;
            let mut acc_b = Complex::ZERO;
            for c in 0..3 {
                let u = self.0[c][r].conj();
                acc_a = acc_a.madd(u, a.0[c]);
                acc_b = acc_b.madd(u, b.0[c]);
            }
            oa.0[r] = acc_a;
            ob.0[r] = acc_b;
        }
        (oa, ob)
    }

    /// Scale by a complex number.
    pub fn scale(&self, s: Complex<T>) -> Su3<T> {
        let mut out = *self;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = self.0[r][c] * s;
            }
        }
        out
    }

    /// Frobenius distance to another matrix.
    pub fn distance(&self, rhs: &Su3<T>) -> T {
        let mut acc = T::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                acc += (self.0[r][c] - rhs.0[r][c]).norm_sqr();
            }
        }
        acc.sqrt()
    }

    /// Deviation from unitarity: `‖U†U − 1‖_F`.
    pub fn unitarity_error(&self) -> T {
        (self.adjoint() * *self).distance(&Su3::IDENTITY)
    }

    /// Project back onto SU(3) by Gram–Schmidt on the rows plus a
    /// determinant fix on the third row — the standard reunitarization that
    /// keeps long evolutions on the group manifold.
    pub fn reunitarize(&self) -> Su3<T> {
        let mut r0 = ColorVec([self.0[0][0], self.0[0][1], self.0[0][2]]);
        let n0 = r0.norm_sqr().sqrt();
        r0 = r0 * (T::ONE / n0);
        let mut r1 = ColorVec([self.0[1][0], self.0[1][1], self.0[1][2]]);
        let proj = r0.dot(&r1);
        r1 = r1.axpy(-proj, &r0);
        let n1 = r1.norm_sqr().sqrt();
        r1 = r1 * (T::ONE / n1);
        // Third row = (r0 × r1)* makes det exactly +1.
        let r2 = ColorVec([
            (r0.0[1] * r1.0[2] - r0.0[2] * r1.0[1]).conj(),
            (r0.0[2] * r1.0[0] - r0.0[0] * r1.0[2]).conj(),
            (r0.0[0] * r1.0[1] - r0.0[1] * r1.0[0]).conj(),
        ]);
        Su3([
            [r0.0[0], r0.0[1], r0.0[2]],
            [r1.0[0], r1.0[1], r1.0[2]],
            [r2.0[0], r2.0[1], r2.0[2]],
        ])
    }

    /// Convert (truncate for `f32`, identity for `f64`) from double
    /// precision.
    pub fn from_c64_mat(m: &Su3<f64>) -> Su3<T> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = Complex::from_c64(m.0[r][c]);
            }
        }
        out
    }

    /// Widen to double precision (exact for both supported widths).
    pub fn to_c64_mat(&self) -> Su3<f64> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = self.0[r][c].to_c64();
            }
        }
        out
    }
}

impl Su3 {
    /// Embed an SU(2) matrix `[[a, b], [-b*, a*]]` into the SU(3) subgroup
    /// acting on rows/columns `(p, q)` — the building block of the
    /// Cabibbo–Marinari heatbath.
    pub fn from_su2(a: C64, b: C64, p: usize, q: usize) -> Su3 {
        debug_assert!(p < q && q < 3);
        let mut m = Su3::IDENTITY;
        m.0[p][p] = a;
        m.0[p][q] = b;
        m.0[q][p] = -b.conj();
        m.0[q][q] = a.conj();
        m
    }

    /// The (p,q) SU(2) block of this matrix, projected to the nearest SU(2)
    /// element times a magnitude: returns `(a, b, k)` such that
    /// `[[a, b], [-b*, a*]] * k` best matches the block.
    pub fn su2_project(&self, p: usize, q: usize) -> (C64, C64, f64) {
        // Average the block with the adjoint pattern.
        let a = (self.0[p][p] + self.0[q][q].conj()) * 0.5;
        let b = (self.0[p][q] - self.0[q][p].conj()) * 0.5;
        let k = (a.norm_sqr() + b.norm_sqr()).sqrt();
        if k < 1e-300 {
            return (C64::ONE, C64::ZERO, 0.0);
        }
        (a * (1.0 / k), b * (1.0 / k), k)
    }
}

impl<T: Real> Add for Su3<T> {
    type Output = Su3<T>;
    fn add(self, rhs: Su3<T>) -> Su3<T> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = self.0[r][c] + rhs.0[r][c];
            }
        }
        out
    }
}

impl<T: Real> Sub for Su3<T> {
    type Output = Su3<T>;
    fn sub(self, rhs: Su3<T>) -> Su3<T> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.0[r][c] = self.0[r][c] - rhs.0[r][c];
            }
        }
        out
    }
}

impl<T: Real> Mul for Su3<T> {
    type Output = Su3<T>;
    fn mul(self, rhs: Su3<T>) -> Su3<T> {
        let mut out = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = Complex::ZERO;
                for k in 0..3 {
                    acc = acc.madd(self.0[r][k], rhs.0[k][c]);
                }
                out.0[r][c] = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SiteRng;

    fn random_su3(seed: u64) -> Su3 {
        let mut rng = SiteRng::new(seed, 0);
        let mut m = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                m.0[r][c] = C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5);
            }
        }
        m.reunitarize()
    }

    #[test]
    fn identity_properties() {
        let i = Su3::IDENTITY;
        assert_eq!(i * i, i);
        assert_eq!(i.trace(), C64::real(3.0));
        assert!((i.det() - C64::ONE).abs() < 1e-15);
        assert!(i.unitarity_error() < 1e-15);
    }

    #[test]
    fn reunitarized_matrix_is_special_unitary() {
        for seed in 0..20 {
            let u = random_su3(seed);
            assert!(u.unitarity_error() < 1e-12, "seed {seed}");
            assert!(
                (u.det() - C64::ONE).abs() < 1e-12,
                "seed {seed}: det {}",
                u.det()
            );
        }
    }

    #[test]
    fn group_closure() {
        let a = random_su3(1);
        let b = random_su3(2);
        let c = a * b;
        assert!(c.unitarity_error() < 1e-12);
        assert!((c.det() - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn adjoint_is_inverse() {
        let u = random_su3(3);
        assert!((u * u.adjoint()).distance(&Su3::IDENTITY) < 1e-12);
        assert!((u.adjoint() * u).distance(&Su3::IDENTITY) < 1e-12);
    }

    #[test]
    fn adj_mul_vec_matches_explicit_adjoint() {
        let u = random_su3(4);
        let v = ColorVec([
            C64::new(1.0, -1.0),
            C64::new(0.5, 2.0),
            C64::new(-2.0, 0.25),
        ]);
        let fast = u.adj_mul_vec(&v);
        let slow = u.adjoint().mul_vec(&v);
        for c in 0..3 {
            assert!((fast.0[c] - slow.0[c]).abs() < 1e-13);
        }
    }

    #[test]
    fn mul_vec_preserves_norm_for_unitary() {
        let u = random_su3(5);
        let v = ColorVec([C64::new(0.3, 0.4), C64::new(-1.0, 0.2), C64::new(0.0, 0.9)]);
        let w = u.mul_vec(&v);
        assert!((w.norm_sqr() - v.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn su2_embedding_is_special_unitary() {
        // a, b normalized: |a|^2 + |b|^2 = 1.
        let a = C64::new(0.6, 0.0);
        let b = C64::new(0.0, 0.8);
        for (p, q) in [(0, 1), (0, 2), (1, 2)] {
            let m = Su3::from_su2(a, b, p, q);
            assert!(m.unitarity_error() < 1e-14);
            assert!((m.det() - C64::ONE).abs() < 1e-14);
        }
    }

    #[test]
    fn su2_project_roundtrips_embedded_element() {
        let a = C64::new(0.6, 0.0);
        let b = C64::new(0.48, 0.64);
        // normalize
        let k = (a.norm_sqr() + b.norm_sqr()).sqrt();
        let (a, b) = (a * (1.0 / k), b * (1.0 / k));
        let m = Su3::from_su2(a, b, 0, 2);
        let (pa, pb, pk) = m.su2_project(0, 2);
        assert!((pa - a).abs() < 1e-13);
        assert!((pb - b).abs() < 1e-13);
        assert!((pk - 1.0).abs() < 1e-13);
    }

    #[test]
    fn trace_is_basis_independent_under_conjugation() {
        let u = random_su3(6);
        let v = random_su3(7);
        let t1 = (v * u * v.adjoint()).trace();
        let t2 = u.trace();
        assert!((t1 - t2).abs() < 1e-11);
    }

    #[test]
    fn single_precision_group_closure() {
        let u32m: Su3<f32> = Su3::from_c64_mat(&random_su3(8));
        assert!(u32m.unitarity_error() < 1e-5);
        let sq = u32m * u32m;
        assert!(sq.unitarity_error() < 1e-5);
    }
}
