//! Three-component complex color vectors — the fundamental representation
//! of SU(3), and the per-site degree of freedom of staggered fermions.

use crate::complex::C64;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A color-3 vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ColorVec(pub [C64; 3]);

impl ColorVec {
    /// The zero vector.
    pub const ZERO: ColorVec = ColorVec([C64::ZERO; 3]);

    /// Basis vector `e_i`.
    pub fn basis(i: usize) -> ColorVec {
        let mut v = ColorVec::ZERO;
        v.0[i] = C64::ONE;
        v
    }

    /// Hermitian inner product `⟨self, rhs⟩ = Σ conj(self_i) rhs_i`.
    pub fn dot(&self, rhs: &ColorVec) -> C64 {
        let mut acc = C64::ZERO;
        for c in 0..3 {
            acc += self.0[c].conj() * rhs.0[c];
        }
        acc
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> f64 {
        self.0.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Scale by a complex factor.
    pub fn scale(&self, s: C64) -> ColorVec {
        ColorVec([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }

    /// `self + s * rhs`.
    pub fn axpy(&self, s: C64, rhs: &ColorVec) -> ColorVec {
        ColorVec([
            self.0[0].madd(s, rhs.0[0]),
            self.0[1].madd(s, rhs.0[1]),
            self.0[2].madd(s, rhs.0[2]),
        ])
    }
}

impl Add for ColorVec {
    type Output = ColorVec;
    fn add(self, rhs: ColorVec) -> ColorVec {
        ColorVec([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
        ])
    }
}

impl AddAssign for ColorVec {
    fn add_assign(&mut self, rhs: ColorVec) {
        for c in 0..3 {
            self.0[c] += rhs.0[c];
        }
    }
}

impl Sub for ColorVec {
    type Output = ColorVec;
    fn sub(self, rhs: ColorVec) -> ColorVec {
        ColorVec([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
        ])
    }
}

impl SubAssign for ColorVec {
    fn sub_assign(&mut self, rhs: ColorVec) {
        for c in 0..3 {
            self.0[c] -= rhs.0[c];
        }
    }
}

impl Neg for ColorVec {
    type Output = ColorVec;
    fn neg(self) -> ColorVec {
        ColorVec([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Mul<f64> for ColorVec {
    type Output = ColorVec;
    fn mul(self, rhs: f64) -> ColorVec {
        ColorVec([self.0[0] * rhs, self.0[1] * rhs, self.0[2] * rhs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_orthonormal() {
        for i in 0..3 {
            for j in 0..3 {
                let d = ColorVec::basis(i).dot(&ColorVec::basis(j));
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                assert_eq!(d, expect);
            }
        }
    }

    #[test]
    fn dot_is_conjugate_symmetric() {
        let a = ColorVec([C64::new(1.0, 2.0), C64::new(-1.0, 0.5), C64::new(0.0, 1.0)]);
        let b = ColorVec([C64::new(2.0, -1.0), C64::new(0.5, 0.5), C64::new(1.0, 0.0)]);
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        assert!((ab - ba.conj()).abs() < 1e-14);
    }

    #[test]
    fn norm_matches_self_dot() {
        let a = ColorVec([C64::new(3.0, 0.0), C64::new(0.0, 4.0), C64::ZERO]);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((a.dot(&a).re - 25.0).abs() < 1e-14);
        assert!(a.dot(&a).im.abs() < 1e-14);
    }

    #[test]
    fn axpy_matches_expanded() {
        let a = ColorVec::basis(0);
        let b = ColorVec::basis(1);
        let s = C64::new(0.0, 2.0);
        let r = a.axpy(s, &b);
        assert_eq!(r.0[0], C64::ONE);
        assert_eq!(r.0[1], C64::new(0.0, 2.0));
    }
}
