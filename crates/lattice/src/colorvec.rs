//! Three-component complex color vectors — the fundamental representation
//! of SU(3), and the per-site degree of freedom of staggered fermions.

use crate::complex::Complex;
use crate::real::Real;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A color-3 vector over a [`Real`] component type (default `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ColorVec<T: Real = f64>(pub [Complex<T>; 3]);

impl<T: Real> ColorVec<T> {
    /// The zero vector.
    pub const ZERO: ColorVec<T> = ColorVec([Complex::ZERO; 3]);

    /// Basis vector `e_i`.
    pub fn basis(i: usize) -> ColorVec<T> {
        let mut v = ColorVec::ZERO;
        v.0[i] = Complex::ONE;
        v
    }

    /// Hermitian inner product `⟨self, rhs⟩ = Σ conj(self_i) rhs_i`.
    pub fn dot(&self, rhs: &ColorVec<T>) -> Complex<T> {
        let mut acc = Complex::ZERO;
        for c in 0..3 {
            acc += self.0[c].conj() * rhs.0[c];
        }
        acc
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> T {
        let mut acc = T::ZERO;
        for z in &self.0 {
            acc += z.norm_sqr();
        }
        acc
    }

    /// Scale by a complex factor.
    pub fn scale(&self, s: Complex<T>) -> ColorVec<T> {
        ColorVec([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }

    /// `self + s * rhs`.
    pub fn axpy(&self, s: Complex<T>, rhs: &ColorVec<T>) -> ColorVec<T> {
        ColorVec([
            self.0[0].madd(s, rhs.0[0]),
            self.0[1].madd(s, rhs.0[1]),
            self.0[2].madd(s, rhs.0[2]),
        ])
    }

    /// Convert (truncate for `f32`, identity for `f64`) from double
    /// precision.
    pub fn from_c64_vec(v: &ColorVec<f64>) -> ColorVec<T> {
        ColorVec([
            Complex::from_c64(v.0[0]),
            Complex::from_c64(v.0[1]),
            Complex::from_c64(v.0[2]),
        ])
    }

    /// Widen to double precision (exact for both supported widths).
    pub fn to_c64_vec(&self) -> ColorVec<f64> {
        ColorVec([self.0[0].to_c64(), self.0[1].to_c64(), self.0[2].to_c64()])
    }
}

impl<T: Real> Add for ColorVec<T> {
    type Output = ColorVec<T>;
    fn add(self, rhs: ColorVec<T>) -> ColorVec<T> {
        ColorVec([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
        ])
    }
}

impl<T: Real> AddAssign for ColorVec<T> {
    fn add_assign(&mut self, rhs: ColorVec<T>) {
        for c in 0..3 {
            self.0[c] += rhs.0[c];
        }
    }
}

impl<T: Real> Sub for ColorVec<T> {
    type Output = ColorVec<T>;
    fn sub(self, rhs: ColorVec<T>) -> ColorVec<T> {
        ColorVec([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
        ])
    }
}

impl<T: Real> SubAssign for ColorVec<T> {
    fn sub_assign(&mut self, rhs: ColorVec<T>) {
        for c in 0..3 {
            self.0[c] -= rhs.0[c];
        }
    }
}

impl<T: Real> Neg for ColorVec<T> {
    type Output = ColorVec<T>;
    fn neg(self) -> ColorVec<T> {
        ColorVec([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl<T: Real> Mul<T> for ColorVec<T> {
    type Output = ColorVec<T>;
    fn mul(self, rhs: T) -> ColorVec<T> {
        ColorVec([self.0[0] * rhs, self.0[1] * rhs, self.0[2] * rhs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    #[test]
    fn basis_orthonormal() {
        for i in 0..3 {
            for j in 0..3 {
                let d = ColorVec::basis(i).dot(&ColorVec::basis(j));
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                assert_eq!(d, expect);
            }
        }
    }

    #[test]
    fn dot_is_conjugate_symmetric() {
        let a = ColorVec([C64::new(1.0, 2.0), C64::new(-1.0, 0.5), C64::new(0.0, 1.0)]);
        let b = ColorVec([C64::new(2.0, -1.0), C64::new(0.5, 0.5), C64::new(1.0, 0.0)]);
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        assert!((ab - ba.conj()).abs() < 1e-14);
    }

    #[test]
    fn norm_matches_self_dot() {
        let a = ColorVec([C64::new(3.0, 0.0), C64::new(0.0, 4.0), C64::ZERO]);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((a.dot(&a).re - 25.0).abs() < 1e-14);
        assert!(a.dot(&a).im.abs() < 1e-14);
    }

    #[test]
    fn axpy_matches_expanded() {
        let a = ColorVec::basis(0);
        let b = ColorVec::basis(1);
        let s = C64::new(0.0, 2.0);
        let r = a.axpy(s, &b);
        assert_eq!(r.0[0], C64::ONE);
        assert_eq!(r.0[1], C64::new(0.0, 2.0));
    }

    #[test]
    fn precision_roundtrip() {
        let a = ColorVec([C64::new(1.0, 2.0), C64::new(-0.5, 0.25), C64::ZERO]);
        let lo: ColorVec<f32> = ColorVec::from_c64_vec(&a);
        assert_eq!(lo.to_c64_vec(), a);
    }
}
