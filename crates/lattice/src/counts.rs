//! Per-site operation ledgers for each Dirac operator.
//!
//! These closed-form counts are the input to the machine performance model
//! (`qcdoc-core`): flops and local memory traffic per lattice site per
//! operator application, and the surface communication volume per face
//! site. They are derived from the kernel structure of this crate's
//! implementations (which match the standard community counts — e.g. 1320
//! flops/site for the Wilson dslash in double precision).

use serde::{Deserialize, Serialize};

/// Size of one double-precision complex number in bytes.
const CPLX: u64 = 16;

/// Storage width of the complex numbers a kernel streams. Flop counts are
/// width-independent; every byte ledger scales linearly with the complex
/// size, which is how §4's "performance for single precision is slightly
/// higher" arises — half the bandwidth to local memory for the same
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prec {
    /// 32-bit IEEE components: 8-byte complex numbers.
    Single,
    /// 64-bit IEEE components: 16-byte complex numbers (the paper's
    /// quoted benchmark width).
    Double,
}

impl Prec {
    /// Bytes of one complex number at this width.
    pub const fn complex_bytes(self) -> u64 {
        match self {
            Prec::Single => 8,
            Prec::Double => 16,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Prec::Single => "single",
            Prec::Double => "double",
        }
    }
}
/// Bytes of an SU(3) matrix (9 complex).
pub const SU3_BYTES: u64 = 9 * CPLX;
/// Bytes of a 4-spinor (12 complex).
pub const SPINOR_BYTES: u64 = 12 * CPLX;
/// Bytes of a half-spinor (6 complex) — the face-exchange payload of
/// Wilson-type actions.
pub const HALF_SPINOR_BYTES: u64 = 6 * CPLX;
/// Bytes of a color vector (3 complex) — the staggered face payload.
pub const COLORVEC_BYTES: u64 = 3 * CPLX;

/// The fermion actions benchmarked in §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Naive Wilson fermions (40% of peak in the paper).
    Wilson,
    /// Clover-improved Wilson (46.5%).
    Clover,
    /// Naive thin-link staggered (not benchmarked in the paper; included
    /// as the ASQTAD baseline).
    Staggered,
    /// ASQTAD staggered (38%).
    Asqtad,
    /// Domain-wall fermions (expected to exceed clover, §4).
    Dwf {
        /// Fifth-dimension extent.
        ls: u32,
    },
}

impl Action {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Action::Wilson => "wilson",
            Action::Clover => "clover",
            Action::Staggered => "staggered",
            Action::Asqtad => "asqtad",
            Action::Dwf { .. } => "dwf",
        }
    }

    /// The paper's benchmark set, in its quoted order.
    pub fn paper_benchmarks() -> [Action; 3] {
        [Action::Wilson, Action::Asqtad, Action::Clover]
    }
}

/// Per-site counts for one application of the full operator `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounts {
    /// Floating-point operations (FMA = 2).
    pub flops: u64,
    /// Of which issued as fused multiply-adds (instruction count).
    pub fmadds: u64,
    /// Remaining single-op instructions.
    pub fops_single: u64,
    /// Bytes read from local memory (gauge + fields + operator data).
    pub read_bytes: u64,
    /// Bytes written to local memory.
    pub write_bytes: u64,
    /// Bytes sent per face site per direction when the stencil crosses a
    /// node boundary.
    pub face_bytes: u64,
    /// Halo depth: how many boundary layers the stencil needs (1 for
    /// nearest-neighbour, 3 for the Naik term).
    pub halo_depth: u64,
    /// Bytes of per-site working state that must stay resident between CG
    /// iterations (gauge + operator data + solver vectors), used for the
    /// EDRAM-fit test.
    pub resident_bytes: u64,
}

/// Number of solver vectors CGNE keeps live (x, b, r, p, t, q).
pub const CG_VECTORS: u64 = 6;

/// Counts for one application of the operator `M` of `action`, at the
/// paper's double-precision benchmark width. Shorthand for
/// [`operator_counts_in`] with [`Prec::Double`].
pub fn operator_counts(action: Action) -> SiteCounts {
    operator_counts_in(action, Prec::Double)
}

/// Counts for one application of the operator `M` of `action` with data
/// stored at width `prec`. The flop ledger is identical at both widths;
/// every byte ledger scales with [`Prec::complex_bytes`].
pub fn operator_counts_in(action: Action, prec: Prec) -> SiteCounts {
    let cplx = prec.complex_bytes();
    let su3 = 9 * cplx;
    let spinor = 12 * cplx;
    let half_spinor = 6 * cplx;
    let colorvec = 3 * cplx;
    match action {
        Action::Wilson => SiteCounts {
            // 8 hops x (project 12 + SU(3)*halfspinor 132) + accumulate
            // 7 x 24 + kappa axpy 48 = 1152 + 168 + 48.
            flops: 1368,
            fmadds: 8 * 54 + 24, // the matvec FMA chains + axpy
            fops_single: 1368 - 2 * (8 * 54 + 24),
            read_bytes: 8 * su3 + 8 * spinor + spinor,
            write_bytes: spinor,
            face_bytes: half_spinor,
            halo_depth: 1,
            resident_bytes: 4 * su3 + CG_VECTORS * spinor,
        },
        Action::Clover => {
            let w = operator_counts_in(Action::Wilson, prec);
            SiteCounts {
                // + two Hermitian 6x6 blocks applied: 2 x (36 cmul + 30
                // cadd) = 552 flops; blocks read: 2 x 36 complex.
                flops: w.flops + 552,
                fmadds: w.fmadds + 2 * 36,
                fops_single: w.fops_single + 552 - 2 * 2 * 36,
                read_bytes: w.read_bytes + 2 * 36 * cplx,
                write_bytes: w.write_bytes,
                face_bytes: half_spinor,
                halo_depth: 1,
                resident_bytes: w.resident_bytes + 2 * 36 * cplx,
            }
        }
        Action::Staggered => SiteCounts {
            // 8 matvecs x 66 + 7 accumulations x 6 + mass axpy 12.
            flops: 8 * 66 + 7 * 6 + 12,
            fmadds: 8 * 27,
            fops_single: (8 * 66 + 7 * 6 + 12) - 2 * 8 * 27,
            read_bytes: 8 * su3 + 8 * colorvec + colorvec,
            write_bytes: colorvec,
            face_bytes: colorvec,
            halo_depth: 1,
            resident_bytes: 4 * su3 + CG_VECTORS * colorvec,
        },
        Action::Asqtad => SiteCounts {
            // 16 matvecs (8 fat + 8 Naik) x 66 + 15 x 6 + mass 12 = 1158.
            flops: 16 * 66 + 15 * 6 + 12,
            fmadds: 16 * 27,
            fops_single: (16 * 66 + 15 * 6 + 12) - 2 * 16 * 27,
            // Fat + long links are distinct precomputed fields.
            read_bytes: 16 * su3 + 16 * colorvec + colorvec,
            write_bytes: colorvec,
            face_bytes: colorvec,
            // The Naik term reaches three sites deep.
            halo_depth: 3,
            resident_bytes: 8 * su3 + CG_VECTORS * colorvec,
        },
        Action::Dwf { ls } => {
            let ls = ls as u64;
            let w = operator_counts_in(Action::Wilson, prec);
            SiteCounts {
                // Per 4-D site: Ls x (4-D Wilson work + 5-D hops: two
                // chiral projections and adds, 2 x 24, plus diagonal 24).
                flops: ls * (w.flops + 72),
                fmadds: ls * (w.fmadds + 12),
                fops_single: ls * (w.flops + 72) - 2 * ls * (w.fmadds + 12),
                // Gauge links are shared across s-slices: read once per
                // 4-D site; spinor traffic scales with Ls.
                read_bytes: 8 * su3 + ls * (9 * spinor + spinor),
                write_bytes: ls * spinor,
                face_bytes: ls * half_spinor,
                halo_depth: 1,
                resident_bytes: 4 * su3 + ls * CG_VECTORS * spinor,
            }
        }
    }
}

/// Per-site counts of the CGNE linear algebra between the two operator
/// applications of one iteration, at the paper's double-precision width.
/// Shorthand for [`cg_linear_algebra_counts_in`] with [`Prec::Double`].
pub fn cg_linear_algebra_counts(action: Action) -> SiteCounts {
    cg_linear_algebra_counts_in(action, Prec::Double)
}

/// Per-site counts of the CGNE linear algebra between the two operator
/// applications of one iteration — three axpy-type updates and two
/// reductions on the action's field type — with data stored at width
/// `prec`.
pub fn cg_linear_algebra_counts_in(action: Action, prec: Prec) -> SiteCounts {
    let cplx = prec.complex_bytes();
    let (cplx_per_site, face) = match action {
        Action::Wilson | Action::Clover => (12u64, 6 * cplx),
        Action::Staggered | Action::Asqtad => (3u64, 3 * cplx),
        Action::Dwf { ls } => (12 * ls as u64, 6 * cplx),
    };
    // 3 axpy (8 flops per complex: 1 cmul + 1 cadd as 4 fmadds... counted
    // as 2 fmadds per complex) + 2 dot products (4 flops per complex).
    let flops = 3 * 8 * cplx_per_site + 2 * 4 * cplx_per_site;
    let fmadds = 3 * 2 * cplx_per_site + 2 * 2 * cplx_per_site;
    SiteCounts {
        flops,
        fmadds,
        fops_single: flops - 2 * fmadds,
        // axpy: read 2 vectors write 1; dots: read 2.
        read_bytes: (3 * 2 + 2 * 2) * cplx_per_site * cplx,
        write_bytes: 3 * cplx_per_site * cplx,
        face_bytes: face,
        halo_depth: 0,
        resident_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_community_count() {
        // The canonical Wilson dslash number is 1320 flops/site; the full
        // operator adds the kappa axpy (48).
        let c = operator_counts(Action::Wilson);
        assert_eq!(c.flops, 1320 + 48);
    }

    #[test]
    fn asqtad_matches_community_count() {
        // ASQTAD dslash is usually quoted at 1146; with the mass term 1158.
        let c = operator_counts(Action::Asqtad);
        assert_eq!(c.flops, 1158);
    }

    #[test]
    fn clover_exceeds_wilson_by_block_work() {
        let w = operator_counts(Action::Wilson);
        let c = operator_counts(Action::Clover);
        assert_eq!(c.flops - w.flops, 552);
        assert!(c.read_bytes > w.read_bytes);
    }

    #[test]
    fn arithmetic_intensity_ordering_explains_the_paper() {
        // Clover does more flops per byte than Wilson, which beats ASQTAD —
        // the efficiency ordering of §4 (46.5% > 40% > 38%) in structural
        // form.
        let ai = |a: Action| {
            let c = operator_counts(a);
            c.flops as f64 / (c.read_bytes + c.write_bytes) as f64
        };
        assert!(ai(Action::Clover) > ai(Action::Wilson));
        assert!(ai(Action::Wilson) > ai(Action::Asqtad));
    }

    #[test]
    fn naik_needs_three_deep_halo() {
        assert_eq!(operator_counts(Action::Asqtad).halo_depth, 3);
        assert_eq!(operator_counts(Action::Wilson).halo_depth, 1);
    }

    #[test]
    fn dwf_scales_with_ls() {
        let a = operator_counts(Action::Dwf { ls: 8 });
        let b = operator_counts(Action::Dwf { ls: 16 });
        assert_eq!(b.flops, 2 * a.flops);
        assert!(
            b.read_bytes < 2 * a.read_bytes,
            "gauge reads amortize across slices"
        );
    }

    #[test]
    fn fma_decomposition_is_consistent() {
        for a in [
            Action::Wilson,
            Action::Clover,
            Action::Staggered,
            Action::Asqtad,
            Action::Dwf { ls: 8 },
        ] {
            let c = operator_counts(a);
            assert_eq!(c.flops, 2 * c.fmadds + c.fops_single, "{a:?}");
            let l = cg_linear_algebra_counts(a);
            assert_eq!(l.flops, 2 * l.fmadds + l.fops_single, "{a:?} linalg");
        }
    }

    #[test]
    fn resident_set_fits_edram_at_paper_volumes() {
        // §4: "a 4^4 local volume ... For most of the fermion formulations,
        // a 6^4 local volume still fits in our 4 Megabytes of imbedded
        // memory."
        const EDRAM: u64 = 4 * 1024 * 1024;
        for a in [Action::Wilson, Action::Clover, Action::Asqtad] {
            let per_site = operator_counts(a).resident_bytes;
            assert!(256 * per_site < EDRAM, "{a:?} at 4^4");
            assert!(1296 * per_site < EDRAM, "{a:?} at 6^4");
            assert!(4096 * per_site > EDRAM, "{a:?} at 8^4 must spill");
        }
    }

    #[test]
    fn single_precision_halves_bytes_and_keeps_flops() {
        for a in [
            Action::Wilson,
            Action::Clover,
            Action::Staggered,
            Action::Asqtad,
            Action::Dwf { ls: 8 },
        ] {
            let dp = operator_counts_in(a, Prec::Double);
            let sp = operator_counts_in(a, Prec::Single);
            assert_eq!(sp.flops, dp.flops, "{a:?} flops are width-independent");
            assert_eq!(sp.fmadds, dp.fmadds);
            assert_eq!(2 * sp.read_bytes, dp.read_bytes, "{a:?}");
            assert_eq!(2 * sp.write_bytes, dp.write_bytes, "{a:?}");
            assert_eq!(2 * sp.face_bytes, dp.face_bytes, "{a:?}");
            assert_eq!(2 * sp.resident_bytes, dp.resident_bytes, "{a:?}");
            assert_eq!(sp.halo_depth, dp.halo_depth);
            let dl = cg_linear_algebra_counts_in(a, Prec::Double);
            let sl = cg_linear_algebra_counts_in(a, Prec::Single);
            assert_eq!(sl.flops, dl.flops);
            assert_eq!(2 * sl.read_bytes, dl.read_bytes);
            assert_eq!(2 * sl.write_bytes, dl.write_bytes);
        }
    }

    #[test]
    fn double_variants_match_legacy_entry_points() {
        for a in [Action::Wilson, Action::Asqtad, Action::Dwf { ls: 8 }] {
            assert_eq!(operator_counts(a), operator_counts_in(a, Prec::Double));
            assert_eq!(
                cg_linear_algebra_counts(a),
                cg_linear_algebra_counts_in(a, Prec::Double)
            );
        }
    }

    #[test]
    fn wilson_face_is_half_spinor() {
        // The spin-projection trick halves the exchanged payload.
        assert_eq!(operator_counts(Action::Wilson).face_bytes, SPINOR_BYTES / 2);
    }
}
