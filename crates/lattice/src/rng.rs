//! Deterministic, site-indexed parallel random numbers.
//!
//! Bit-reproducibility across machine decompositions (§4's five-day re-run
//! test) requires that the random number consumed at lattice site *x* be a
//! function of the global site index and the draw count only — never of
//! which node owns the site or of thread scheduling. [`SiteRng`] is a
//! counter-based generator: each (seed, site) pair gets an independent,
//! splittable stream.

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — a strong 64-bit mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic per-site random stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRng {
    key: u64,
    counter: u64,
}

impl SiteRng {
    /// Stream for global site `site` under master seed `seed`.
    pub fn new(seed: u64, site: u64) -> SiteRng {
        SiteRng {
            key: mix(seed ^ mix(site.wrapping_mul(0xA24BAED4963EE407))),
            counter: 0,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let v = mix(self.key ^ mix(self.counter));
        self.counter += 1;
        v
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe as a logarithm argument.
    pub fn uniform_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller (uses two draws).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Number of draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.counter
    }

    /// Jump directly to draw `n` — lets a node resume a site stream without
    /// replaying earlier draws.
    pub fn seek(&mut self, n: u64) {
        self.counter = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SiteRng::new(42, 7);
        let mut b = SiteRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_sites_differ() {
        let mut a = SiteRng::new(42, 7);
        let mut b = SiteRng::new(42, 8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SiteRng::new(1, 0);
        let mut b = SiteRng::new(2, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seek_matches_sequential_draws() {
        let mut seq = SiteRng::new(9, 3);
        for _ in 0..10 {
            seq.next_u64();
        }
        let tenth = seq.next_u64();
        let mut jumped = SiteRng::new(9, 3);
        jumped.seek(10);
        assert_eq!(jumped.next_u64(), tenth);
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let mut r = SiteRng::new(123, 0);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_open_never_zero() {
        let mut r = SiteRng::new(55, 0);
        for _ in 0..10_000 {
            assert!(r.uniform_open() > 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SiteRng::new(7, 0);
        const N: usize = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..N {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
