//! Staggered fermions: the naive one-link operator and the ASQTAD-improved
//! operator ("ASQTAD staggered fermions", 38% of peak in §4).
//!
//! Naive staggered:
//!
//! ```text
//! (D ψ)(x) = Σ_μ η_μ(x)/2 [ U_μ(x) ψ(x+μ̂) − U_μ†(x−μ̂) ψ(x−μ̂) ]
//! ```
//!
//! with the Kawamoto–Smit phases `η_μ(x) = (−1)^{x_0+…+x_{μ−1}}`. `D` is
//! anti-Hermitian, so `M = m + D` has `M† = m − D` and `M†M = m² − D²`.
//!
//! ASQTAD replaces the thin links by *fattened* links (a sum of the link
//! and its perpendicular staples, reunitarization-free) and adds the
//! three-hop **Naik term** that cancels the O(a²) error. We implement
//! 3-staple fattening plus the Naik term; the full fat7+Lepage coefficient
//! set is a longer catalogue of paths with the same operational structure
//! (one fat one-hop stencil + one long three-hop stencil), and the machine
//! performance ledgers use the published ASQTAD operation counts
//! independently (see `crate::counts`). This substitution is recorded in
//! DESIGN.md.

use crate::complex::{Complex, C64};
use crate::field::{GaugeField, Lattice, NeighbourTable, StaggeredField};
use crate::real::Real;
use crate::su3::Su3;

/// The Kawamoto–Smit staggered phase `η_μ(x)`.
pub fn eta(coord: [usize; 4], mu: usize) -> f64 {
    let s: usize = coord[..mu].iter().sum();
    if s.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// The naive (thin-link) staggered operator `M = m + D`.
///
/// Generic over the [`Real`] scalar; the bare mass stays double precision
/// and is truncated at application time.
#[derive(Debug, Clone)]
pub struct StaggeredDirac<'a, T: Real = f64> {
    gauge: &'a GaugeField<T>,
    mass: f64,
    hops: NeighbourTable,
}

impl<'a, T: Real> StaggeredDirac<'a, T> {
    /// Build with bare mass `m > 0`.
    pub fn new(gauge: &'a GaugeField<T>, mass: f64) -> StaggeredDirac<'a, T> {
        let hops = NeighbourTable::new(gauge.lattice());
        StaggeredDirac { gauge, mass, hops }
    }

    /// The anti-Hermitian hopping term `D`.
    pub fn dslash(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        let lat = self.gauge.lattice();
        for x in lat.sites() {
            let cx = lat.coord(x);
            let mut acc = crate::colorvec::ColorVec::ZERO;
            for mu in 0..4 {
                let phase = T::from_f64(eta(cx, mu) * 0.5);
                let xf = self.hops.fwd(x, mu);
                acc += self.gauge.link(x, mu).mul_vec(inp.site(xf)) * phase;
                let xb = self.hops.bwd(x, mu);
                acc -= self.gauge.link(xb, mu).adj_mul_vec(inp.site(xb)) * phase;
            }
            *out.site_mut(x) = acc;
        }
    }

    /// `out = (m + D) inp`.
    pub fn apply(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        self.dslash(out, inp);
        let lat = inp.lattice();
        let m = Complex::from_c64(C64::real(self.mass));
        for x in lat.sites() {
            *out.site_mut(x) = out.site(x).axpy(m, inp.site(x));
        }
    }

    /// `M† = m − D` (D is anti-Hermitian).
    pub fn apply_dagger(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        self.dslash(out, inp);
        let lat = inp.lattice();
        let m = Complex::from_c64(C64::real(self.mass));
        for x in lat.sites() {
            let d = *out.site(x);
            *out.site_mut(x) = (-d).axpy(m, inp.site(x));
        }
    }
}

/// Coefficients of the ASQTAD-style smearing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsqtadCoeffs {
    /// Weight of the thin link.
    pub one_link: f64,
    /// Weight of each perpendicular 3-link staple.
    pub staple3: f64,
    /// Weight of the three-hop Naik term.
    pub naik: f64,
}

impl Default for AsqtadCoeffs {
    fn default() -> Self {
        // Tadpole-free tree-level-style weights: the fat link resums the
        // thin link and its six staples; the Naik coefficient is −1/24 ×
        // the rescaled one-link normalization, here folded to match the
        // standard c_Naik = −1/24 convention after the 9/8 rescale.
        AsqtadCoeffs {
            one_link: 5.0 / 8.0,
            staple3: 1.0 / 16.0,
            naik: -1.0 / 24.0,
        }
    }
}

/// Precomputed fat and Naik links for the ASQTAD operator.
#[derive(Debug, Clone)]
pub struct AsqtadLinks<T: Real = f64> {
    lat: Lattice,
    /// Fattened one-hop links.
    pub fat: Vec<[Su3<T>; 4]>,
    /// Three-hop (Naik) links: `U_μ(x) U_μ(x+μ̂) U_μ(x+2μ̂)`.
    pub long: Vec<[Su3<T>; 4]>,
}

impl<T: Real> AsqtadLinks<T> {
    /// Fatten a gauge field.
    pub fn new(gauge: &GaugeField<T>, coeffs: AsqtadCoeffs) -> AsqtadLinks<T> {
        let lat = gauge.lattice();
        let mut fat = vec![[Su3::ZERO; 4]; lat.volume()];
        let mut long = vec![[Su3::ZERO; 4]; lat.volume()];
        let one_link = Complex::from_c64(C64::real(coeffs.one_link));
        let staple3 = Complex::from_c64(C64::real(coeffs.staple3));
        let naik = Complex::from_c64(C64::real(coeffs.naik));
        for x in lat.sites() {
            for mu in 0..4 {
                let mut f = gauge.link(x, mu).scale(one_link);
                for nu in 0..4 {
                    if nu == mu {
                        continue;
                    }
                    // Upper staple: x -> x+nu -> x+nu+mu -> x+mu.
                    let xpn = lat.neighbour(x, nu, true);
                    let xpm = lat.neighbour(x, mu, true);
                    let up =
                        *gauge.link(x, nu) * *gauge.link(xpn, mu) * gauge.link(xpm, nu).adjoint();
                    // Lower staple: x -> x-nu -> x-nu+mu -> x+mu.
                    let xmn = lat.neighbour(x, nu, false);
                    let xmn_pm = lat.neighbour(xmn, mu, true);
                    let down = gauge.link(xmn, nu).adjoint()
                        * *gauge.link(xmn, mu)
                        * *gauge.link(xmn_pm, nu);
                    f = f + (up + down).scale(staple3);
                }
                fat[x][mu] = f;
                // Naik link.
                let x1 = lat.neighbour(x, mu, true);
                let x2 = lat.neighbour(x1, mu, true);
                long[x][mu] =
                    (*gauge.link(x, mu) * *gauge.link(x1, mu) * *gauge.link(x2, mu)).scale(naik);
            }
        }
        AsqtadLinks { lat, fat, long }
    }

    /// The lattice.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }
}

/// The ASQTAD staggered operator on precomputed fat/Naik links.
#[derive(Debug, Clone)]
pub struct AsqtadDirac<'a, T: Real = f64> {
    links: &'a AsqtadLinks<T>,
    mass: f64,
    hops: NeighbourTable,
}

impl<'a, T: Real> AsqtadDirac<'a, T> {
    /// Build with bare mass `m > 0`.
    pub fn new(links: &'a AsqtadLinks<T>, mass: f64) -> AsqtadDirac<'a, T> {
        let hops = NeighbourTable::new(links.lat);
        AsqtadDirac { links, mass, hops }
    }

    /// The anti-Hermitian improved hopping term: fat one-hop plus Naik
    /// three-hop.
    pub fn dslash(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        let lat = self.links.lat;
        for x in lat.sites() {
            let cx = lat.coord(x);
            let mut acc = crate::colorvec::ColorVec::ZERO;
            for mu in 0..4 {
                let phase = T::from_f64(eta(cx, mu) * 0.5);
                // Fat one-hop.
                let xf = self.hops.fwd(x, mu);
                acc += self.links.fat[x][mu].mul_vec(inp.site(xf)) * phase;
                let xb = self.hops.bwd(x, mu);
                acc -= self.links.fat[xb][mu].adj_mul_vec(inp.site(xb)) * phase;
                // Naik three-hop.
                let x3f = self.hops.fwd(self.hops.fwd(xf, mu), mu);
                acc += self.links.long[x][mu].mul_vec(inp.site(x3f)) * phase;
                let x3b = self.hops.bwd(self.hops.bwd(xb, mu), mu);
                acc -= self.links.long[x3b][mu].adj_mul_vec(inp.site(x3b)) * phase;
            }
            *out.site_mut(x) = acc;
        }
    }

    /// `out = (m + D) inp`.
    pub fn apply(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        self.dslash(out, inp);
        let lat = inp.lattice();
        let m = Complex::from_c64(C64::real(self.mass));
        for x in lat.sites() {
            *out.site_mut(x) = out.site(x).axpy(m, inp.site(x));
        }
    }

    /// `M† = m − D`.
    pub fn apply_dagger(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        self.dslash(out, inp);
        let lat = inp.lattice();
        let m = Complex::from_c64(C64::real(self.mass));
        for x in lat.sites() {
            let d = *out.site(x);
            *out.site_mut(x) = (-d).axpy(m, inp.site(x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    #[test]
    fn eta_phases() {
        assert_eq!(eta([0, 0, 0, 0], 0), 1.0);
        assert_eq!(eta([1, 0, 0, 0], 0), 1.0, "eta_x never depends on x");
        assert_eq!(eta([1, 0, 0, 0], 1), -1.0);
        assert_eq!(eta([1, 1, 0, 0], 2), 1.0);
        assert_eq!(eta([1, 1, 1, 0], 3), -1.0);
    }

    #[test]
    fn dslash_is_antihermitian() {
        let gauge = GaugeField::hot(lat(), 40);
        let d = StaggeredDirac::new(&gauge, 0.1);
        let u = StaggeredField::gaussian(lat(), 41);
        let v = StaggeredField::gaussian(lat(), 42);
        let mut dv = StaggeredField::zero(lat());
        d.dslash(&mut dv, &v);
        let mut du = StaggeredField::zero(lat());
        d.dslash(&mut du, &u);
        // <u, Dv> = -<Du, v>.
        let a = u.dot(&dv);
        let b = du.dot(&v);
        assert!((a + b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn asqtad_dslash_is_antihermitian() {
        let gauge = GaugeField::hot(lat(), 43);
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let d = AsqtadDirac::new(&links, 0.05);
        let u = StaggeredField::gaussian(lat(), 44);
        let v = StaggeredField::gaussian(lat(), 45);
        let mut dv = StaggeredField::zero(lat());
        d.dslash(&mut dv, &v);
        let mut du = StaggeredField::zero(lat());
        d.dslash(&mut du, &u);
        let a = u.dot(&dv);
        let b = du.dot(&v);
        assert!((a + b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn dagger_matches_inner_product() {
        let gauge = GaugeField::hot(lat(), 46);
        let d = StaggeredDirac::new(&gauge, 0.2);
        let u = StaggeredField::gaussian(lat(), 47);
        let v = StaggeredField::gaussian(lat(), 48);
        let mut mv = StaggeredField::zero(lat());
        d.apply(&mut mv, &v);
        let mut mdu = StaggeredField::zero(lat());
        d.apply_dagger(&mut mdu, &u);
        let a = u.dot(&mv);
        let b = mdu.dot(&v);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn free_field_constant_mode_is_mass_eigenvector() {
        // On unit links a constant field is annihilated by D (forward and
        // backward hops cancel), so M psi = m psi.
        let gauge = GaugeField::unit(lat());
        let d = StaggeredDirac::new(&gauge, 0.35);
        let mut v = StaggeredField::zero(lat());
        for x in lat().sites() {
            *v.site_mut(x) = crate::colorvec::ColorVec::basis(1);
        }
        let mut mv = StaggeredField::zero(lat());
        d.apply(&mut mv, &v);
        for x in lat().sites() {
            let diff = *mv.site(x) - v.site(x).scale(C64::real(0.35));
            assert!(diff.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn naik_term_reaches_three_hops() {
        let gauge = GaugeField::hot(lat(), 50);
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let d = AsqtadDirac::new(&links, 0.1);
        let mut src = StaggeredField::zero(lat());
        let origin = lat().index([0, 0, 0, 0]);
        *src.site_mut(origin) = crate::colorvec::ColorVec::basis(0);
        let mut out = StaggeredField::zero(lat());
        d.dslash(&mut out, &src);
        // Site three hops away in +x must be reached.
        let three = lat().index([3, 0, 0, 0]);
        assert!(out.site(three).norm_sqr() > 1e-20, "Naik term missing");
        // A site two hops away must NOT be reached (staggered one-hop plus
        // Naik three-hop only).
        let two = lat().index([2, 0, 0, 0]);
        assert!(out.site(two).norm_sqr() < 1e-20);
    }

    #[test]
    fn fat_links_reduce_to_scaled_thin_links_on_unit_field() {
        let gauge = GaugeField::unit(lat());
        let c = AsqtadCoeffs::default();
        let links = AsqtadLinks::new(&gauge, c);
        // On unit links every staple is the identity: fat = (one_link +
        // 6 * staple3) * 1.
        let expect = c.one_link + 6.0 * c.staple3;
        for x in [0, 5] {
            for mu in 0..4 {
                let f: &Su3 = &links.fat[x][mu];
                assert!((f.0[0][0].re - expect).abs() < 1e-12);
                assert!(f.0[0][1].abs() < 1e-12);
            }
        }
    }
}
