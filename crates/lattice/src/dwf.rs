//! Domain-wall fermions — the five-dimensional discretization §4 calls "a
//! prime target for much of our work with QCDOC".
//!
//! Shamir domain walls: `Ls` copies of a 4-D Wilson operator at negative
//! mass `−M5` (the domain-wall height), coupled along the fifth dimension
//! by the chiral projectors `P_± = (1 ± γ₅)/2`, with the physical quark
//! mass `m_f` entering through the boundary condition that links the two
//! walls:
//!
//! ```text
//! (D ψ)_s = D_W(−M5) ψ_s + ψ_s
//!           − P_− ψ_{s+1} − P_+ ψ_{s−1}           (bulk)
//! ψ_{Ls} → −m_f ψ_0  (through P_−),   ψ_{−1} → −m_f ψ_{Ls−1}  (through P_+)
//! ```
//!
//! The gauge field is four-dimensional and identical on every `s` slice —
//! exactly why the machine's mesh suits the 5-D formulation: the fifth
//! dimension carries no gauge links and maps onto a sixth machine axis (or
//! stays node-local).
//!
//! `D† = Γ₅ D Γ₅` with `Γ₅ ψ_s = γ₅ ψ_{Ls−1−s}` (the 5-D reflection).

use crate::complex::{Complex, C64};
use crate::field::{FermionField, GaugeField, Lattice};
use crate::real::Real;
use crate::spinor::Spinor;
use crate::wilson::WilsonDirac;
use serde::{Deserialize, Serialize};

/// A 5-D fermion field: `Ls` four-dimensional spinor fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DwfField<T: Real = f64> {
    slices: Vec<FermionField<T>>,
}

impl<T: Real> DwfField<T> {
    /// The zero field with `ls` slices.
    pub fn zero(lat: Lattice, ls: usize) -> DwfField<T> {
        assert!(ls >= 2, "domain walls need Ls >= 2");
        DwfField {
            slices: (0..ls).map(|_| FermionField::zero(lat)).collect(),
        }
    }

    /// Number of fifth-dimension slices.
    pub fn ls(&self) -> usize {
        self.slices.len()
    }

    /// The 4-D lattice.
    pub fn lattice(&self) -> Lattice {
        self.slices[0].lattice()
    }

    /// Slice accessor.
    pub fn slice(&self, s: usize) -> &FermionField<T> {
        &self.slices[s]
    }

    /// Mutable slice accessor.
    pub fn slice_mut(&mut self, s: usize) -> &mut FermionField<T> {
        &mut self.slices[s]
    }

    /// Hermitian inner product over all slices, in slice-then-site order,
    /// accumulated in double precision.
    pub fn dot(&self, rhs: &DwfField<T>) -> C64 {
        assert_eq!(self.ls(), rhs.ls());
        let mut acc = C64::ZERO;
        for s in 0..self.ls() {
            acc += self.slices[s].dot(&rhs.slices[s]);
        }
        acc
    }

    /// Squared norm, accumulated in double precision.
    pub fn norm_sqr(&self) -> f64 {
        self.slices.iter().map(|f| f.norm_sqr()).sum()
    }

    /// `self += a * rhs`.
    pub fn axpy(&mut self, a: C64, rhs: &DwfField<T>) {
        for s in 0..self.ls() {
            self.slices[s].axpy(a, &rhs.slices[s]);
        }
    }

    /// `self = a * self + rhs`.
    pub fn xpay(&mut self, a: C64, rhs: &DwfField<T>) {
        for s in 0..self.ls() {
            self.slices[s].xpay(a, &rhs.slices[s]);
        }
    }
}

impl DwfField {
    /// Gaussian random field, deterministic per (slice, site).
    pub fn gaussian(lat: Lattice, ls: usize, seed: u64) -> DwfField {
        DwfField {
            slices: (0..ls)
                .map(|s| FermionField::gaussian(lat, seed.wrapping_add(s as u64 * 0x9E37)))
                .collect(),
        }
    }

    /// Truncate every slice to single precision.
    pub fn to_f32(&self) -> DwfField<f32> {
        DwfField {
            slices: self.slices.iter().map(FermionField::to_f32).collect(),
        }
    }
}

impl DwfField<f32> {
    /// Widen every slice to double precision (exact).
    pub fn to_f64(&self) -> DwfField {
        DwfField {
            slices: self.slices.iter().map(FermionField::to_f64).collect(),
        }
    }
}

/// Chiral projection `P_± ψ = (1 ± γ₅)/2 ψ` — diagonal in the chiral
/// basis: `P_+` keeps spins (0,1), `P_−` keeps spins (2,3).
fn chiral_project<T: Real>(s: &Spinor<T>, plus: bool) -> Spinor<T> {
    let mut out = Spinor::ZERO;
    if plus {
        out.0[0] = s.0[0];
        out.0[1] = s.0[1];
    } else {
        out.0[2] = s.0[2];
        out.0[3] = s.0[3];
    }
    out
}

/// The Shamir domain-wall operator.
///
/// Generic over the [`Real`] scalar; `m5`/`mf` stay double precision and
/// are truncated at application time.
#[derive(Debug, Clone)]
pub struct DwfDirac<'a, T: Real = f64> {
    gauge: &'a GaugeField<T>,
    /// The 4-D hopping term, built once so its neighbour table is shared
    /// by every slice of every application (kappa is unused; dslash only).
    wilson: WilsonDirac<'a, T>,
    /// Domain-wall height (0 < M5 < 2 for one physical mode).
    pub m5: f64,
    /// Physical quark mass coupling the walls.
    pub mf: f64,
    /// Fifth-dimension extent.
    pub ls: usize,
}

impl<'a, T: Real> DwfDirac<'a, T> {
    /// Build the operator.
    pub fn new(gauge: &'a GaugeField<T>, m5: f64, mf: f64, ls: usize) -> DwfDirac<'a, T> {
        assert!(ls >= 2);
        let wilson = WilsonDirac::new(gauge, 0.0);
        DwfDirac {
            gauge,
            wilson,
            m5,
            mf,
            ls,
        }
    }

    /// Apply `D` to a 5-D field.
    pub fn apply(&self, out: &mut DwfField<T>, inp: &DwfField<T>) {
        assert_eq!(inp.ls(), self.ls);
        let lat = self.gauge.lattice();
        // 4-D part per slice: (4 - M5) psi_s - (1/2) Dslash_W psi_s, i.e. a
        // Wilson operator at negative mass. Reuse the Wilson hopping term.
        let diag = Complex::from_c64(C64::real(4.0 - self.m5 + 1.0)); // Wilson diagonal + the 5-D "+1"
        let half = Complex::from_c64(C64::real(-0.5));
        let mmf = Complex::from_c64(C64::real(-self.mf));
        let mut hop = FermionField::zero(lat);
        for s in 0..self.ls {
            self.wilson.dslash(&mut hop, inp.slice(s));
            let o = out.slice_mut(s);
            for x in lat.sites() {
                // 4-D Wilson at mass −M5 plus the 5-D diagonal unit.
                let mut acc = inp.slice(s).site(x).scale(diag);
                acc = acc.axpy(half, hop.site(x));
                // Fifth-dimension hopping with wall boundary conditions.
                let up = if s + 1 < self.ls {
                    chiral_project(inp.slice(s + 1).site(x), false)
                } else {
                    chiral_project(inp.slice(0).site(x), false).scale(mmf)
                };
                let down = if s > 0 {
                    chiral_project(inp.slice(s - 1).site(x), true)
                } else {
                    chiral_project(inp.slice(self.ls - 1).site(x), true).scale(mmf)
                };
                acc = acc - up - down;
                *o.site_mut(x) = acc;
            }
        }
    }

    /// `D† = Γ₅ D Γ₅` with the 5-D reflection `Γ₅ ψ_s = γ₅ ψ_{Ls−1−s}`.
    pub fn apply_dagger(&self, out: &mut DwfField<T>, inp: &DwfField<T>) {
        let lat = self.gauge.lattice();
        let mut tmp = DwfField::zero(lat, self.ls);
        gamma5_reflect(&mut tmp, inp);
        let mut mid = DwfField::zero(lat, self.ls);
        self.apply(&mut mid, &tmp);
        gamma5_reflect(out, &mid);
    }
}

/// `out_s = γ₅ in_{Ls−1−s}`.
fn gamma5_reflect<T: Real>(out: &mut DwfField<T>, inp: &DwfField<T>) {
    let ls = inp.ls();
    let lat = inp.lattice();
    for s in 0..ls {
        let src = inp.slice(ls - 1 - s);
        let dst = out.slice_mut(s);
        for x in lat.sites() {
            *dst.site_mut(x) = src.site(x).apply_gamma5();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::new([2, 2, 2, 4])
    }

    #[test]
    fn gamma5_reflection_is_involution() {
        let f = DwfField::gaussian(lat(), 4, 60);
        let mut once = DwfField::zero(lat(), 4);
        gamma5_reflect(&mut once, &f);
        let mut twice = DwfField::zero(lat(), 4);
        gamma5_reflect(&mut twice, &once);
        for s in 0..4 {
            assert_eq!(twice.slice(s).fingerprint(), f.slice(s).fingerprint());
        }
    }

    #[test]
    fn dagger_matches_inner_product() {
        let gauge = GaugeField::hot(lat(), 61);
        let d = DwfDirac::new(&gauge, 1.8, 0.04, 6);
        let u = DwfField::gaussian(lat(), 6, 62);
        let v = DwfField::gaussian(lat(), 6, 63);
        let mut dv = DwfField::zero(lat(), 6);
        d.apply(&mut dv, &v);
        let mut ddag_u = DwfField::zero(lat(), 6);
        d.apply_dagger(&mut ddag_u, &u);
        let a = u.dot(&dv);
        let b = ddag_u.dot(&v);
        assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn operator_is_local_in_s_to_one_hop() {
        let gauge = GaugeField::hot(lat(), 64);
        let d = DwfDirac::new(&gauge, 1.8, 0.1, 8);
        // Both chiralities present so both s-neighbours are reached.
        let mut src = DwfField::zero(lat(), 8);
        *src.slice_mut(3) = FermionField::gaussian(lat(), 69);
        let mut out = DwfField::zero(lat(), 8);
        d.apply(&mut out, &src);
        for s in 0..8 {
            let active = out.slice(s).norm_sqr() > 1e-20;
            assert_eq!(active, (2..=4).contains(&s), "slice {s}");
        }
    }

    #[test]
    fn walls_couple_through_mf() {
        let gauge = GaugeField::unit(lat());
        // With mf = 0 a source on slice 0 cannot reach slice Ls-1 in one
        // application; with mf != 0 it can (the wall-to-wall term).
        // The source needs both chiralities: P_− carries the wall-to-wall
        // coupling, and a spin-0 point source is annihilated by it.
        let mut src = DwfField::zero(lat(), 4);
        *src.slice_mut(0) = FermionField::gaussian(lat(), 68);
        let d0 = DwfDirac::new(&gauge, 1.8, 0.0, 4);
        let mut out0 = DwfField::zero(lat(), 4);
        d0.apply(&mut out0, &src);
        assert!(out0.slice(3).norm_sqr() < 1e-20);
        let dm = DwfDirac::new(&gauge, 1.8, 0.5, 4);
        let mut outm = DwfField::zero(lat(), 4);
        dm.apply(&mut outm, &src);
        assert!(outm.slice(3).norm_sqr() > 1e-20);
    }

    #[test]
    fn five_d_linearity() {
        let gauge = GaugeField::hot(lat(), 65);
        let d = DwfDirac::new(&gauge, 1.8, 0.04, 4);
        let a = DwfField::gaussian(lat(), 4, 66);
        let b = DwfField::gaussian(lat(), 4, 67);
        let s = C64::new(0.3, 0.7);
        let mut combo = a.clone();
        combo.axpy(s, &b);
        let mut out_combo = DwfField::zero(lat(), 4);
        d.apply(&mut out_combo, &combo);
        let mut out_a = DwfField::zero(lat(), 4);
        d.apply(&mut out_a, &a);
        let mut out_b = DwfField::zero(lat(), 4);
        d.apply(&mut out_b, &b);
        out_a.axpy(s, &out_b);
        let mut diff = out_combo.clone();
        diff.axpy(C64::real(-1.0), &out_a);
        assert!(diff.norm_sqr() < 1e-16 * out_combo.norm_sqr().max(1.0));
    }
}
