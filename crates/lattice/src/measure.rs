//! Physics measurements: quark propagators and meson correlators.
//!
//! This is what the machine was built to produce. A quark propagator is
//! twelve Dirac-equation solves (one per spin-color source component); the
//! pion correlator is its spin-color-summed modulus squared projected onto
//! time slices,
//!
//! ```text
//! C(t) = Σ_{x⃗} Σ_{s,c,s',c'} |S(x⃗,t; 0)_{s c, s' c'}|²
//! ```
//!
//! which for positive-definite actions is positive and, at large `t`,
//! decays as `cosh(m_π (t − T/2))` on a periodic lattice.

use crate::complex::C64;
use crate::field::{FermionField, GaugeField};
use crate::solver::{solve_cgne, CgParams, CgReport};
use crate::spinor::Spinor;
use crate::wilson::WilsonDirac;

/// A full quark propagator from a point source at the origin: one solved
/// field per source spin-color component.
#[derive(Debug, Clone)]
pub struct Propagator {
    /// Columns indexed by source (spin, color): `columns[3 * s + c]`.
    pub columns: Vec<FermionField>,
    /// CG reports of the twelve solves.
    pub reports: Vec<CgReport>,
}

/// Compute the Wilson propagator from a point source at site 0.
pub fn point_propagator(gauge: &GaugeField, kappa: f64, params: CgParams) -> Propagator {
    let lat = gauge.lattice();
    let op = WilsonDirac::new(gauge, kappa);
    let mut columns = Vec::with_capacity(12);
    let mut reports = Vec::with_capacity(12);
    for s in 0..4 {
        for c in 0..3 {
            let mut src = FermionField::zero(lat);
            src.site_mut(0).0[s].0[c] = C64::ONE;
            let mut x = FermionField::zero(lat);
            let report = solve_cgne(&op, &mut x, &src, params);
            columns.push(x);
            reports.push(report);
        }
    }
    Propagator { columns, reports }
}

/// The pion (pseudoscalar) correlator `C(t)` from a propagator.
pub fn pion_correlator(prop: &Propagator) -> Vec<f64> {
    let lat = prop.columns[0].lattice();
    let nt = lat.dims()[3];
    let mut corr = vec![0.0f64; nt];
    for col in &prop.columns {
        for x in lat.sites() {
            let t = lat.coord(x)[3];
            corr[t] += col.site(x).norm_sqr();
        }
    }
    corr
}

/// Effective mass `m_eff(t) = ln(C(t) / C(t+1))` — flat where a single
/// state dominates.
pub fn effective_mass(corr: &[f64]) -> Vec<f64> {
    corr.windows(2).map(|w| (w[0] / w[1]).ln()).collect()
}

/// Sum a spinor's squared magnitude per time slice (helper exposed for
/// other channels).
pub fn timeslice_norms(field: &FermionField) -> Vec<f64> {
    let lat = field.lattice();
    let nt = lat.dims()[3];
    let mut out = vec![0.0f64; nt];
    for x in lat.sites() {
        out[lat.coord(x)[3]] += field.site(x).norm_sqr();
    }
    out
}

/// The conserved-charge check: on a point source, the solution restricted
/// to the source site recovers `M⁻¹(0,0)`, whose trace is real and
/// positive for κ below critical.
pub fn source_site_trace(prop: &Propagator) -> f64 {
    let mut tr = 0.0;
    for (i, col) in prop.columns.iter().enumerate() {
        let (s, c) = (i / 3, i % 3);
        let site: &Spinor = col.site(0);
        tr += site.0[s].0[c].re;
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Lattice;
    use crate::gauge::{evolve, EvolveParams};

    fn setup() -> (GaugeField, Propagator) {
        let lat = Lattice::new([2, 2, 2, 8]);
        let mut gauge = GaugeField::hot(lat, 2024);
        evolve(&mut gauge, EvolveParams::default(), 3, 3);
        let prop = point_propagator(
            &gauge,
            0.11,
            CgParams {
                tolerance: 1e-9,
                max_iterations: 4000,
            },
        );
        (gauge, prop)
    }

    #[test]
    fn all_twelve_solves_converge() {
        let (_, prop) = setup();
        assert_eq!(prop.columns.len(), 12);
        assert!(prop.reports.iter().all(|r| r.converged));
    }

    #[test]
    fn pion_correlator_is_positive_and_symmetric_ish() {
        let (_, prop) = setup();
        let corr = pion_correlator(&prop);
        assert_eq!(corr.len(), 8);
        assert!(corr.iter().all(|&c| c > 0.0), "{corr:?}");
        // Periodic lattice: C(t) ~ C(T-t); exact for the pseudoscalar at
        // zero momentum up to rounding.
        for t in 1..4 {
            let ratio = corr[t] / corr[8 - t];
            assert!((ratio - 1.0).abs() < 0.35, "t={t}: {ratio}");
        }
    }

    #[test]
    fn correlator_decays_from_the_source() {
        let (_, prop) = setup();
        let corr = pion_correlator(&prop);
        assert!(corr[0] > corr[1]);
        assert!(corr[1] > corr[3], "{corr:?}");
    }

    #[test]
    fn effective_mass_is_positive_in_the_bulk() {
        let (_, prop) = setup();
        let corr = pion_correlator(&prop);
        let meff = effective_mass(&corr);
        // Before the midpoint the correlator falls: positive m_eff.
        for (t, &m) in meff.iter().take(3).enumerate() {
            assert!(m > 0.0, "t={t}: {m}");
        }
    }

    #[test]
    fn source_site_trace_positive() {
        let (_, prop) = setup();
        assert!(source_site_trace(&prop) > 0.0);
    }

    #[test]
    fn free_field_correlator_matches_both_orderings() {
        // On unit links the propagator is translation invariant; the
        // timeslice helper must agree with the correlator assembled from
        // columns.
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::unit(lat);
        let prop = point_propagator(&gauge, 0.1, CgParams::default());
        let corr = pion_correlator(&prop);
        let mut manual = [0.0; 4];
        for col in &prop.columns {
            for (t, v) in timeslice_norms(col).into_iter().enumerate() {
                manual[t] += v;
            }
        }
        for t in 0..4 {
            assert!((corr[t] - manual[t]).abs() < 1e-12);
        }
    }
}
