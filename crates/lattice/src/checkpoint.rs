//! CG solver checkpoints in the NERSC-archive idiom.
//!
//! A production campaign on a 12,288-node machine outlives its hardware:
//! the paper's Ethernet/JTAG diagnostics network exists so an operator can
//! pull a failing daughterboard, repartition, and *resume* — which
//! requires the solver's state to be on disk, in the same portable,
//! checksummed, self-describing format as the gauge configurations it
//! works on (see [`crate::io`]).
//!
//! A [`CgCheckpoint`] captures the complete loop-carried state of
//! [`crate::solver::solve_cgne`] at an iteration boundary: the three
//! Krylov vectors (x, r, p) as exact IEEE-754 bit patterns, the scalar
//! recurrence state (`rsq`, the reference norm `bref`), the iteration
//! counter, the residual history, and the phase counters. Restoring it
//! and continuing produces a solve that is **bit-identical** to one that
//! never stopped — the property the reproducibility suite asserts.
//!
//! CG carries no random state: the "rng/seq state" of the recovery story
//! is exactly the scalar/residual sequence checkpointed here (field
//! generation uses the site-indexed RNG of [`crate::rng`], which is a
//! pure function of the seed and never advances during a solve).

use crate::io::{header_value, nersc_checksum, IoError};
use serde::{Deserialize, Serialize};

/// The complete loop-carried state of a CG solve at an iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgCheckpoint {
    /// Operator name (must match on resume).
    pub operator: String,
    /// Iterations completed when the checkpoint was taken.
    pub iterations: usize,
    /// Whether the tolerance was already reached.
    pub converged: bool,
    /// The residual-norm recurrence scalar `rsq = ‖r‖²` (exact bits).
    pub rsq: f64,
    /// The reference scale `bref = ‖M†b‖²` (exact bits).
    pub bref: f64,
    /// Relative-residual history, one entry per completed iteration.
    pub residuals: Vec<f64>,
    /// Operator applications performed so far.
    pub applications: usize,
    /// Global reductions performed so far.
    pub reductions: usize,
    /// Solution vector, as IEEE-754 bit patterns in site order.
    pub x: Vec<u64>,
    /// Residual vector bits.
    pub r: Vec<u64>,
    /// Search-direction vector bits.
    pub p: Vec<u64>,
}

impl CgCheckpoint {
    /// Order-sensitive FNV digest over every field — the
    /// `LinkChecksum`-style identity of the checkpointed state. Two
    /// checkpoints with equal digests carry bit-identical solver state.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |v: u64| {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(v);
        };
        for b in self.operator.as_bytes() {
            eat(u64::from(*b));
        }
        eat(self.iterations as u64);
        eat(u64::from(self.converged));
        eat(self.rsq.to_bits());
        eat(self.bref.to_bits());
        eat(self.applications as u64);
        eat(self.reductions as u64);
        for r in &self.residuals {
            eat(r.to_bits());
        }
        for v in [&self.x, &self.r, &self.p] {
            for &w in v {
                eat(w);
            }
        }
        h
    }
}

/// Serialize a checkpoint: an ASCII header in the NERSC-archive idiom
/// followed by the big-endian 64-bit payload (x, r, p, residual bits).
pub fn write_checkpoint(ckpt: &CgCheckpoint) -> Vec<u8> {
    assert_eq!(ckpt.x.len(), ckpt.r.len());
    assert_eq!(ckpt.x.len(), ckpt.p.len());
    let mut payload = Vec::with_capacity((3 * ckpt.x.len() + ckpt.residuals.len()) * 8);
    for v in [&ckpt.x, &ckpt.r, &ckpt.p] {
        for &w in v {
            payload.extend_from_slice(&w.to_be_bytes());
        }
    }
    for r in &ckpt.residuals {
        payload.extend_from_slice(&r.to_bits().to_be_bytes());
    }
    let checksum = nersc_checksum(&payload);
    let mut out = String::new();
    out.push_str("BEGIN_CKPT_HEADER\n");
    out.push_str("HDR_VERSION = 1.0\n");
    out.push_str("DATATYPE = QCDOC_CG_CHECKPOINT\n");
    out.push_str(&format!("OPERATOR = {}\n", ckpt.operator));
    out.push_str(&format!("ITERATIONS = {}\n", ckpt.iterations));
    out.push_str(&format!("CONVERGED = {}\n", u8::from(ckpt.converged)));
    out.push_str(&format!("APPLICATIONS = {}\n", ckpt.applications));
    out.push_str(&format!("REDUCTIONS = {}\n", ckpt.reductions));
    out.push_str(&format!("VECTOR_WORDS = {}\n", ckpt.x.len()));
    out.push_str(&format!("RESIDUAL_COUNT = {}\n", ckpt.residuals.len()));
    out.push_str(&format!("RSQ_BITS = {:x}\n", ckpt.rsq.to_bits()));
    out.push_str(&format!("BREF_BITS = {:x}\n", ckpt.bref.to_bits()));
    out.push_str(&format!("CHECKSUM = {checksum:x}\n"));
    out.push_str("FLOATING_POINT = IEEE64BIG\n");
    out.push_str("END_CKPT_HEADER\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

fn usize_field(header: &str, key: &str) -> Result<usize, IoError> {
    header_value(header, key)?
        .parse()
        .map_err(|_| IoError::BadHeader(format!("bad {key}")))
}

fn bits_field(header: &str, key: &str) -> Result<u64, IoError> {
    u64::from_str_radix(header_value(header, key)?, 16)
        .map_err(|_| IoError::BadHeader(format!("bad {key}")))
}

/// Deserialize and fully validate a checkpoint.
pub fn read_checkpoint(bytes: &[u8]) -> Result<CgCheckpoint, IoError> {
    let end_marker = b"END_CKPT_HEADER\n";
    let header_end = bytes
        .windows(end_marker.len())
        .position(|w| w == end_marker)
        .ok_or_else(|| IoError::BadHeader("no END_CKPT_HEADER".into()))?
        + end_marker.len();
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| IoError::BadHeader("non-utf8 header".into()))?;
    if header_value(header, "DATATYPE")? != "QCDOC_CG_CHECKPOINT" {
        return Err(IoError::BadHeader("wrong DATATYPE".into()));
    }
    let operator = header_value(header, "OPERATOR")?.to_string();
    let iterations = usize_field(header, "ITERATIONS")?;
    let converged = match header_value(header, "CONVERGED")? {
        "0" => false,
        "1" => true,
        _ => return Err(IoError::BadHeader("bad CONVERGED".into())),
    };
    let applications = usize_field(header, "APPLICATIONS")?;
    let reductions = usize_field(header, "REDUCTIONS")?;
    let vector_words = usize_field(header, "VECTOR_WORDS")?;
    let residual_count = usize_field(header, "RESIDUAL_COUNT")?;
    // Guard against absurd geometry before sizing the payload.
    let total_words = vector_words
        .checked_mul(3)
        .and_then(|n| n.checked_add(residual_count))
        .filter(|&n| n < (1 << 34))
        .ok_or_else(|| IoError::BadHeader("absurd VECTOR_WORDS".into()))?;
    let rsq = f64::from_bits(bits_field(header, "RSQ_BITS")?);
    let bref = f64::from_bits(bits_field(header, "BREF_BITS")?);
    let recorded_checksum = u32::from_str_radix(header_value(header, "CHECKSUM")?, 16)
        .map_err(|_| IoError::BadHeader("bad CHECKSUM".into()))?;

    let payload = &bytes[header_end..];
    let expect_len = total_words * 8;
    if payload.len() < expect_len {
        return Err(IoError::Truncated);
    }
    let payload = &payload[..expect_len];
    let computed = nersc_checksum(payload);
    if computed != recorded_checksum {
        return Err(IoError::Checksum {
            computed,
            recorded: recorded_checksum,
        });
    }
    let word_at = |i: usize| {
        u64::from_be_bytes(
            payload[i * 8..i * 8 + 8]
                .try_into()
                .expect("length checked"),
        )
    };
    let x: Vec<u64> = (0..vector_words).map(word_at).collect();
    let r: Vec<u64> = (vector_words..2 * vector_words).map(word_at).collect();
    let p: Vec<u64> = (2 * vector_words..3 * vector_words).map(word_at).collect();
    let residuals: Vec<f64> = (3 * vector_words..total_words)
        .map(|i| f64::from_bits(word_at(i)))
        .collect();
    Ok(CgCheckpoint {
        operator,
        iterations,
        converged,
        rsq,
        bref,
        residuals,
        applications,
        reductions,
        x,
        r,
        p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CgCheckpoint {
        CgCheckpoint {
            operator: "wilson".into(),
            iterations: 17,
            converged: false,
            rsq: 3.25e-5,
            bref: 1234.5,
            residuals: vec![0.5, 0.25, 0.03125],
            applications: 37,
            reductions: 36,
            x: (0..24).map(|i| (i as f64 * 0.125).to_bits()).collect(),
            r: (0..24).map(|i| (-(i as f64)).to_bits()).collect(),
            p: (0..24).map(|i| (i as f64 + 0.5).to_bits()).collect(),
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ckpt = sample();
        let bytes = write_checkpoint(&ckpt);
        let back = read_checkpoint(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.digest(), ckpt.digest());
    }

    #[test]
    fn header_is_human_readable() {
        let bytes = write_checkpoint(&sample());
        let text = String::from_utf8_lossy(&bytes[..330]);
        for needle in [
            "BEGIN_CKPT_HEADER",
            "QCDOC_CG_CHECKPOINT",
            "OPERATOR = wilson",
            "ITERATIONS = 17",
            "VECTOR_WORDS = 24",
            "IEEE64BIG",
        ] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn corruption_and_truncation_are_caught() {
        let bytes = write_checkpoint(&sample());
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 5] ^= 0x10;
        assert!(matches!(
            read_checkpoint(&flipped),
            Err(IoError::Checksum { .. })
        ));
        assert_eq!(
            read_checkpoint(&bytes[..bytes.len() - 8]),
            Err(IoError::Truncated)
        );
        let text = String::from_utf8_lossy(&bytes[..100]).into_owned();
        let mangled = text.replace("ITERATIONS", "ITERATION5");
        let mut out = mangled.into_bytes();
        out.extend_from_slice(&bytes[100..]);
        assert!(matches!(read_checkpoint(&out), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn digest_sees_every_field() {
        let a = sample();
        let mut b = a.clone();
        b.rsq = f64::from_bits(a.rsq.to_bits() ^ 1);
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.p[7] ^= 1;
        assert_ne!(a.digest(), c.digest());
        let mut d = a.clone();
        d.iterations += 1;
        assert_ne!(a.digest(), d.digest());
    }
}
