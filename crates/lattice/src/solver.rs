//! Conjugate gradient on the normal equations — "the conjugate gradient
//! solvers that dominate our calculations" (abstract).
//!
//! The Dirac operators are non-Hermitian, so we solve `M x = b` through the
//! Hermitian positive-definite normal equations `M†M x = M†b`. Each
//! iteration costs two operator applications, three vector updates and two
//! global reductions — the two inner products whose latency motivates the
//! SCU's hardware global sums (§2.2).

use crate::checkpoint::CgCheckpoint;
use crate::complex::C64;
use crate::dwf::{DwfDirac, DwfField};
use crate::field::{FermionField, StaggeredField};
use crate::real::Real;
use crate::staggered::{AsqtadDirac, StaggeredDirac};
use crate::wilson::WilsonDirac;
use qcdoc_telemetry::{FlightKind, NodeTelemetry, Phase};
use serde::{Deserialize, Serialize};

/// Vector-space operations CG needs from a field type.
pub trait KrylovVector: Clone {
    /// Hermitian inner product in a deterministic (site-order) association.
    fn dot(&self, rhs: &Self) -> C64;
    /// Squared L2 norm.
    fn norm_sqr(&self) -> f64;
    /// `self += a · rhs`.
    fn axpy(&mut self, a: C64, rhs: &Self);
    /// `self = a · self + rhs`.
    fn xpay(&mut self, a: C64, rhs: &Self);
    /// Set to zero.
    fn fill_zero(&mut self);
    /// The field's values as IEEE-754 bit patterns, in deterministic
    /// (site, then component) order — the checkpoint serialization.
    fn to_bits(&self) -> Vec<u64>;
    /// Restore values previously captured by [`KrylovVector::to_bits`].
    /// Panics if `bits` does not match the field's shape.
    fn load_bits(&mut self, bits: &[u64]);
    /// [`KrylovVector::to_bits`] into a caller-owned buffer — same
    /// contents and order, but the allocation is reused. The ABFT audit
    /// re-snapshots its rollback target every few iterations, so this
    /// keeps the clean path free of allocator traffic (whose cost is
    /// wildly machine-mood-dependent) after the first capture.
    fn store_bits(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.to_bits());
    }
    /// Linear content checksum: the plain sum of every scalar component.
    /// Linearity is what makes it ABFT-usable — the CG updates propagate
    /// it exactly up to roundoff: `s(x + a·y) = s(x) + a·s(y)` — so a
    /// cheaply-maintained running copy can audit the stored vector.
    fn checksum(&self) -> f64 {
        self.to_bits().iter().map(|&b| f64::from_bits(b)).sum()
    }
    /// Fused `self · rhs` and `rhs` content checksum in one traversal —
    /// bit-identical to [`KrylovVector::dot`] followed by
    /// [`KrylovVector::checksum`], because the two accumulators are
    /// independent and visit components in the same order. The ABFT
    /// audit calls this once per iteration, so an optimized single-pass
    /// implementation turns its extra sweep over the operator output
    /// into a ride-along on the dot product.
    fn dot_with_rhs_checksum(&self, rhs: &Self) -> (C64, f64) {
        (self.dot(rhs), rhs.checksum())
    }
    /// Fused content checksum and squared L2 norm in one traversal —
    /// bit-identical to the separate calls, for the same reason.
    fn checksum_norm_sqr(&self) -> (f64, f64) {
        (self.checksum(), self.norm_sqr())
    }
}

impl<T: Real> KrylovVector for FermionField<T> {
    fn dot(&self, rhs: &Self) -> C64 {
        FermionField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        FermionField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        FermionField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        FermionField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        self.scale(C64::ZERO)
    }
    fn checksum(&self) -> f64 {
        // Same values in the same order as the default, without the
        // `to_bits` allocation — this runs once per CG iteration when
        // ABFT is on, so it must stay off the heap.
        let mut s = 0.0;
        for i in self.lattice().sites() {
            let sp = self.site(i);
            for cv in &sp.0 {
                for z in &cv.0 {
                    s += f64::from_bits(z.re.bits64());
                    s += f64::from_bits(z.im.bits64());
                }
            }
        }
        s
    }
    fn dot_with_rhs_checksum(&self, rhs: &Self) -> (C64, f64) {
        // One traversal, two independent accumulators: `acc` mirrors
        // `FermionField::dot` and `s` mirrors `checksum`, each in the
        // same component order as the standalone method, so both results
        // are bit-identical to the unfused calls.
        assert_eq!(self.lattice(), rhs.lattice());
        let mut acc = C64::ZERO;
        let mut s = 0.0;
        for i in self.lattice().sites() {
            let sp = rhs.site(i);
            acc += self.site(i).dot(sp).to_c64();
            for cv in &sp.0 {
                for z in &cv.0 {
                    s += f64::from_bits(z.re.bits64());
                    s += f64::from_bits(z.im.bits64());
                }
            }
        }
        (acc, s)
    }
    fn checksum_norm_sqr(&self) -> (f64, f64) {
        let mut s = 0.0;
        let mut n = 0.0;
        for i in self.lattice().sites() {
            let sp = self.site(i);
            n += sp.norm_sqr().to_f64();
            for cv in &sp.0 {
                for z in &cv.0 {
                    s += f64::from_bits(z.re.bits64());
                    s += f64::from_bits(z.im.bits64());
                }
            }
        }
        (s, n)
    }
    fn to_bits(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.store_bits(&mut out);
        out
    }
    fn store_bits(&self, out: &mut Vec<u64>) {
        let lat = self.lattice();
        out.clear();
        out.reserve(lat.volume() * 24);
        for i in lat.sites() {
            let sp = self.site(i);
            for cv in &sp.0 {
                for z in &cv.0 {
                    out.push(z.re.bits64());
                    out.push(z.im.bits64());
                }
            }
        }
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let lat = self.lattice();
        assert_eq!(bits.len(), lat.volume() * 24, "checkpoint shape mismatch");
        let mut it = bits.iter();
        for i in lat.sites() {
            let sp = self.site_mut(i);
            for cv in &mut sp.0 {
                for z in &mut cv.0 {
                    z.re = T::from_bits64(*it.next().expect("length checked"));
                    z.im = T::from_bits64(*it.next().expect("length checked"));
                }
            }
        }
    }
}

impl<T: Real> KrylovVector for StaggeredField<T> {
    fn dot(&self, rhs: &Self) -> C64 {
        StaggeredField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        StaggeredField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        StaggeredField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        StaggeredField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        *self = StaggeredField::zero(self.lattice());
    }
    fn checksum(&self) -> f64 {
        let mut s = 0.0;
        for i in self.lattice().sites() {
            for z in &self.site(i).0 {
                s += f64::from_bits(z.re.bits64());
                s += f64::from_bits(z.im.bits64());
            }
        }
        s
    }
    fn to_bits(&self) -> Vec<u64> {
        let lat = self.lattice();
        let mut out = Vec::with_capacity(lat.volume() * 6);
        for i in lat.sites() {
            for z in &self.site(i).0 {
                out.push(z.re.bits64());
                out.push(z.im.bits64());
            }
        }
        out
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let lat = self.lattice();
        assert_eq!(bits.len(), lat.volume() * 6, "checkpoint shape mismatch");
        let mut it = bits.iter();
        for i in lat.sites() {
            for z in &mut self.site_mut(i).0 {
                z.re = T::from_bits64(*it.next().expect("length checked"));
                z.im = T::from_bits64(*it.next().expect("length checked"));
            }
        }
    }
}

impl<T: Real> KrylovVector for DwfField<T> {
    fn dot(&self, rhs: &Self) -> C64 {
        DwfField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        DwfField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        DwfField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        DwfField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        let lat = self.lattice();
        let ls = self.ls();
        *self = DwfField::zero(lat, ls);
    }
    fn checksum(&self) -> f64 {
        (0..self.ls()).map(|s| self.slice(s).checksum()).sum()
    }
    fn to_bits(&self) -> Vec<u64> {
        (0..self.ls())
            .flat_map(|s| self.slice(s).to_bits())
            .collect()
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let per_slice = self.lattice().volume() * 24;
        assert_eq!(
            bits.len(),
            per_slice * self.ls(),
            "checkpoint shape mismatch"
        );
        for s in 0..self.ls() {
            self.slice_mut(s)
                .load_bits(&bits[s * per_slice..(s + 1) * per_slice]);
        }
    }
}

/// A Dirac operator usable by the CG driver.
pub trait DiracOperator {
    /// The field type the operator acts on.
    type Field: KrylovVector;
    /// `out = M inp`.
    fn apply(&self, out: &mut Self::Field, inp: &Self::Field);
    /// `out = M† inp`.
    fn apply_dagger(&self, out: &mut Self::Field, inp: &Self::Field);
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;
}

impl<T: Real> DiracOperator for WilsonDirac<'_, T> {
    type Field = FermionField<T>;
    fn apply(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        WilsonDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        WilsonDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "wilson"
    }
}

impl<T: Real> DiracOperator for crate::clover::CloverDirac<'_, T> {
    type Field = FermionField<T>;
    fn apply(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        crate::clover::CloverDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        crate::clover::CloverDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "clover"
    }
}

impl<T: Real> DiracOperator for StaggeredDirac<'_, T> {
    type Field = StaggeredField<T>;
    fn apply(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        StaggeredDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        StaggeredDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "staggered"
    }
}

impl<T: Real> DiracOperator for AsqtadDirac<'_, T> {
    type Field = StaggeredField<T>;
    fn apply(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        AsqtadDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField<T>, inp: &StaggeredField<T>) {
        AsqtadDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "asqtad"
    }
}

impl<T: Real> DiracOperator for DwfDirac<'_, T> {
    type Field = DwfField<T>;
    fn apply(&self, out: &mut DwfField<T>, inp: &DwfField<T>) {
        DwfDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut DwfField<T>, inp: &DwfField<T>) {
        DwfDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "dwf"
    }
}

/// Conversion between a double-precision field and its single-precision
/// shadow — the two casts the reliable-update solver needs.
///
/// Implemented by the three `f64` field types with `Lo` set to the
/// matching `f32` field. `truncate` rounds every component to `f32`;
/// `add_promoted` widens the correction exactly (every `f32` is exactly
/// representable in `f64`) and accumulates it in double precision.
pub trait PrecisionCast {
    /// The single-precision shadow field type.
    type Lo: KrylovVector;
    /// Round each component to the low-precision type.
    fn truncate(&self) -> Self::Lo;
    /// `self += widen(lo)`, with the addition performed in `f64`.
    fn add_promoted(&mut self, lo: &Self::Lo);
}

impl PrecisionCast for FermionField {
    type Lo = FermionField<f32>;
    fn truncate(&self) -> FermionField<f32> {
        self.to_f32()
    }
    fn add_promoted(&mut self, lo: &FermionField<f32>) {
        let lat = self.lattice();
        assert_eq!(lat, lo.lattice());
        for i in lat.sites() {
            *self.site_mut(i) += lo.site(i).to_f64_spinor();
        }
    }
}

impl PrecisionCast for StaggeredField {
    type Lo = StaggeredField<f32>;
    fn truncate(&self) -> StaggeredField<f32> {
        self.to_f32()
    }
    fn add_promoted(&mut self, lo: &StaggeredField<f32>) {
        let lat = self.lattice();
        assert_eq!(lat, lo.lattice());
        for i in lat.sites() {
            *self.site_mut(i) += lo.site(i).to_c64_vec();
        }
    }
}

impl PrecisionCast for DwfField {
    type Lo = DwfField<f32>;
    fn truncate(&self) -> DwfField<f32> {
        self.to_f32()
    }
    fn add_promoted(&mut self, lo: &DwfField<f32>) {
        assert_eq!(self.ls(), lo.ls());
        for s in 0..self.ls() {
            self.slice_mut(s).add_promoted(lo.slice(s));
        }
    }
}

/// Stopping criteria for CG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgParams {
    /// Target relative residual `‖M†(b − Mx)‖ / ‖M†b‖`.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgParams {
    fn default() -> Self {
        CgParams {
            tolerance: 1e-8,
            max_iterations: 2000,
        }
    }
}

/// The outcome of a CG solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgReport {
    /// Operator name.
    pub operator: String,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Relative residual history (one entry per iteration).
    pub residuals: Vec<f64>,
    /// Final relative residual.
    pub final_residual: f64,
    /// Total operator applications (M or M†).
    pub operator_applications: usize,
    /// Global reductions performed (the inner products).
    pub global_reductions: usize,
}

/// Solve `M x = b` by CG on `M†M x = M†b`. `x` carries the initial guess
/// and receives the solution.
///
/// ```
/// use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
/// use qcdoc_lattice::solver::{solve_cgne, CgParams};
/// use qcdoc_lattice::wilson::WilsonDirac;
///
/// let lat = Lattice::new([2, 2, 2, 2]);
/// let gauge = GaugeField::hot(lat, 1);
/// let op = WilsonDirac::new(&gauge, 0.1);
/// let b = FermionField::gaussian(lat, 2);
/// let mut x = FermionField::zero(lat);
/// let report = solve_cgne(&op, &mut x, &b, CgParams::default());
/// assert!(report.converged);
/// ```
pub fn solve_cgne<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
) -> CgReport {
    let mut telem = NodeTelemetry::disabled(0);
    solve_cgne_traced(op, x, b, params, &mut telem, &SolverCosts::unit())
}

/// Logical cycle prices the traced solver charges per phase. The solver's
/// arithmetic is identical whatever the prices — they only scale the span
/// durations on the telemetry clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCosts {
    /// Cycles per operator application (`M` or `M†`).
    pub apply_cycles: u64,
    /// Cycles per block-vector update pass (axpy/xpay).
    pub linalg_cycles: u64,
    /// Cycles per global reduction (inner product or norm).
    pub reduction_cycles: u64,
}

impl SolverCosts {
    /// One cycle per phase — spans then simply count events.
    pub fn unit() -> SolverCosts {
        SolverCosts {
            apply_cycles: 1,
            linalg_cycles: 1,
            reduction_cycles: 1,
        }
    }

    /// Price the phases from flop counts at the machine's two
    /// floating-point operations per cycle, plus an explicit reduction
    /// latency (the network round, not arithmetic).
    pub fn from_counts(apply_flops: u64, linalg_flops: u64, reduction_cycles: u64) -> SolverCosts {
        SolverCosts {
            apply_cycles: apply_flops / 2,
            linalg_cycles: linalg_flops / 2,
            reduction_cycles,
        }
    }
}

/// [`solve_cgne`] with cycle-stamped tracing: each iteration decomposes
/// into `solver.apply` (two operator applications), `solver.reduce` (the
/// inner products) and `solver.linalg` (vector updates) spans, with
/// `solver_*` counters and gauges in the node's registry. The arithmetic
/// — and therefore the solution and report — is bit-identical to the
/// untraced entry point.
pub fn solve_cgne_traced<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> CgReport {
    solve_cgne_instrumented(op, x, b, params, telem, costs, 0, &mut Vec::new())
}

/// The complete loop-carried state of the CG recurrence, excluding the
/// solution vector `x` (which stays with the caller).
struct CgLoopState<F> {
    t: F,
    r: F,
    p: F,
    rsq: f64,
    bref: f64,
    iterations: usize,
    residuals: Vec<f64>,
    converged: bool,
    applications: usize,
    reductions: usize,
}

/// Capture the loop-carried state as a [`CgCheckpoint`]. Called only at
/// iteration boundaries, where `(x, r, p, rsq)` is exactly the state the
/// next iteration starts from.
fn snapshot<Op: DiracOperator>(
    op: &Op,
    x: &Op::Field,
    st: &CgLoopState<Op::Field>,
) -> CgCheckpoint {
    CgCheckpoint {
        operator: op.name().to_string(),
        iterations: st.iterations,
        converged: st.converged,
        rsq: st.rsq,
        bref: st.bref,
        residuals: st.residuals.clone(),
        applications: st.applications,
        reductions: st.reductions,
        x: x.to_bits(),
        r: st.r.to_bits(),
        p: st.p.to_bits(),
    }
}

/// Refresh an existing checkpoint in place with the current loop-carried
/// state — field-for-field identical to a fresh [`snapshot`], but the
/// vector and residual buffers are reused. The ABFT audit replaces its
/// rollback target on every clean verification, so reuse keeps the
/// audit's cost a pure sweep with no allocator round trips.
fn snapshot_reuse<Op: DiracOperator>(
    op: &Op,
    x: &Op::Field,
    st: &CgLoopState<Op::Field>,
    ck: &mut CgCheckpoint,
) {
    op.name().clone_into(&mut ck.operator);
    ck.iterations = st.iterations;
    ck.converged = st.converged;
    ck.rsq = st.rsq;
    ck.bref = st.bref;
    ck.residuals.clear();
    ck.residuals.extend_from_slice(&st.residuals);
    ck.applications = st.applications;
    ck.reductions = st.reductions;
    x.store_bits(&mut ck.x);
    st.r.store_bits(&mut ck.r);
    st.p.store_bits(&mut ck.p);
}

/// Configuration for [`solve_cgne_abft`]'s checksum audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbftParams {
    /// Verify the running checksums against the stored vectors every
    /// this many iterations. The clean-run cost is three content sums
    /// per verification; smaller intervals bound the replay distance.
    pub interval: usize,
    /// Mismatch threshold separating roundoff drift from corruption,
    /// relative to `1 + |checksum| + ‖vector‖`.
    pub tolerance: f64,
    /// Rollbacks allowed before the solve gives up — a bound against
    /// persistent (non-transient) corruption replaying forever.
    pub max_rollbacks: u32,
}

impl Default for AbftParams {
    fn default() -> Self {
        AbftParams {
            interval: 8,
            tolerance: 1e-8,
            max_rollbacks: 4,
        }
    }
}

/// What [`solve_cgne_abft`]'s audit observed during a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AbftReport {
    /// Checksum verifications performed (periodic plus the exit audit).
    pub verifications: u64,
    /// Verifications that found a corrupted vector.
    pub detections: u64,
    /// Rollbacks to the last verified state.
    pub rollbacks: u64,
    /// Whether the rollback budget ran out with corruption still present.
    pub exhausted: bool,
}

/// Which loop-carried vector a [`SolverTamper`] strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperTarget {
    /// The accumulating solution.
    X,
    /// The recurrence residual.
    R,
    /// The search direction.
    P,
}

/// A seeded silent-data-corruption strike against solver state — the
/// solver-level analogue of `qcdoc-fault`'s memory flips. At the end of
/// iteration `iteration`, `bits` is XORed into word `word` of the target
/// vector's IEEE-754 image, after the running checksums were updated:
/// exactly the store-side corruption the ABFT audit exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverTamper {
    /// One-based iteration count at which the strike lands.
    pub iteration: usize,
    /// The vector struck.
    pub target: TamperTarget,
    /// Word index into the vector's bit image (taken modulo its length).
    pub word: usize,
    /// Bit pattern XORed into that word.
    pub bits: u64,
}

/// Running-checksum state threaded through [`cg_loop`] when ABFT is on.
struct AbftTracker {
    interval: usize,
    tolerance: f64,
    s_x: f64,
    s_r: f64,
    s_p: f64,
    verifications: u64,
    detected_at: Option<usize>,
    tamper: Option<SolverTamper>,
}

impl AbftTracker {
    /// Reset the running checksums to the stored vectors' actual sums —
    /// done after every successful verification so roundoff drift never
    /// accumulates past one audit window.
    fn rebaseline<F: KrylovVector>(&mut self, x: &F, r: &F, p: &F) {
        self.s_x = x.checksum();
        self.s_r = r.checksum();
        self.s_p = p.checksum();
    }

    /// Audit the stored vectors against the carried checksums. Each
    /// vector's fresh checksum and norm come from one fused traversal;
    /// on a passing audit with `adopt` set, those same freshly measured
    /// sums become the new baseline (the periodic audit re-baselines to
    /// absorb a window's roundoff drift; the exit audit does not).
    fn audit<F: KrylovVector>(&mut self, x: &F, r: &F, p: &F, adopt: bool) -> bool {
        let close = |run: f64, (fresh, nrm_sqr): (f64, f64)| {
            // The cap keeps the threshold finite when corruption blows a
            // component up toward overflow — an infinite scale would make
            // the very largest strikes pass the audit. A NaN difference
            // (corruption propagated into the arithmetic) compares false.
            let scale = (1.0 + fresh.abs() + nrm_sqr.sqrt()).min(1e150);
            (run - fresh).abs() <= self.tolerance * scale
        };
        let (mx, mr, mp) = (
            x.checksum_norm_sqr(),
            r.checksum_norm_sqr(),
            p.checksum_norm_sqr(),
        );
        let ok = close(self.s_x, mx) && close(self.s_r, mr) && close(self.s_p, mp);
        if ok && adopt {
            self.s_x = mx.0;
            self.s_r = mr.0;
            self.s_p = mp.0;
        }
        ok
    }
}

/// The CG iteration: identical arithmetic and span sequence whether
/// entered fresh or from a restored checkpoint. The checkpoint hook fires
/// at iteration boundaries and only *reads* state, so an enabled interval
/// cannot perturb a single bit of the recurrence. The same holds for the
/// ABFT audit: the running checksums are carried *beside* the recurrence
/// and never feed back into it, so a clean audited solve is bit-identical
/// to a plain one.
#[allow(clippy::too_many_arguments)]
fn cg_loop<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    st: &mut CgLoopState<Op::Field>,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
    checkpoint_interval: usize,
    sink: &mut Vec<CgCheckpoint>,
    abft: &mut Option<AbftTracker>,
) {
    while !st.converged && st.iterations < params.max_iterations {
        let iter_begin = telem.clock();
        // q = M†M p.
        let apply = telem.begin();
        op.apply(&mut st.t, &st.p);
        let mut q = st.p.clone();
        op.apply_dagger(&mut q, &st.t);
        st.applications += 2;
        telem.advance(2 * costs.apply_cycles);
        telem.end_with(apply, "solver.apply", Phase::Compute, 2);

        let reduce = telem.begin();
        // With the audit on, `q`'s content checksum rides along on the
        // dot product's traversal — same components, same order, so `pq`
        // is bit-identical either way and the audit's per-iteration
        // extra pass over `q` disappears.
        let (pq, s_q) = match abft {
            Some(_) => {
                let (d, s) = st.p.dot_with_rhs_checksum(&q);
                (d.re, Some(s))
            }
            None => (st.p.dot(&q).re, None),
        };
        st.reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);
        if pq <= 0.0 {
            // Operator lost positivity (numerically singular system).
            break;
        }
        let linalg = telem.begin();
        let alpha = st.rsq / pq;
        x.axpy(C64::real(alpha), &st.p);
        st.r.axpy(C64::real(-alpha), &q);
        telem.advance(2 * costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 2);

        let reduce = telem.begin();
        let new_rsq = st.r.norm_sqr();
        st.reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);

        st.iterations += 1;
        let rel = (new_rsq / st.bref).sqrt();
        st.residuals.push(rel);
        st.converged = rel <= params.tolerance;

        let linalg = telem.begin();
        let beta = new_rsq / st.rsq;
        st.p.xpay(C64::real(beta), &st.r);
        st.rsq = new_rsq;
        telem.advance(costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 1);
        telem.counter_add("solver_iterations", 1);
        // Per-iteration cycle distribution: the tail (p99) is what the
        // benchmark judge gates, so a single slow iteration cannot hide
        // behind a healthy mean.
        telem.observe("solver_iteration_cycles", telem.clock() - iter_begin);

        if let Some(ab) = abft.as_mut() {
            // Mirror this iteration's vector updates on the running
            // checksums. `q` is regenerated from `p` every iteration, so
            // its sum was taken fresh alongside the dot product; the
            // loop-carried vectors propagate theirs by the same
            // `alpha`/`beta` the recurrence used.
            let s_q = s_q.expect("checksum computed whenever the audit is on");
            ab.s_x += alpha * ab.s_p;
            ab.s_r -= alpha * s_q;
            ab.s_p = ab.s_r + beta * ab.s_p;

            // Seeded SDC strike: corrupt the stored vector *after* the
            // checksums were carried forward — the audit's whole job.
            if let Some(t) = ab.tamper {
                if t.iteration == st.iterations {
                    ab.tamper = None;
                    let target = match t.target {
                        TamperTarget::X => &mut *x,
                        TamperTarget::R => &mut st.r,
                        TamperTarget::P => &mut st.p,
                    };
                    let mut bits = target.to_bits();
                    let w = t.word % bits.len();
                    bits[w] ^= t.bits;
                    target.load_bits(&bits);
                }
            }

            if st.iterations % ab.interval == 0 {
                ab.verifications += 1;
                telem.counter_add("solver_abft_verifications", 1);
                if ab.audit(x, &st.r, &st.p, true) {
                    // Verified state becomes the rollback target; the
                    // passing audit adopted its measured sums as the new
                    // baseline, absorbing one window's roundoff drift.
                    sink.truncate(1);
                    match sink.first_mut() {
                        Some(ck) => snapshot_reuse(op, x, st, ck),
                        None => sink.push(snapshot(op, x, st)),
                    }
                } else {
                    ab.detected_at = Some(st.iterations);
                    telem.counter_add("solver_abft_detections", 1);
                    telem.flight(
                        FlightKind::FaultInjected,
                        "abft_checksum_mismatch",
                        st.iterations as u64,
                        ab.verifications,
                    );
                    return;
                }
            }
        }

        if checkpoint_interval > 0 && st.iterations % checkpoint_interval == 0 {
            sink.push(snapshot(op, x, st));
            telem.counter_add("solver_checkpoint_writes", 1);
            telem.flight(
                FlightKind::Checkpoint,
                "cg_interval",
                st.iterations as u64,
                sink.len() as u64,
            );
        }
    }
}

/// Close out a solve: publish the end-of-run counters and assemble the
/// report.
fn cg_report<Op: DiracOperator>(
    op: &Op,
    st: CgLoopState<Op::Field>,
    telem: &mut NodeTelemetry,
) -> CgReport {
    let final_residual = st
        .residuals
        .last()
        .copied()
        .unwrap_or((st.rsq / st.bref).sqrt());
    telem.counter_add("solver_operator_applications", st.applications as u64);
    telem.counter_add("solver_global_reductions", st.reductions as u64);
    telem.gauge_set("solver_final_residual", final_residual);
    telem.gauge_set("solver_converged", if st.converged { 1.0 } else { 0.0 });
    CgReport {
        operator: op.name().to_string(),
        iterations: st.iterations,
        converged: st.converged,
        final_residual,
        residuals: st.residuals,
        operator_applications: st.applications,
        global_reductions: st.reductions,
    }
}

/// The CG setup phase: initial residual, reference scale and first
/// search direction. Every entry point that starts a solve from scratch
/// lands here; the returned state is exactly what [`cg_loop`] consumes.
fn cg_setup<Op: DiracOperator>(
    op: &Op,
    x: &Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> CgLoopState<Op::Field> {
    let mut applications = 0usize;
    let mut reductions = 0usize;

    // r = M†(b − Mx).
    let setup = telem.begin();
    let mut t = b.clone();
    op.apply(&mut t, x);
    applications += 1;
    let mut bmx = b.clone();
    bmx.axpy(C64::real(-1.0), &t);
    let mut r = b.clone();
    op.apply_dagger(&mut r, &bmx);
    applications += 1;

    // Reference scale: ‖M†b‖².
    let mut mdag_b = b.clone();
    op.apply_dagger(&mut mdag_b, b);
    applications += 1;
    telem.advance(3 * costs.apply_cycles + costs.linalg_cycles);
    telem.end_with(setup, "solver.setup", Phase::Compute, 3);

    let reduce = telem.begin();
    let bref = mdag_b.norm_sqr().max(f64::MIN_POSITIVE);
    reductions += 1;

    let p = r.clone();
    let rsq = r.norm_sqr();
    reductions += 1;
    telem.advance(2 * costs.reduction_cycles);
    telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 2);

    let converged = (rsq / bref).sqrt() <= params.tolerance;
    CgLoopState {
        t,
        r,
        p,
        rsq,
        bref,
        iterations: 0,
        residuals: Vec::new(),
        converged,
        applications,
        reductions,
    }
}

/// The full solver: setup phase, iteration loop with an optional
/// checkpoint hook, report. Every public CG entry point lands here.
#[allow(clippy::too_many_arguments)]
fn solve_cgne_instrumented<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
    checkpoint_interval: usize,
    sink: &mut Vec<CgCheckpoint>,
) -> CgReport {
    let mut st = cg_setup(op, x, b, params, telem, costs);
    cg_loop(
        op,
        x,
        &mut st,
        params,
        telem,
        costs,
        checkpoint_interval,
        sink,
        &mut None,
    );
    cg_report(op, st, telem)
}

/// [`solve_cgne`] with periodic checkpointing: every `interval`-th
/// iteration boundary pushes a [`CgCheckpoint`] into `sink` (`interval =
/// 0` disables the hook entirely). The hook only reads solver state, so
/// the solution, residual history, and report are **bit-identical** to an
/// uncheckpointed solve.
pub fn solve_cgne_checkpointed<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    interval: usize,
    sink: &mut Vec<CgCheckpoint>,
) -> CgReport {
    let mut telem = NodeTelemetry::disabled(0);
    solve_cgne_instrumented(
        op,
        x,
        b,
        params,
        &mut telem,
        &SolverCosts::unit(),
        interval,
        sink,
    )
}

/// Resume a solve from a checkpoint. `template` supplies the field shape
/// (any field on the right lattice — its values are overwritten); the
/// returned solution and report are **bit-identical** to those of a solve
/// that ran uninterrupted: same residual history (checkpointed prefix +
/// freshly computed tail), same totals, same solution bits.
pub fn resume_cgne<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
    params: CgParams,
) -> (Op::Field, CgReport) {
    let mut telem = NodeTelemetry::disabled(0);
    resume_cgne_traced(op, template, ckpt, params, &mut telem, &SolverCosts::unit())
}

/// [`resume_cgne`] with cycle-stamped tracing (the same span sequence the
/// live loop emits).
pub fn resume_cgne_traced<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> (Op::Field, CgReport) {
    let (mut x, mut st) = restore_state(op, template, ckpt);
    telem.counter_add("solver_checkpoint_restores", 1);
    telem.flight(
        FlightKind::Resume,
        "checkpoint_restore",
        st.iterations as u64,
        0,
    );
    cg_loop(
        op,
        &mut x,
        &mut st,
        params,
        telem,
        costs,
        0,
        &mut Vec::new(),
        &mut None,
    );
    let report = cg_report(op, st, telem);
    (x, report)
}

/// Why a checkpoint cannot be resumed against a given operator and
/// field template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint was taken under a different Dirac operator.
    OperatorMismatch {
        /// Operator name recorded in the checkpoint.
        expected: String,
        /// Operator offered for the resume.
        found: String,
    },
    /// The template field's global degrees of freedom do not match the
    /// checkpointed vectors — the checkpoint belongs to a different
    /// problem, not merely a different partition shape.
    ShapeMismatch {
        /// Bit-pattern words per vector in the checkpoint.
        expected: usize,
        /// Bit-pattern words of the offered template field.
        found: usize,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::OperatorMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under operator {expected}, cannot resume under {found}"
            ),
            ResumeError::ShapeMismatch { expected, found } => write!(
                f,
                "checkpoint vectors hold {expected} words but the template field holds {found}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// [`resume_cgne`] with the panics turned into errors — the entry point
/// the scheduler's preemption protocol uses. A preempted job's
/// checkpoint may legitimately resume on a partition of a *different
/// shape* (the checkpoint serialises the global lattice in a
/// machine-independent order), so the only hard requirements are the
/// operator identity and the global problem size; both are validated
/// here instead of asserted deep in the restore path.
pub fn resume_cgne_on<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
    params: CgParams,
) -> Result<(Op::Field, CgReport), ResumeError> {
    if ckpt.operator != op.name() {
        return Err(ResumeError::OperatorMismatch {
            expected: ckpt.operator.clone(),
            found: op.name().to_string(),
        });
    }
    let found = template.to_bits().len();
    if ckpt.x.len() != found {
        return Err(ResumeError::ShapeMismatch {
            expected: ckpt.x.len(),
            found,
        });
    }
    Ok(resume_cgne(op, template, ckpt, params))
}

/// Rebuild `(x, loop state)` from a checkpoint. `template` supplies the
/// field shape — its values are overwritten. Shared by the resume entry
/// points and the ABFT rollback path.
fn restore_state<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
) -> (Op::Field, CgLoopState<Op::Field>) {
    assert_eq!(
        ckpt.operator,
        op.name(),
        "checkpoint was taken under a different operator"
    );
    let mut x = template.clone();
    x.load_bits(&ckpt.x);
    let mut r = template.clone();
    r.load_bits(&ckpt.r);
    let mut p = template.clone();
    p.load_bits(&ckpt.p);
    let st = CgLoopState {
        // The scratch vector is fully overwritten by the first operator
        // application, so any same-shape field restores it.
        t: template.clone(),
        r,
        p,
        rsq: ckpt.rsq,
        bref: ckpt.bref,
        iterations: ckpt.iterations,
        residuals: ckpt.residuals.clone(),
        converged: ckpt.converged,
        applications: ckpt.applications,
        reductions: ckpt.reductions,
    };
    (x, st)
}

/// [`solve_cgne`] hardened against silent data corruption by an
/// algorithm-based (ABFT) checksum audit — the solver-level third layer
/// of the machine's data-integrity defense, above the memory ECC and the
/// links' end-to-end block checksums.
///
/// A running content checksum is carried for each loop-carried vector
/// (`x`, `r`, `p`), propagated every iteration by the same `alpha`/`beta`
/// the recurrence uses at O(1) cost, and compared against the stored
/// vectors every [`AbftParams::interval`] iterations. Agreement makes the
/// verified state the rollback target; a mismatch means some store was
/// silently corrupted since the last audit, and the solve rolls back and
/// replays from the target. A final audit guards the exit path, so
/// corruption striking after the last periodic check cannot escape into
/// the returned solution.
///
/// On a clean run the audit only *reads* solver state, so the solution
/// and report are **bit-identical** to [`solve_cgne`]'s. A transient
/// corruption (seeded here via `tamper`) is detected and healed: the
/// replayed iterations are bit-identical to a never-corrupted solve.
pub fn solve_cgne_abft<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    abft: AbftParams,
    tamper: Option<SolverTamper>,
    telem: &mut NodeTelemetry,
) -> (CgReport, AbftReport) {
    let costs = SolverCosts::unit();
    let mut st = cg_setup(op, x, b, params, telem, &costs);
    let mut tracker = AbftTracker {
        interval: abft.interval.max(1),
        tolerance: abft.tolerance,
        s_x: 0.0,
        s_r: 0.0,
        s_p: 0.0,
        verifications: 0,
        detected_at: None,
        tamper,
    };
    tracker.rebaseline(x, &st.r, &st.p);
    // The iteration-0 state is the initial rollback target; successful
    // audits inside the loop replace it with fresher verified states.
    let mut verified = vec![snapshot(op, x, &st)];
    let mut report = AbftReport::default();
    let mut audit = Some(tracker);
    loop {
        cg_loop(
            op,
            x,
            &mut st,
            params,
            telem,
            &costs,
            0,
            &mut verified,
            &mut audit,
        );
        let ab = audit.as_mut().expect("the audit tracker persists");
        let mut detected = ab.detected_at.take();
        if detected.is_none() {
            // Clean loop exit — one final audit covers the iterations
            // since the last periodic verification.
            ab.verifications += 1;
            telem.counter_add("solver_abft_verifications", 1);
            if !ab.audit(x, &st.r, &st.p, false) {
                detected = Some(st.iterations);
                telem.counter_add("solver_abft_detections", 1);
            }
        }
        let Some(_) = detected else {
            break;
        };
        report.detections += 1;
        if report.rollbacks >= abft.max_rollbacks as u64 {
            report.exhausted = true;
            break;
        }
        report.rollbacks += 1;
        telem.counter_add("solver_abft_rollbacks", 1);
        let target = verified.last().expect("the baseline is always present");
        telem.flight(
            FlightKind::Rollback,
            "abft",
            st.iterations as u64,
            target.iterations as u64,
        );
        let (rx, rst) = restore_state(op, b, target);
        *x = rx;
        st = rst;
        let ab = audit.as_mut().expect("the audit tracker persists");
        ab.rebaseline(x, &st.r, &st.p);
    }
    report.verifications = audit.expect("the audit tracker persists").verifications;
    (cg_report(op, st, telem), report)
}

/// Stopping criteria for the mixed-precision (defect-correction) solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedCgParams {
    /// Target relative residual `‖M†(b − Mx)‖ / ‖M†b‖`, evaluated in
    /// **double** precision. Same meaning as [`CgParams::tolerance`].
    pub tolerance: f64,
    /// Cap on outer (double-precision reliable-update) cycles.
    pub max_outer: usize,
    /// Relative tolerance for each inner single-precision solve. Must sit
    /// above the `f32` rounding floor (~1e-7) to leave the inner CG a
    /// reachable target.
    pub inner_tolerance: f64,
    /// Iteration cap for each inner single-precision solve.
    pub max_inner: usize,
}

impl Default for MixedCgParams {
    fn default() -> Self {
        MixedCgParams {
            tolerance: 1e-8,
            max_outer: 50,
            inner_tolerance: 1e-5,
            max_inner: 2000,
        }
    }
}

/// The outcome of a mixed-precision solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedCgReport {
    /// Operator name (from the double-precision operator).
    pub operator: String,
    /// Outer reliable-update cycles performed.
    pub outer_iterations: usize,
    /// Inner single-precision CG iterations, one entry per outer cycle.
    pub inner_iterations: Vec<usize>,
    /// Sum of [`MixedCgReport::inner_iterations`].
    pub total_inner_iterations: usize,
    /// Whether the double-precision tolerance was reached.
    pub converged: bool,
    /// True (double-precision) relative residual after each outer cycle,
    /// including the initial one before any correction.
    pub residuals: Vec<f64>,
    /// Final true relative residual.
    pub final_residual: f64,
    /// Double-precision operator applications (`M` or `M†`).
    pub high_precision_applications: usize,
    /// Single-precision operator applications inside the inner solves.
    pub low_precision_applications: usize,
}

/// Solve `M x = b` to **double-precision** tolerance with the bulk of the
/// arithmetic in **single** precision — the reliable-update /
/// defect-correction scheme the paper's single-precision benchmark tables
/// assume (§4: single-precision sustained figures are "slightly higher"
/// because half the memory traffic crosses the EDRAM interface).
///
/// Each outer cycle recomputes the true residual `d = b − Mx` in `f64`,
/// truncates it to `f32`, solves the correction system `M e = d` with the
/// single-precision operator to a loose tolerance, and accumulates
/// `x += e` in `f64`. The `f64` residual recomputation bounds the error
/// the `f32` inner solve can leave behind, so the outer loop converges to
/// the full double-precision tolerance even though ~90% of operator
/// applications run at half the memory traffic.
///
/// Determinism: both the outer recomputation and the inner CG are
/// bit-deterministic (fixed site-order reductions), so the converged `x`
/// is bit-identical across reruns.
///
/// `op` and `op_lo` must represent the same operator at the two widths —
/// typically built from a gauge field and its [`crate::field::GaugeField::to_f32`]
/// truncation with identical mass parameters.
///
/// ```
/// use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
/// use qcdoc_lattice::solver::{solve_cgne_mixed, MixedCgParams};
/// use qcdoc_lattice::wilson::WilsonDirac;
///
/// let lat = Lattice::new([2, 2, 2, 2]);
/// let gauge = GaugeField::hot(lat, 1);
/// let gauge32 = gauge.to_f32();
/// let op = WilsonDirac::new(&gauge, 0.1);
/// let op32 = WilsonDirac::new(&gauge32, 0.1);
/// let b = FermionField::gaussian(lat, 2);
/// let mut x = FermionField::zero(lat);
/// let report = solve_cgne_mixed(&op, &op32, &mut x, &b, MixedCgParams::default());
/// assert!(report.converged);
/// assert!(report.low_precision_applications > report.high_precision_applications);
/// ```
pub fn solve_cgne_mixed<OpHi, OpLo>(
    op: &OpHi,
    op_lo: &OpLo,
    x: &mut OpHi::Field,
    b: &OpHi::Field,
    params: MixedCgParams,
) -> MixedCgReport
where
    OpHi: DiracOperator,
    OpHi::Field: PrecisionCast<Lo = OpLo::Field>,
    OpLo: DiracOperator,
{
    let mut hi_applications = 0usize;
    let mut lo_applications = 0usize;
    let mut inner_iterations = Vec::new();
    let mut residuals = Vec::new();

    // Reference scale ‖M†b‖², recomputed per call so a resumed solve sees
    // exactly the value the uninterrupted one used.
    let mut mdag_b = b.clone();
    op.apply_dagger(&mut mdag_b, b);
    hi_applications += 1;
    let bref = mdag_b.norm_sqr().max(f64::MIN_POSITIVE);

    let inner_params = CgParams {
        tolerance: params.inner_tolerance,
        max_iterations: params.max_inner,
    };

    let mut converged = false;
    let mut outer = 0usize;
    loop {
        // True residual, in double precision: rn = M†(b − Mx).
        let mut t = b.clone();
        op.apply(&mut t, x);
        let mut d = b.clone();
        d.axpy(C64::real(-1.0), &t);
        let mut rn = b.clone();
        op.apply_dagger(&mut rn, &d);
        hi_applications += 2;
        let rel = (rn.norm_sqr() / bref).sqrt();
        residuals.push(rel);
        if rel <= params.tolerance {
            converged = true;
            break;
        }
        // Stagnation guard: once the defect stops shrinking (the f32
        // correction is below the f64 residual's resolution), more outer
        // cycles cannot help.
        if residuals.len() >= 3 {
            let n = residuals.len();
            if residuals[n - 1] >= residuals[n - 2] && residuals[n - 2] >= residuals[n - 3] {
                break;
            }
        }
        if outer == params.max_outer {
            break;
        }

        // Correction system M e = d, solved in single precision.
        let d_lo = d.truncate();
        let mut e_lo = d_lo.clone();
        e_lo.fill_zero();
        let inner = solve_cgne(op_lo, &mut e_lo, &d_lo, inner_params);
        lo_applications += inner.operator_applications;
        inner_iterations.push(inner.iterations);

        // Accumulate the correction in double precision.
        x.add_promoted(&e_lo);
        outer += 1;
    }

    let final_residual = residuals.last().copied().unwrap_or(f64::INFINITY);
    let total_inner_iterations = inner_iterations.iter().sum();
    MixedCgReport {
        operator: op.name().to_string(),
        outer_iterations: outer,
        inner_iterations,
        total_inner_iterations,
        converged,
        residuals,
        final_residual,
        high_precision_applications: hi_applications,
        low_precision_applications: lo_applications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{GaugeField, Lattice};
    use crate::staggered::{AsqtadCoeffs, AsqtadLinks};

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    fn residual_of<Op: DiracOperator>(op: &Op, x: &Op::Field, b: &Op::Field) -> f64 {
        let mut mx = b.clone();
        op.apply(&mut mx, x);
        let mut r = b.clone();
        r.axpy(C64::real(-1.0), &mx);
        (r.norm_sqr() / b.norm_sqr()).sqrt()
    }

    #[test]
    fn wilson_cg_converges_and_solves() {
        let gauge = GaugeField::hot(lat(), 100);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 101);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(
            report.converged,
            "CG did not converge: {:?}",
            report.final_residual
        );
        assert!(residual_of(&op, &x, &b) < 1e-6);
        assert_eq!(report.operator_applications, 3 + 2 * report.iterations);
        // Two reductions per iteration plus setup.
        assert_eq!(report.global_reductions, 2 + 2 * report.iterations);
    }

    #[test]
    fn clover_cg_converges() {
        let gauge = GaugeField::hot(lat(), 102);
        let op = crate::clover::CloverDirac::new(&gauge, 0.12, 1.0);
        let b = FermionField::gaussian(lat(), 103);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn staggered_cg_converges() {
        let gauge = GaugeField::hot(lat(), 104);
        let op = StaggeredDirac::new(&gauge, 0.2);
        let b = StaggeredField::gaussian(lat(), 105);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn asqtad_cg_converges() {
        let gauge = GaugeField::hot(lat(), 106);
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let op = AsqtadDirac::new(&links, 0.2);
        let b = StaggeredField::gaussian(lat(), 107);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn dwf_cg_converges() {
        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 108);
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 109);
        let mut x = crate::dwf::DwfField::zero(small, 4);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged, "final residual {}", report.final_residual);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn residual_history_is_monotone_overall() {
        // CG residuals can locally oscillate, but the trend must fall by
        // orders of magnitude from start to finish.
        let gauge = GaugeField::hot(lat(), 110);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 111);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.residuals.first().unwrap() / report.residuals.last().unwrap() > 1e4);
    }

    #[test]
    fn solver_is_bit_deterministic() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let r1 = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let r2 = solve_cgne(&op, &mut x2, &b, CgParams::default());
        assert_eq!(
            x1.fingerprint(),
            x2.fingerprint(),
            "bitwise reproducibility"
        );
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn abft_clean_run_is_bit_identical_to_plain_cg() {
        // The audit only reads solver state: same bits, same report.
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut telem = NodeTelemetry::disabled(0);
        let (audited, abft) = solve_cgne_abft(
            &op,
            &mut x2,
            &b,
            CgParams::default(),
            AbftParams::default(),
            None,
            &mut telem,
        );
        assert_eq!(x1.fingerprint(), x2.fingerprint(), "the audit changed bits");
        assert_eq!(plain, audited);
        assert!(abft.verifications >= 1);
        assert_eq!(abft.detections, 0);
        assert_eq!(abft.rollbacks, 0);
        assert!(!abft.exhausted);
    }

    #[test]
    fn abft_detects_tamper_and_recovers_bit_identically() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut clean = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut clean, &b, CgParams::default());
        assert!(plain.iterations > 12, "need room to strike mid-solve");
        for target in [TamperTarget::X, TamperTarget::R, TamperTarget::P] {
            // Flip the exponent's top bit of one stored word at iteration
            // 11 — three periodic audits later catches it in every case.
            let tamper = SolverTamper {
                iteration: 11,
                target,
                word: 5,
                bits: 1 << 62,
            };
            let mut x = FermionField::zero(lat());
            let mut telem = NodeTelemetry::disabled(0);
            let (report, abft) = solve_cgne_abft(
                &op,
                &mut x,
                &b,
                CgParams::default(),
                AbftParams::default(),
                Some(tamper),
                &mut telem,
            );
            assert!(abft.detections >= 1, "{target:?}: corruption missed");
            assert!(abft.rollbacks >= 1, "{target:?}: no rollback");
            assert!(!abft.exhausted, "{target:?}");
            assert!(report.converged, "{target:?}");
            assert_eq!(
                x.fingerprint(),
                clean.fingerprint(),
                "{target:?}: the replayed solve must be bit-identical"
            );
        }
    }

    #[test]
    fn abft_exit_audit_catches_corruption_past_the_last_interval() {
        // Interval longer than the whole solve: no periodic audit ever
        // fires, so only the exit audit stands between the tamper and the
        // returned solution.
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut clean = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut clean, &b, CgParams::default());
        let tamper = SolverTamper {
            iteration: plain.iterations - 1,
            target: TamperTarget::X,
            word: 0,
            bits: 1 << 62,
        };
        let mut x = FermionField::zero(lat());
        let mut telem = NodeTelemetry::disabled(0);
        let (report, abft) = solve_cgne_abft(
            &op,
            &mut x,
            &b,
            CgParams::default(),
            AbftParams {
                interval: 10_000,
                ..AbftParams::default()
            },
            Some(tamper),
            &mut telem,
        );
        assert_eq!(abft.detections, 1);
        assert_eq!(abft.rollbacks, 1, "rollback to the iteration-0 baseline");
        assert!(report.converged);
        assert_eq!(x.fingerprint(), clean.fingerprint());
    }

    #[test]
    fn abft_zero_rollback_budget_reports_exhaustion() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let tamper = SolverTamper {
            iteration: 11,
            target: TamperTarget::R,
            word: 2,
            bits: 1 << 62,
        };
        let mut x = FermionField::zero(lat());
        let mut telem = NodeTelemetry::disabled(0);
        let (_, abft) = solve_cgne_abft(
            &op,
            &mut x,
            &b,
            CgParams::default(),
            AbftParams {
                max_rollbacks: 0,
                ..AbftParams::default()
            },
            Some(tamper),
            &mut telem,
        );
        assert_eq!(abft.detections, 1);
        assert_eq!(abft.rollbacks, 0);
        assert!(abft.exhausted, "the budget must be reported as spent");
    }

    #[test]
    fn abft_counters_reach_telemetry() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let tamper = SolverTamper {
            iteration: 11,
            target: TamperTarget::P,
            word: 9,
            bits: 1 << 62,
        };
        let mut x = FermionField::zero(lat());
        let mut telem = NodeTelemetry::with_ring(0, 1 << 12);
        let (_, abft) = solve_cgne_abft(
            &op,
            &mut x,
            &b,
            CgParams::default(),
            AbftParams::default(),
            Some(tamper),
            &mut telem,
        );
        let m = telem.metrics();
        assert_eq!(
            m.counter("solver_abft_verifications", &[]),
            abft.verifications
        );
        assert_eq!(m.counter("solver_abft_detections", &[]), abft.detections);
        assert_eq!(m.counter("solver_abft_rollbacks", &[]), abft.rollbacks);
        assert!(abft.detections >= 1);
    }

    #[test]
    fn traced_solver_is_bit_identical_and_counts_phases() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut telem = NodeTelemetry::with_ring(0, 1 << 16);
        let traced = solve_cgne_traced(
            &op,
            &mut x2,
            &b,
            CgParams::default(),
            &mut telem,
            &SolverCosts::from_counts(1320, 48, 600),
        );
        assert_eq!(x1.fingerprint(), x2.fingerprint(), "tracing changed bits");
        assert_eq!(plain, traced);
        let m = telem.metrics();
        assert_eq!(
            m.counter("solver_iterations", &[]) as usize,
            traced.iterations
        );
        assert_eq!(
            m.counter("solver_operator_applications", &[]) as usize,
            3 + 2 * traced.iterations
        );
        assert_eq!(
            m.counter("solver_global_reductions", &[]) as usize,
            2 + 2 * traced.iterations
        );
        assert_eq!(m.gauge("solver_converged", &[]), Some(1.0));
        // Spans partition the telemetry clock with no gaps.
        let (_, spans) = telem.take_parts();
        let mut clock = 0u64;
        for s in &spans {
            assert_eq!(s.begin, clock, "gap in the solver timeline");
            clock = s.end;
        }
        assert!(clock > 0);
    }

    #[test]
    fn disabled_checkpointing_is_bit_identical() {
        let gauge = GaugeField::hot(lat(), 120);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 121);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut sink = Vec::new();
        let ckpt = solve_cgne_checkpointed(&op, &mut x2, &b, CgParams::default(), 0, &mut sink);
        assert_eq!(x1.fingerprint(), x2.fingerprint());
        assert_eq!(plain, ckpt);
        assert!(sink.is_empty());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let gauge = GaugeField::hot(lat(), 122);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 123);

        // Uninterrupted reference run.
        let mut x_ref = FermionField::zero(lat());
        let reference = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        assert!(reference.iterations > 10, "need a nontrivial solve");

        // Checkpointed run: enabling the hook must not change a bit.
        let mut x_ck = FermionField::zero(lat());
        let mut sink = Vec::new();
        let ck_report =
            solve_cgne_checkpointed(&op, &mut x_ck, &b, CgParams::default(), 5, &mut sink);
        assert_eq!(x_ref.fingerprint(), x_ck.fingerprint());
        assert_eq!(reference, ck_report);
        assert!(sink.len() >= 2);

        // Resume from a mid-run checkpoint (simulated crash after it was
        // written) and from the byte round-trip of that checkpoint.
        let mid = &sink[sink.len() / 2];
        assert_eq!(mid.iterations % 5, 0);
        let bytes = crate::checkpoint::write_checkpoint(mid);
        let restored = crate::checkpoint::read_checkpoint(&bytes).unwrap();
        assert_eq!(restored.digest(), mid.digest());
        let template = FermionField::zero(lat());
        let (x_res, res_report) = resume_cgne(&op, &template, &restored, CgParams::default());
        assert_eq!(
            x_ref.fingerprint(),
            x_res.fingerprint(),
            "resumed solution differs from the uninterrupted one"
        );
        assert_eq!(reference, res_report, "resumed report differs");
        for (a, c) in reference.residuals.iter().zip(res_report.residuals.iter()) {
            assert_eq!(a.to_bits(), c.to_bits(), "residual history diverged");
        }
    }

    #[test]
    fn resume_from_converged_checkpoint_is_a_no_op() {
        let gauge = GaugeField::hot(lat(), 124);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 125);
        let mut x = FermionField::zero(lat());
        let mut sink = Vec::new();
        let report = solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
        let last = sink.last().unwrap();
        assert!(last.converged);
        let template = FermionField::zero(lat());
        let (x_res, res_report) = resume_cgne(&op, &template, last, CgParams::default());
        assert_eq!(x.fingerprint(), x_res.fingerprint());
        assert_eq!(report, res_report);
    }

    #[test]
    #[should_panic(expected = "different operator")]
    fn resume_rejects_operator_mismatch() {
        let gauge = GaugeField::hot(lat(), 126);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 127);
        let mut x = FermionField::zero(lat());
        let mut sink = Vec::new();
        solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
        let mut ckpt = sink.pop().unwrap();
        ckpt.operator = "clover".into();
        let template = FermionField::zero(lat());
        let _ = resume_cgne(&op, &template, &ckpt, CgParams::default());
    }

    #[test]
    fn resume_cgne_on_validates_before_restoring() {
        let gauge = GaugeField::hot(lat(), 126);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 127);
        let mut x = FermionField::zero(lat());
        let mut sink = Vec::new();
        let report = solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
        let ckpt = &sink[sink.len() / 2];
        let template = FermionField::zero(lat());

        // Valid resume matches the uninterrupted run.
        let (x_res, res_report) =
            resume_cgne_on(&op, &template, ckpt, CgParams::default()).unwrap();
        assert_eq!(x.fingerprint(), x_res.fingerprint());
        assert_eq!(report, res_report);

        // Wrong operator is an error, not a panic.
        let mut wrong_op = ckpt.clone();
        wrong_op.operator = "clover".into();
        assert!(matches!(
            resume_cgne_on(&op, &template, &wrong_op, CgParams::default()),
            Err(ResumeError::OperatorMismatch { .. })
        ));

        // Wrong problem size is an error, not a shape panic downstream.
        let small = FermionField::zero(Lattice::new([2, 2, 2, 2]));
        assert!(matches!(
            resume_cgne_on(&op, &small, ckpt, CgParams::default()),
            Err(ResumeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn checkpointing_works_for_dwf_fields() {
        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 128);
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 129);
        let mut x_ref = crate::dwf::DwfField::zero(small, 4);
        let reference = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        let mut x_ck = crate::dwf::DwfField::zero(small, 4);
        let mut sink = Vec::new();
        solve_cgne_checkpointed(&op, &mut x_ck, &b, CgParams::default(), 3, &mut sink);
        let mid = &sink[0];
        let template = crate::dwf::DwfField::zero(small, 4);
        let (x_res, res_report) = resume_cgne(&op, &template, mid, CgParams::default());
        assert_eq!(x_ref.to_bits(), x_res.to_bits());
        assert_eq!(reference, res_report);
    }

    #[test]
    fn single_precision_cg_converges_to_f32_floor() {
        // The f32 instantiation of the whole CG stack solves on its own,
        // down to a tolerance above the f32 rounding floor.
        let gauge = GaugeField::hot(lat(), 100).to_f32();
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 101).to_f32();
        let mut x = FermionField::<f32>::zero(lat());
        let report = solve_cgne(
            &op,
            &mut x,
            &b,
            CgParams {
                tolerance: 1e-5,
                max_iterations: 2000,
            },
        );
        assert!(report.converged, "residual {}", report.final_residual);
        assert!(residual_of(&op, &x, &b) < 1e-4);
    }

    #[test]
    fn mixed_cg_reaches_double_precision_tolerance() {
        let gauge = GaugeField::hot(lat(), 130);
        let gauge32 = gauge.to_f32();
        let op = WilsonDirac::new(&gauge, 0.12);
        let op32 = WilsonDirac::new(&gauge32, 0.12);
        let b = FermionField::gaussian(lat(), 131);

        let mut x = FermionField::zero(lat());
        let report = solve_cgne_mixed(&op, &op32, &mut x, &b, MixedCgParams::default());
        assert!(report.converged, "residuals {:?}", report.residuals);
        assert!(report.final_residual <= 1e-8);
        // The same tolerance the pure f64 solver reaches.
        let mut x_ref = FermionField::zero(lat());
        let ref_report = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        assert!(ref_report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
        // The bulk of the operator applications ran in single precision.
        assert!(report.low_precision_applications > 5 * report.high_precision_applications);
    }

    #[test]
    fn mixed_cg_is_bit_deterministic() {
        let gauge = GaugeField::hot(lat(), 132);
        let gauge32 = gauge.to_f32();
        let op = WilsonDirac::new(&gauge, 0.12);
        let op32 = WilsonDirac::new(&gauge32, 0.12);
        let b = FermionField::gaussian(lat(), 133);
        let mut x1 = FermionField::zero(lat());
        let r1 = solve_cgne_mixed(&op, &op32, &mut x1, &b, MixedCgParams::default());
        let mut x2 = FermionField::zero(lat());
        let r2 = solve_cgne_mixed(&op, &op32, &mut x2, &b, MixedCgParams::default());
        assert_eq!(x1.fingerprint(), x2.fingerprint(), "rerun changed bits");
        assert_eq!(r1, r2);
        for (a, c) in r1.residuals.iter().zip(r2.residuals.iter()) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn mixed_cg_converges_for_staggered_and_dwf() {
        let gauge = GaugeField::hot(lat(), 134);
        let gauge32 = gauge.to_f32();
        let op = StaggeredDirac::new(&gauge, 0.2);
        let op32 = StaggeredDirac::new(&gauge32, 0.2);
        let b = StaggeredField::gaussian(lat(), 135);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne_mixed(&op, &op32, &mut x, &b, MixedCgParams::default());
        assert!(report.converged, "residuals {:?}", report.residuals);

        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 136);
        let gauge32 = gauge.to_f32();
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let op32 = crate::dwf::DwfDirac::new(&gauge32, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 137);
        let mut x = crate::dwf::DwfField::zero(small, 4);
        let report = solve_cgne_mixed(&op, &op32, &mut x, &b, MixedCgParams::default());
        assert!(report.converged, "residuals {:?}", report.residuals);
    }

    #[test]
    fn mixed_cg_resume_from_partial_solution_matches_tolerance() {
        // Feeding a partially converged solution back in as the initial
        // guess completes the solve — bref is recomputed per call, so the
        // convergence criterion is identical.
        let gauge = GaugeField::hot(lat(), 138);
        let gauge32 = gauge.to_f32();
        let op = WilsonDirac::new(&gauge, 0.12);
        let op32 = WilsonDirac::new(&gauge32, 0.12);
        let b = FermionField::gaussian(lat(), 139);
        let mut x = FermionField::zero(lat());
        let partial = solve_cgne_mixed(
            &op,
            &op32,
            &mut x,
            &b,
            MixedCgParams {
                max_outer: 1,
                ..MixedCgParams::default()
            },
        );
        assert!(!partial.converged);
        let resumed = solve_cgne_mixed(&op, &op32, &mut x, &b, MixedCgParams::default());
        assert!(resumed.converged);
        assert!(resumed.final_residual <= 1e-8);
    }

    #[test]
    fn nonzero_initial_guess_accepted() {
        let gauge = GaugeField::hot(lat(), 114);
        let op = WilsonDirac::new(&gauge, 0.1);
        let b = FermionField::gaussian(lat(), 115);
        let mut x = FermionField::gaussian(lat(), 116);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn max_iterations_respected() {
        let gauge = GaugeField::hot(lat(), 117);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 118);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(
            &op,
            &mut x,
            &b,
            CgParams {
                tolerance: 1e-30,
                max_iterations: 5,
            },
        );
        assert!(!report.converged);
        assert_eq!(report.iterations, 5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Wherever a single-word strike lands — any loop-carried
            /// vector, any word, any iteration, any right-hand side — the
            /// audited solve returns exactly the bits a never-corrupted
            /// solve returns, and on strike-free runs the audit itself
            /// perturbs nothing.
            #[test]
            fn abft_solution_is_bit_identical_for_any_single_word_strike(
                seed in 0u64..1000,
                target_sel in 0usize..3,
                word in 0usize..384,
                iteration in 1usize..24,
            ) {
                let gauge = GaugeField::hot(lat(), 200 + seed);
                let op = WilsonDirac::new(&gauge, 0.12);
                let b = FermionField::gaussian(lat(), 300 + seed);
                let mut clean = FermionField::zero(lat());
                let plain = solve_cgne(&op, &mut clean, &b, CgParams::default());
                prop_assume!(plain.converged);
                let target = [TamperTarget::X, TamperTarget::R, TamperTarget::P][target_sel];
                // Flipping the exponent's top bit rescales the struck
                // word by ~2^±1024: unmissable for any stored value.
                let tamper = SolverTamper { iteration, target, word, bits: 1 << 62 };
                let mut x = FermionField::zero(lat());
                let mut telem = NodeTelemetry::disabled(0);
                let (report, abft) = solve_cgne_abft(
                    &op,
                    &mut x,
                    &b,
                    CgParams::default(),
                    AbftParams::default(),
                    Some(tamper),
                    &mut telem,
                );
                prop_assert!(!abft.exhausted);
                prop_assert!(report.converged);
                prop_assert_eq!(x.fingerprint(), clean.fingerprint());
                prop_assert_eq!(&report, &plain);
            }
        }
    }
}
