//! Conjugate gradient on the normal equations — "the conjugate gradient
//! solvers that dominate our calculations" (abstract).
//!
//! The Dirac operators are non-Hermitian, so we solve `M x = b` through the
//! Hermitian positive-definite normal equations `M†M x = M†b`. Each
//! iteration costs two operator applications, three vector updates and two
//! global reductions — the two inner products whose latency motivates the
//! SCU's hardware global sums (§2.2).

use crate::complex::C64;
use crate::dwf::{DwfDirac, DwfField};
use crate::field::{FermionField, StaggeredField};
use crate::staggered::{AsqtadDirac, StaggeredDirac};
use crate::wilson::WilsonDirac;
use qcdoc_telemetry::{NodeTelemetry, Phase};
use serde::{Deserialize, Serialize};

/// Vector-space operations CG needs from a field type.
pub trait KrylovVector: Clone {
    /// Hermitian inner product in a deterministic (site-order) association.
    fn dot(&self, rhs: &Self) -> C64;
    /// Squared L2 norm.
    fn norm_sqr(&self) -> f64;
    /// `self += a · rhs`.
    fn axpy(&mut self, a: C64, rhs: &Self);
    /// `self = a · self + rhs`.
    fn xpay(&mut self, a: C64, rhs: &Self);
    /// Set to zero.
    fn fill_zero(&mut self);
}

impl KrylovVector for FermionField {
    fn dot(&self, rhs: &Self) -> C64 {
        FermionField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        FermionField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        FermionField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        FermionField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        self.scale(C64::ZERO)
    }
}

impl KrylovVector for StaggeredField {
    fn dot(&self, rhs: &Self) -> C64 {
        StaggeredField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        StaggeredField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        StaggeredField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        StaggeredField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        let z = C64::ZERO;
        for i in self.lattice().sites() {
            *self.site_mut(i) = self.site(i).scale(z);
        }
    }
}

impl KrylovVector for DwfField {
    fn dot(&self, rhs: &Self) -> C64 {
        DwfField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        DwfField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        DwfField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        DwfField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        let lat = self.lattice();
        let ls = self.ls();
        *self = DwfField::zero(lat, ls);
    }
}

/// A Dirac operator usable by the CG driver.
pub trait DiracOperator {
    /// The field type the operator acts on.
    type Field: KrylovVector;
    /// `out = M inp`.
    fn apply(&self, out: &mut Self::Field, inp: &Self::Field);
    /// `out = M† inp`.
    fn apply_dagger(&self, out: &mut Self::Field, inp: &Self::Field);
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;
}

impl DiracOperator for WilsonDirac<'_> {
    type Field = FermionField;
    fn apply(&self, out: &mut FermionField, inp: &FermionField) {
        WilsonDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField, inp: &FermionField) {
        WilsonDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "wilson"
    }
}

impl DiracOperator for crate::clover::CloverDirac<'_> {
    type Field = FermionField;
    fn apply(&self, out: &mut FermionField, inp: &FermionField) {
        crate::clover::CloverDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField, inp: &FermionField) {
        crate::clover::CloverDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "clover"
    }
}

impl DiracOperator for StaggeredDirac<'_> {
    type Field = StaggeredField;
    fn apply(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        StaggeredDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        StaggeredDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "staggered"
    }
}

impl DiracOperator for AsqtadDirac<'_> {
    type Field = StaggeredField;
    fn apply(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        AsqtadDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        AsqtadDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "asqtad"
    }
}

impl DiracOperator for DwfDirac<'_> {
    type Field = DwfField;
    fn apply(&self, out: &mut DwfField, inp: &DwfField) {
        DwfDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut DwfField, inp: &DwfField) {
        DwfDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "dwf"
    }
}

/// Stopping criteria for CG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgParams {
    /// Target relative residual `‖M†(b − Mx)‖ / ‖M†b‖`.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgParams {
    fn default() -> Self {
        CgParams {
            tolerance: 1e-8,
            max_iterations: 2000,
        }
    }
}

/// The outcome of a CG solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgReport {
    /// Operator name.
    pub operator: String,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Relative residual history (one entry per iteration).
    pub residuals: Vec<f64>,
    /// Final relative residual.
    pub final_residual: f64,
    /// Total operator applications (M or M†).
    pub operator_applications: usize,
    /// Global reductions performed (the inner products).
    pub global_reductions: usize,
}

/// Solve `M x = b` by CG on `M†M x = M†b`. `x` carries the initial guess
/// and receives the solution.
///
/// ```
/// use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
/// use qcdoc_lattice::solver::{solve_cgne, CgParams};
/// use qcdoc_lattice::wilson::WilsonDirac;
///
/// let lat = Lattice::new([2, 2, 2, 2]);
/// let gauge = GaugeField::hot(lat, 1);
/// let op = WilsonDirac::new(&gauge, 0.1);
/// let b = FermionField::gaussian(lat, 2);
/// let mut x = FermionField::zero(lat);
/// let report = solve_cgne(&op, &mut x, &b, CgParams::default());
/// assert!(report.converged);
/// ```
pub fn solve_cgne<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
) -> CgReport {
    let mut telem = NodeTelemetry::disabled(0);
    solve_cgne_traced(op, x, b, params, &mut telem, &SolverCosts::unit())
}

/// Logical cycle prices the traced solver charges per phase. The solver's
/// arithmetic is identical whatever the prices — they only scale the span
/// durations on the telemetry clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCosts {
    /// Cycles per operator application (`M` or `M†`).
    pub apply_cycles: u64,
    /// Cycles per block-vector update pass (axpy/xpay).
    pub linalg_cycles: u64,
    /// Cycles per global reduction (inner product or norm).
    pub reduction_cycles: u64,
}

impl SolverCosts {
    /// One cycle per phase — spans then simply count events.
    pub fn unit() -> SolverCosts {
        SolverCosts {
            apply_cycles: 1,
            linalg_cycles: 1,
            reduction_cycles: 1,
        }
    }

    /// Price the phases from flop counts at the machine's two
    /// floating-point operations per cycle, plus an explicit reduction
    /// latency (the network round, not arithmetic).
    pub fn from_counts(apply_flops: u64, linalg_flops: u64, reduction_cycles: u64) -> SolverCosts {
        SolverCosts {
            apply_cycles: apply_flops / 2,
            linalg_cycles: linalg_flops / 2,
            reduction_cycles,
        }
    }
}

/// [`solve_cgne`] with cycle-stamped tracing: each iteration decomposes
/// into `solver.apply` (two operator applications), `solver.reduce` (the
/// inner products) and `solver.linalg` (vector updates) spans, with
/// `solver_*` counters and gauges in the node's registry. The arithmetic
/// — and therefore the solution and report — is bit-identical to the
/// untraced entry point.
pub fn solve_cgne_traced<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> CgReport {
    let mut applications = 0usize;
    let mut reductions = 0usize;

    // r = M†(b − Mx).
    let setup = telem.begin();
    let mut t = b.clone();
    op.apply(&mut t, x);
    applications += 1;
    let mut bmx = b.clone();
    bmx.axpy(C64::real(-1.0), &t);
    let mut r = b.clone();
    op.apply_dagger(&mut r, &bmx);
    applications += 1;

    // Reference scale: ‖M†b‖².
    let mut mdag_b = b.clone();
    op.apply_dagger(&mut mdag_b, b);
    applications += 1;
    telem.advance(3 * costs.apply_cycles + costs.linalg_cycles);
    telem.end_with(setup, "solver.setup", Phase::Compute, 3);

    let reduce = telem.begin();
    let bref = mdag_b.norm_sqr().max(f64::MIN_POSITIVE);
    reductions += 1;

    let mut p = r.clone();
    let mut rsq = r.norm_sqr();
    reductions += 1;
    telem.advance(2 * costs.reduction_cycles);
    telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 2);

    let mut residuals = Vec::new();
    let mut converged = (rsq / bref).sqrt() <= params.tolerance;
    let mut iterations = 0usize;

    while !converged && iterations < params.max_iterations {
        // q = M†M p.
        let apply = telem.begin();
        op.apply(&mut t, &p);
        let mut q = p.clone();
        op.apply_dagger(&mut q, &t);
        applications += 2;
        telem.advance(2 * costs.apply_cycles);
        telem.end_with(apply, "solver.apply", Phase::Compute, 2);

        let reduce = telem.begin();
        let pq = p.dot(&q).re;
        reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);
        if pq <= 0.0 {
            // Operator lost positivity (numerically singular system).
            break;
        }
        let linalg = telem.begin();
        let alpha = rsq / pq;
        x.axpy(C64::real(alpha), &p);
        r.axpy(C64::real(-alpha), &q);
        telem.advance(2 * costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 2);

        let reduce = telem.begin();
        let new_rsq = r.norm_sqr();
        reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);

        iterations += 1;
        let rel = (new_rsq / bref).sqrt();
        residuals.push(rel);
        converged = rel <= params.tolerance;

        let linalg = telem.begin();
        let beta = new_rsq / rsq;
        p.xpay(C64::real(beta), &r);
        rsq = new_rsq;
        telem.advance(costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 1);
        telem.counter_add("solver_iterations", 1);
    }

    let final_residual = residuals.last().copied().unwrap_or((rsq / bref).sqrt());
    telem.counter_add("solver_operator_applications", applications as u64);
    telem.counter_add("solver_global_reductions", reductions as u64);
    telem.gauge_set("solver_final_residual", final_residual);
    telem.gauge_set("solver_converged", if converged { 1.0 } else { 0.0 });
    CgReport {
        operator: op.name().to_string(),
        iterations,
        converged,
        final_residual,
        residuals,
        operator_applications: applications,
        global_reductions: reductions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{GaugeField, Lattice};
    use crate::staggered::{AsqtadCoeffs, AsqtadLinks};

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    fn residual_of<Op: DiracOperator>(op: &Op, x: &Op::Field, b: &Op::Field) -> f64 {
        let mut mx = b.clone();
        op.apply(&mut mx, x);
        let mut r = b.clone();
        r.axpy(C64::real(-1.0), &mx);
        (r.norm_sqr() / b.norm_sqr()).sqrt()
    }

    #[test]
    fn wilson_cg_converges_and_solves() {
        let gauge = GaugeField::hot(lat(), 100);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 101);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(
            report.converged,
            "CG did not converge: {:?}",
            report.final_residual
        );
        assert!(residual_of(&op, &x, &b) < 1e-6);
        assert_eq!(report.operator_applications, 3 + 2 * report.iterations);
        // Two reductions per iteration plus setup.
        assert_eq!(report.global_reductions, 2 + 2 * report.iterations);
    }

    #[test]
    fn clover_cg_converges() {
        let gauge = GaugeField::hot(lat(), 102);
        let op = crate::clover::CloverDirac::new(&gauge, 0.12, 1.0);
        let b = FermionField::gaussian(lat(), 103);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn staggered_cg_converges() {
        let gauge = GaugeField::hot(lat(), 104);
        let op = StaggeredDirac::new(&gauge, 0.2);
        let b = StaggeredField::gaussian(lat(), 105);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn asqtad_cg_converges() {
        let gauge = GaugeField::hot(lat(), 106);
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let op = AsqtadDirac::new(&links, 0.2);
        let b = StaggeredField::gaussian(lat(), 107);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn dwf_cg_converges() {
        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 108);
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 109);
        let mut x = crate::dwf::DwfField::zero(small, 4);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged, "final residual {}", report.final_residual);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn residual_history_is_monotone_overall() {
        // CG residuals can locally oscillate, but the trend must fall by
        // orders of magnitude from start to finish.
        let gauge = GaugeField::hot(lat(), 110);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 111);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.residuals.first().unwrap() / report.residuals.last().unwrap() > 1e4);
    }

    #[test]
    fn solver_is_bit_deterministic() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let r1 = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let r2 = solve_cgne(&op, &mut x2, &b, CgParams::default());
        assert_eq!(
            x1.fingerprint(),
            x2.fingerprint(),
            "bitwise reproducibility"
        );
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn traced_solver_is_bit_identical_and_counts_phases() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut telem = NodeTelemetry::with_ring(0, 1 << 16);
        let traced = solve_cgne_traced(
            &op,
            &mut x2,
            &b,
            CgParams::default(),
            &mut telem,
            &SolverCosts::from_counts(1320, 48, 600),
        );
        assert_eq!(x1.fingerprint(), x2.fingerprint(), "tracing changed bits");
        assert_eq!(plain, traced);
        let m = telem.metrics();
        assert_eq!(
            m.counter("solver_iterations", &[]) as usize,
            traced.iterations
        );
        assert_eq!(
            m.counter("solver_operator_applications", &[]) as usize,
            3 + 2 * traced.iterations
        );
        assert_eq!(
            m.counter("solver_global_reductions", &[]) as usize,
            2 + 2 * traced.iterations
        );
        assert_eq!(m.gauge("solver_converged", &[]), Some(1.0));
        // Spans partition the telemetry clock with no gaps.
        let (_, spans) = telem.take_parts();
        let mut clock = 0u64;
        for s in &spans {
            assert_eq!(s.begin, clock, "gap in the solver timeline");
            clock = s.end;
        }
        assert!(clock > 0);
    }

    #[test]
    fn nonzero_initial_guess_accepted() {
        let gauge = GaugeField::hot(lat(), 114);
        let op = WilsonDirac::new(&gauge, 0.1);
        let b = FermionField::gaussian(lat(), 115);
        let mut x = FermionField::gaussian(lat(), 116);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn max_iterations_respected() {
        let gauge = GaugeField::hot(lat(), 117);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 118);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(
            &op,
            &mut x,
            &b,
            CgParams {
                tolerance: 1e-30,
                max_iterations: 5,
            },
        );
        assert!(!report.converged);
        assert_eq!(report.iterations, 5);
    }
}
