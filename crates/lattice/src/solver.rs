//! Conjugate gradient on the normal equations — "the conjugate gradient
//! solvers that dominate our calculations" (abstract).
//!
//! The Dirac operators are non-Hermitian, so we solve `M x = b` through the
//! Hermitian positive-definite normal equations `M†M x = M†b`. Each
//! iteration costs two operator applications, three vector updates and two
//! global reductions — the two inner products whose latency motivates the
//! SCU's hardware global sums (§2.2).

use crate::checkpoint::CgCheckpoint;
use crate::complex::C64;
use crate::dwf::{DwfDirac, DwfField};
use crate::field::{FermionField, StaggeredField};
use crate::staggered::{AsqtadDirac, StaggeredDirac};
use crate::wilson::WilsonDirac;
use qcdoc_telemetry::{NodeTelemetry, Phase};
use serde::{Deserialize, Serialize};

/// Vector-space operations CG needs from a field type.
pub trait KrylovVector: Clone {
    /// Hermitian inner product in a deterministic (site-order) association.
    fn dot(&self, rhs: &Self) -> C64;
    /// Squared L2 norm.
    fn norm_sqr(&self) -> f64;
    /// `self += a · rhs`.
    fn axpy(&mut self, a: C64, rhs: &Self);
    /// `self = a · self + rhs`.
    fn xpay(&mut self, a: C64, rhs: &Self);
    /// Set to zero.
    fn fill_zero(&mut self);
    /// The field's values as IEEE-754 bit patterns, in deterministic
    /// (site, then component) order — the checkpoint serialization.
    fn to_bits(&self) -> Vec<u64>;
    /// Restore values previously captured by [`KrylovVector::to_bits`].
    /// Panics if `bits` does not match the field's shape.
    fn load_bits(&mut self, bits: &[u64]);
}

impl KrylovVector for FermionField {
    fn dot(&self, rhs: &Self) -> C64 {
        FermionField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        FermionField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        FermionField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        FermionField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        self.scale(C64::ZERO)
    }
    fn to_bits(&self) -> Vec<u64> {
        let lat = self.lattice();
        let mut out = Vec::with_capacity(lat.volume() * 24);
        for i in lat.sites() {
            let sp = self.site(i);
            for cv in &sp.0 {
                for z in &cv.0 {
                    out.push(z.re.to_bits());
                    out.push(z.im.to_bits());
                }
            }
        }
        out
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let lat = self.lattice();
        assert_eq!(bits.len(), lat.volume() * 24, "checkpoint shape mismatch");
        let mut it = bits.iter();
        for i in lat.sites() {
            let sp = self.site_mut(i);
            for cv in &mut sp.0 {
                for z in &mut cv.0 {
                    z.re = f64::from_bits(*it.next().expect("length checked"));
                    z.im = f64::from_bits(*it.next().expect("length checked"));
                }
            }
        }
    }
}

impl KrylovVector for StaggeredField {
    fn dot(&self, rhs: &Self) -> C64 {
        StaggeredField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        StaggeredField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        StaggeredField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        StaggeredField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        let z = C64::ZERO;
        for i in self.lattice().sites() {
            *self.site_mut(i) = self.site(i).scale(z);
        }
    }
    fn to_bits(&self) -> Vec<u64> {
        let lat = self.lattice();
        let mut out = Vec::with_capacity(lat.volume() * 6);
        for i in lat.sites() {
            for z in &self.site(i).0 {
                out.push(z.re.to_bits());
                out.push(z.im.to_bits());
            }
        }
        out
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let lat = self.lattice();
        assert_eq!(bits.len(), lat.volume() * 6, "checkpoint shape mismatch");
        let mut it = bits.iter();
        for i in lat.sites() {
            for z in &mut self.site_mut(i).0 {
                z.re = f64::from_bits(*it.next().expect("length checked"));
                z.im = f64::from_bits(*it.next().expect("length checked"));
            }
        }
    }
}

impl KrylovVector for DwfField {
    fn dot(&self, rhs: &Self) -> C64 {
        DwfField::dot(self, rhs)
    }
    fn norm_sqr(&self) -> f64 {
        DwfField::norm_sqr(self)
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        DwfField::axpy(self, a, rhs)
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        DwfField::xpay(self, a, rhs)
    }
    fn fill_zero(&mut self) {
        let lat = self.lattice();
        let ls = self.ls();
        *self = DwfField::zero(lat, ls);
    }
    fn to_bits(&self) -> Vec<u64> {
        (0..self.ls())
            .flat_map(|s| self.slice(s).to_bits())
            .collect()
    }
    fn load_bits(&mut self, bits: &[u64]) {
        let per_slice = self.lattice().volume() * 24;
        assert_eq!(
            bits.len(),
            per_slice * self.ls(),
            "checkpoint shape mismatch"
        );
        for s in 0..self.ls() {
            self.slice_mut(s)
                .load_bits(&bits[s * per_slice..(s + 1) * per_slice]);
        }
    }
}

/// A Dirac operator usable by the CG driver.
pub trait DiracOperator {
    /// The field type the operator acts on.
    type Field: KrylovVector;
    /// `out = M inp`.
    fn apply(&self, out: &mut Self::Field, inp: &Self::Field);
    /// `out = M† inp`.
    fn apply_dagger(&self, out: &mut Self::Field, inp: &Self::Field);
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;
}

impl DiracOperator for WilsonDirac<'_> {
    type Field = FermionField;
    fn apply(&self, out: &mut FermionField, inp: &FermionField) {
        WilsonDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField, inp: &FermionField) {
        WilsonDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "wilson"
    }
}

impl DiracOperator for crate::clover::CloverDirac<'_> {
    type Field = FermionField;
    fn apply(&self, out: &mut FermionField, inp: &FermionField) {
        crate::clover::CloverDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut FermionField, inp: &FermionField) {
        crate::clover::CloverDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "clover"
    }
}

impl DiracOperator for StaggeredDirac<'_> {
    type Field = StaggeredField;
    fn apply(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        StaggeredDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        StaggeredDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "staggered"
    }
}

impl DiracOperator for AsqtadDirac<'_> {
    type Field = StaggeredField;
    fn apply(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        AsqtadDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut StaggeredField, inp: &StaggeredField) {
        AsqtadDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "asqtad"
    }
}

impl DiracOperator for DwfDirac<'_> {
    type Field = DwfField;
    fn apply(&self, out: &mut DwfField, inp: &DwfField) {
        DwfDirac::apply(self, out, inp)
    }
    fn apply_dagger(&self, out: &mut DwfField, inp: &DwfField) {
        DwfDirac::apply_dagger(self, out, inp)
    }
    fn name(&self) -> &'static str {
        "dwf"
    }
}

/// Stopping criteria for CG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgParams {
    /// Target relative residual `‖M†(b − Mx)‖ / ‖M†b‖`.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgParams {
    fn default() -> Self {
        CgParams {
            tolerance: 1e-8,
            max_iterations: 2000,
        }
    }
}

/// The outcome of a CG solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgReport {
    /// Operator name.
    pub operator: String,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Relative residual history (one entry per iteration).
    pub residuals: Vec<f64>,
    /// Final relative residual.
    pub final_residual: f64,
    /// Total operator applications (M or M†).
    pub operator_applications: usize,
    /// Global reductions performed (the inner products).
    pub global_reductions: usize,
}

/// Solve `M x = b` by CG on `M†M x = M†b`. `x` carries the initial guess
/// and receives the solution.
///
/// ```
/// use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
/// use qcdoc_lattice::solver::{solve_cgne, CgParams};
/// use qcdoc_lattice::wilson::WilsonDirac;
///
/// let lat = Lattice::new([2, 2, 2, 2]);
/// let gauge = GaugeField::hot(lat, 1);
/// let op = WilsonDirac::new(&gauge, 0.1);
/// let b = FermionField::gaussian(lat, 2);
/// let mut x = FermionField::zero(lat);
/// let report = solve_cgne(&op, &mut x, &b, CgParams::default());
/// assert!(report.converged);
/// ```
pub fn solve_cgne<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
) -> CgReport {
    let mut telem = NodeTelemetry::disabled(0);
    solve_cgne_traced(op, x, b, params, &mut telem, &SolverCosts::unit())
}

/// Logical cycle prices the traced solver charges per phase. The solver's
/// arithmetic is identical whatever the prices — they only scale the span
/// durations on the telemetry clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCosts {
    /// Cycles per operator application (`M` or `M†`).
    pub apply_cycles: u64,
    /// Cycles per block-vector update pass (axpy/xpay).
    pub linalg_cycles: u64,
    /// Cycles per global reduction (inner product or norm).
    pub reduction_cycles: u64,
}

impl SolverCosts {
    /// One cycle per phase — spans then simply count events.
    pub fn unit() -> SolverCosts {
        SolverCosts {
            apply_cycles: 1,
            linalg_cycles: 1,
            reduction_cycles: 1,
        }
    }

    /// Price the phases from flop counts at the machine's two
    /// floating-point operations per cycle, plus an explicit reduction
    /// latency (the network round, not arithmetic).
    pub fn from_counts(apply_flops: u64, linalg_flops: u64, reduction_cycles: u64) -> SolverCosts {
        SolverCosts {
            apply_cycles: apply_flops / 2,
            linalg_cycles: linalg_flops / 2,
            reduction_cycles,
        }
    }
}

/// [`solve_cgne`] with cycle-stamped tracing: each iteration decomposes
/// into `solver.apply` (two operator applications), `solver.reduce` (the
/// inner products) and `solver.linalg` (vector updates) spans, with
/// `solver_*` counters and gauges in the node's registry. The arithmetic
/// — and therefore the solution and report — is bit-identical to the
/// untraced entry point.
pub fn solve_cgne_traced<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> CgReport {
    solve_cgne_instrumented(op, x, b, params, telem, costs, 0, &mut Vec::new())
}

/// The complete loop-carried state of the CG recurrence, excluding the
/// solution vector `x` (which stays with the caller).
struct CgLoopState<F> {
    t: F,
    r: F,
    p: F,
    rsq: f64,
    bref: f64,
    iterations: usize,
    residuals: Vec<f64>,
    converged: bool,
    applications: usize,
    reductions: usize,
}

/// Capture the loop-carried state as a [`CgCheckpoint`]. Called only at
/// iteration boundaries, where `(x, r, p, rsq)` is exactly the state the
/// next iteration starts from.
fn snapshot<Op: DiracOperator>(
    op: &Op,
    x: &Op::Field,
    st: &CgLoopState<Op::Field>,
) -> CgCheckpoint {
    CgCheckpoint {
        operator: op.name().to_string(),
        iterations: st.iterations,
        converged: st.converged,
        rsq: st.rsq,
        bref: st.bref,
        residuals: st.residuals.clone(),
        applications: st.applications,
        reductions: st.reductions,
        x: x.to_bits(),
        r: st.r.to_bits(),
        p: st.p.to_bits(),
    }
}

/// The CG iteration: identical arithmetic and span sequence whether
/// entered fresh or from a restored checkpoint. The checkpoint hook fires
/// at iteration boundaries and only *reads* state, so an enabled interval
/// cannot perturb a single bit of the recurrence.
#[allow(clippy::too_many_arguments)]
fn cg_loop<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    st: &mut CgLoopState<Op::Field>,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
    checkpoint_interval: usize,
    sink: &mut Vec<CgCheckpoint>,
) {
    while !st.converged && st.iterations < params.max_iterations {
        // q = M†M p.
        let apply = telem.begin();
        op.apply(&mut st.t, &st.p);
        let mut q = st.p.clone();
        op.apply_dagger(&mut q, &st.t);
        st.applications += 2;
        telem.advance(2 * costs.apply_cycles);
        telem.end_with(apply, "solver.apply", Phase::Compute, 2);

        let reduce = telem.begin();
        let pq = st.p.dot(&q).re;
        st.reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);
        if pq <= 0.0 {
            // Operator lost positivity (numerically singular system).
            break;
        }
        let linalg = telem.begin();
        let alpha = st.rsq / pq;
        x.axpy(C64::real(alpha), &st.p);
        st.r.axpy(C64::real(-alpha), &q);
        telem.advance(2 * costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 2);

        let reduce = telem.begin();
        let new_rsq = st.r.norm_sqr();
        st.reductions += 1;
        telem.advance(costs.reduction_cycles);
        telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 1);

        st.iterations += 1;
        let rel = (new_rsq / st.bref).sqrt();
        st.residuals.push(rel);
        st.converged = rel <= params.tolerance;

        let linalg = telem.begin();
        let beta = new_rsq / st.rsq;
        st.p.xpay(C64::real(beta), &st.r);
        st.rsq = new_rsq;
        telem.advance(costs.linalg_cycles);
        telem.end_with(linalg, "solver.linalg", Phase::Compute, 1);
        telem.counter_add("solver_iterations", 1);

        if checkpoint_interval > 0 && st.iterations % checkpoint_interval == 0 {
            sink.push(snapshot(op, x, st));
            telem.counter_add("solver_checkpoint_writes", 1);
        }
    }
}

/// Close out a solve: publish the end-of-run counters and assemble the
/// report.
fn cg_report<Op: DiracOperator>(
    op: &Op,
    st: CgLoopState<Op::Field>,
    telem: &mut NodeTelemetry,
) -> CgReport {
    let final_residual = st
        .residuals
        .last()
        .copied()
        .unwrap_or((st.rsq / st.bref).sqrt());
    telem.counter_add("solver_operator_applications", st.applications as u64);
    telem.counter_add("solver_global_reductions", st.reductions as u64);
    telem.gauge_set("solver_final_residual", final_residual);
    telem.gauge_set("solver_converged", if st.converged { 1.0 } else { 0.0 });
    CgReport {
        operator: op.name().to_string(),
        iterations: st.iterations,
        converged: st.converged,
        final_residual,
        residuals: st.residuals,
        operator_applications: st.applications,
        global_reductions: st.reductions,
    }
}

/// The full solver: setup phase, iteration loop with an optional
/// checkpoint hook, report. Every public CG entry point lands here.
#[allow(clippy::too_many_arguments)]
fn solve_cgne_instrumented<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
    checkpoint_interval: usize,
    sink: &mut Vec<CgCheckpoint>,
) -> CgReport {
    let mut applications = 0usize;
    let mut reductions = 0usize;

    // r = M†(b − Mx).
    let setup = telem.begin();
    let mut t = b.clone();
    op.apply(&mut t, x);
    applications += 1;
    let mut bmx = b.clone();
    bmx.axpy(C64::real(-1.0), &t);
    let mut r = b.clone();
    op.apply_dagger(&mut r, &bmx);
    applications += 1;

    // Reference scale: ‖M†b‖².
    let mut mdag_b = b.clone();
    op.apply_dagger(&mut mdag_b, b);
    applications += 1;
    telem.advance(3 * costs.apply_cycles + costs.linalg_cycles);
    telem.end_with(setup, "solver.setup", Phase::Compute, 3);

    let reduce = telem.begin();
    let bref = mdag_b.norm_sqr().max(f64::MIN_POSITIVE);
    reductions += 1;

    let p = r.clone();
    let rsq = r.norm_sqr();
    reductions += 1;
    telem.advance(2 * costs.reduction_cycles);
    telem.end_with(reduce, "solver.reduce", Phase::GlobalSum, 2);

    let converged = (rsq / bref).sqrt() <= params.tolerance;
    let mut st = CgLoopState {
        t,
        r,
        p,
        rsq,
        bref,
        iterations: 0,
        residuals: Vec::new(),
        converged,
        applications,
        reductions,
    };
    cg_loop(
        op,
        x,
        &mut st,
        params,
        telem,
        costs,
        checkpoint_interval,
        sink,
    );
    cg_report(op, st, telem)
}

/// [`solve_cgne`] with periodic checkpointing: every `interval`-th
/// iteration boundary pushes a [`CgCheckpoint`] into `sink` (`interval =
/// 0` disables the hook entirely). The hook only reads solver state, so
/// the solution, residual history, and report are **bit-identical** to an
/// uncheckpointed solve.
pub fn solve_cgne_checkpointed<Op: DiracOperator>(
    op: &Op,
    x: &mut Op::Field,
    b: &Op::Field,
    params: CgParams,
    interval: usize,
    sink: &mut Vec<CgCheckpoint>,
) -> CgReport {
    let mut telem = NodeTelemetry::disabled(0);
    solve_cgne_instrumented(
        op,
        x,
        b,
        params,
        &mut telem,
        &SolverCosts::unit(),
        interval,
        sink,
    )
}

/// Resume a solve from a checkpoint. `template` supplies the field shape
/// (any field on the right lattice — its values are overwritten); the
/// returned solution and report are **bit-identical** to those of a solve
/// that ran uninterrupted: same residual history (checkpointed prefix +
/// freshly computed tail), same totals, same solution bits.
pub fn resume_cgne<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
    params: CgParams,
) -> (Op::Field, CgReport) {
    let mut telem = NodeTelemetry::disabled(0);
    resume_cgne_traced(op, template, ckpt, params, &mut telem, &SolverCosts::unit())
}

/// [`resume_cgne`] with cycle-stamped tracing (the same span sequence the
/// live loop emits).
pub fn resume_cgne_traced<Op: DiracOperator>(
    op: &Op,
    template: &Op::Field,
    ckpt: &CgCheckpoint,
    params: CgParams,
    telem: &mut NodeTelemetry,
    costs: &SolverCosts,
) -> (Op::Field, CgReport) {
    assert_eq!(
        ckpt.operator,
        op.name(),
        "checkpoint was taken under a different operator"
    );
    let mut x = template.clone();
    x.load_bits(&ckpt.x);
    let mut r = template.clone();
    r.load_bits(&ckpt.r);
    let mut p = template.clone();
    p.load_bits(&ckpt.p);
    let mut st = CgLoopState {
        // The scratch vector is fully overwritten by the first operator
        // application, so any same-shape field restores it.
        t: template.clone(),
        r,
        p,
        rsq: ckpt.rsq,
        bref: ckpt.bref,
        iterations: ckpt.iterations,
        residuals: ckpt.residuals.clone(),
        converged: ckpt.converged,
        applications: ckpt.applications,
        reductions: ckpt.reductions,
    };
    telem.counter_add("solver_checkpoint_restores", 1);
    cg_loop(
        op,
        &mut x,
        &mut st,
        params,
        telem,
        costs,
        0,
        &mut Vec::new(),
    );
    let report = cg_report(op, st, telem);
    (x, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{GaugeField, Lattice};
    use crate::staggered::{AsqtadCoeffs, AsqtadLinks};

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    fn residual_of<Op: DiracOperator>(op: &Op, x: &Op::Field, b: &Op::Field) -> f64 {
        let mut mx = b.clone();
        op.apply(&mut mx, x);
        let mut r = b.clone();
        r.axpy(C64::real(-1.0), &mx);
        (r.norm_sqr() / b.norm_sqr()).sqrt()
    }

    #[test]
    fn wilson_cg_converges_and_solves() {
        let gauge = GaugeField::hot(lat(), 100);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 101);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(
            report.converged,
            "CG did not converge: {:?}",
            report.final_residual
        );
        assert!(residual_of(&op, &x, &b) < 1e-6);
        assert_eq!(report.operator_applications, 3 + 2 * report.iterations);
        // Two reductions per iteration plus setup.
        assert_eq!(report.global_reductions, 2 + 2 * report.iterations);
    }

    #[test]
    fn clover_cg_converges() {
        let gauge = GaugeField::hot(lat(), 102);
        let op = crate::clover::CloverDirac::new(&gauge, 0.12, 1.0);
        let b = FermionField::gaussian(lat(), 103);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn staggered_cg_converges() {
        let gauge = GaugeField::hot(lat(), 104);
        let op = StaggeredDirac::new(&gauge, 0.2);
        let b = StaggeredField::gaussian(lat(), 105);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn asqtad_cg_converges() {
        let gauge = GaugeField::hot(lat(), 106);
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let op = AsqtadDirac::new(&links, 0.2);
        let b = StaggeredField::gaussian(lat(), 107);
        let mut x = StaggeredField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn dwf_cg_converges() {
        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 108);
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 109);
        let mut x = crate::dwf::DwfField::zero(small, 4);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged, "final residual {}", report.final_residual);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn residual_history_is_monotone_overall() {
        // CG residuals can locally oscillate, but the trend must fall by
        // orders of magnitude from start to finish.
        let gauge = GaugeField::hot(lat(), 110);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 111);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.residuals.first().unwrap() / report.residuals.last().unwrap() > 1e4);
    }

    #[test]
    fn solver_is_bit_deterministic() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let r1 = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let r2 = solve_cgne(&op, &mut x2, &b, CgParams::default());
        assert_eq!(
            x1.fingerprint(),
            x2.fingerprint(),
            "bitwise reproducibility"
        );
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn traced_solver_is_bit_identical_and_counts_phases() {
        let gauge = GaugeField::hot(lat(), 112);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 113);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut telem = NodeTelemetry::with_ring(0, 1 << 16);
        let traced = solve_cgne_traced(
            &op,
            &mut x2,
            &b,
            CgParams::default(),
            &mut telem,
            &SolverCosts::from_counts(1320, 48, 600),
        );
        assert_eq!(x1.fingerprint(), x2.fingerprint(), "tracing changed bits");
        assert_eq!(plain, traced);
        let m = telem.metrics();
        assert_eq!(
            m.counter("solver_iterations", &[]) as usize,
            traced.iterations
        );
        assert_eq!(
            m.counter("solver_operator_applications", &[]) as usize,
            3 + 2 * traced.iterations
        );
        assert_eq!(
            m.counter("solver_global_reductions", &[]) as usize,
            2 + 2 * traced.iterations
        );
        assert_eq!(m.gauge("solver_converged", &[]), Some(1.0));
        // Spans partition the telemetry clock with no gaps.
        let (_, spans) = telem.take_parts();
        let mut clock = 0u64;
        for s in &spans {
            assert_eq!(s.begin, clock, "gap in the solver timeline");
            clock = s.end;
        }
        assert!(clock > 0);
    }

    #[test]
    fn disabled_checkpointing_is_bit_identical() {
        let gauge = GaugeField::hot(lat(), 120);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 121);
        let mut x1 = FermionField::zero(lat());
        let plain = solve_cgne(&op, &mut x1, &b, CgParams::default());
        let mut x2 = FermionField::zero(lat());
        let mut sink = Vec::new();
        let ckpt = solve_cgne_checkpointed(&op, &mut x2, &b, CgParams::default(), 0, &mut sink);
        assert_eq!(x1.fingerprint(), x2.fingerprint());
        assert_eq!(plain, ckpt);
        assert!(sink.is_empty());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let gauge = GaugeField::hot(lat(), 122);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 123);

        // Uninterrupted reference run.
        let mut x_ref = FermionField::zero(lat());
        let reference = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        assert!(reference.iterations > 10, "need a nontrivial solve");

        // Checkpointed run: enabling the hook must not change a bit.
        let mut x_ck = FermionField::zero(lat());
        let mut sink = Vec::new();
        let ck_report =
            solve_cgne_checkpointed(&op, &mut x_ck, &b, CgParams::default(), 5, &mut sink);
        assert_eq!(x_ref.fingerprint(), x_ck.fingerprint());
        assert_eq!(reference, ck_report);
        assert!(sink.len() >= 2);

        // Resume from a mid-run checkpoint (simulated crash after it was
        // written) and from the byte round-trip of that checkpoint.
        let mid = &sink[sink.len() / 2];
        assert_eq!(mid.iterations % 5, 0);
        let bytes = crate::checkpoint::write_checkpoint(mid);
        let restored = crate::checkpoint::read_checkpoint(&bytes).unwrap();
        assert_eq!(restored.digest(), mid.digest());
        let template = FermionField::zero(lat());
        let (x_res, res_report) = resume_cgne(&op, &template, &restored, CgParams::default());
        assert_eq!(
            x_ref.fingerprint(),
            x_res.fingerprint(),
            "resumed solution differs from the uninterrupted one"
        );
        assert_eq!(reference, res_report, "resumed report differs");
        for (a, c) in reference.residuals.iter().zip(res_report.residuals.iter()) {
            assert_eq!(a.to_bits(), c.to_bits(), "residual history diverged");
        }
    }

    #[test]
    fn resume_from_converged_checkpoint_is_a_no_op() {
        let gauge = GaugeField::hot(lat(), 124);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 125);
        let mut x = FermionField::zero(lat());
        let mut sink = Vec::new();
        let report = solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
        let last = sink.last().unwrap();
        assert!(last.converged);
        let template = FermionField::zero(lat());
        let (x_res, res_report) = resume_cgne(&op, &template, last, CgParams::default());
        assert_eq!(x.fingerprint(), x_res.fingerprint());
        assert_eq!(report, res_report);
    }

    #[test]
    #[should_panic(expected = "different operator")]
    fn resume_rejects_operator_mismatch() {
        let gauge = GaugeField::hot(lat(), 126);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 127);
        let mut x = FermionField::zero(lat());
        let mut sink = Vec::new();
        solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
        let mut ckpt = sink.pop().unwrap();
        ckpt.operator = "clover".into();
        let template = FermionField::zero(lat());
        let _ = resume_cgne(&op, &template, &ckpt, CgParams::default());
    }

    #[test]
    fn checkpointing_works_for_dwf_fields() {
        let small = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(small, 128);
        let op = crate::dwf::DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let b = crate::dwf::DwfField::gaussian(small, 4, 129);
        let mut x_ref = crate::dwf::DwfField::zero(small, 4);
        let reference = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        let mut x_ck = crate::dwf::DwfField::zero(small, 4);
        let mut sink = Vec::new();
        solve_cgne_checkpointed(&op, &mut x_ck, &b, CgParams::default(), 3, &mut sink);
        let mid = &sink[0];
        let template = crate::dwf::DwfField::zero(small, 4);
        let (x_res, res_report) = resume_cgne(&op, &template, mid, CgParams::default());
        assert_eq!(x_ref.to_bits(), x_res.to_bits());
        assert_eq!(reference, res_report);
    }

    #[test]
    fn nonzero_initial_guess_accepted() {
        let gauge = GaugeField::hot(lat(), 114);
        let op = WilsonDirac::new(&gauge, 0.1);
        let b = FermionField::gaussian(lat(), 115);
        let mut x = FermionField::gaussian(lat(), 116);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        assert!(report.converged);
        assert!(residual_of(&op, &x, &b) < 1e-6);
    }

    #[test]
    fn max_iterations_respected() {
        let gauge = GaugeField::hot(lat(), 117);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat(), 118);
        let mut x = FermionField::zero(lat());
        let report = solve_cgne(
            &op,
            &mut x,
            &b,
            CgParams {
                tolerance: 1e-30,
                max_iterations: 5,
            },
        );
        assert!(!report.converged);
        assert_eq!(report.iterations, 5);
    }
}
