//! Precision-generic complex arithmetic.
//!
//! Implemented locally (rather than pulling in a numerics crate) so the
//! operation counts feeding the performance model are exactly the ones the
//! code performs: a complex multiply is 4 real multiplies and 2 adds — 3
//! FMAs and 1 multiply on the PPC 440's FPU.
//!
//! The component type is any [`Real`] scalar; [`C64`] and [`C32`] name the
//! two instantiations the rest of the stack uses. All methods execute the
//! same operation sequence for both widths, so the `f64` path is
//! bit-identical to the historic double-precision-only implementation.

use crate::real::Real;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over a [`Real`] component type (default `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex<T: Real = f64> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Double-precision complex number.
pub type C64 = Complex<f64>;
/// Single-precision complex number.
pub type C32 = Complex<f32>;

/// The imaginary unit (double precision).
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl<T: Real> Complex<T> {
    /// Zero.
    pub const ZERO: Complex<T> = Complex {
        re: T::ZERO,
        im: T::ZERO,
    };
    /// One.
    pub const ONE: Complex<T> = Complex {
        re: T::ONE,
        im: T::ZERO,
    };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Complex<T> {
        Complex { re, im }
    }

    /// A real number.
    #[inline]
    pub const fn real(re: T) -> Complex<T> {
        Complex { re, im: T::ZERO }
    }

    /// Convert (truncate for `f32`, identity for `f64`) from double
    /// precision.
    #[inline]
    pub fn from_c64(z: C64) -> Complex<T> {
        Complex {
            re: T::from_f64(z.re),
            im: T::from_f64(z.im),
        }
    }

    /// Widen to double precision (exact for both supported widths).
    #[inline]
    pub fn to_c64(self) -> C64 {
        C64 {
            re: self.re.to_f64(),
            im: self.im.to_f64(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex<T> {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiply by `i`.
    #[inline]
    pub fn mul_i(self) -> Complex<T> {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by `-i`.
    #[inline]
    pub fn mul_neg_i(self) -> Complex<T> {
        Complex {
            re: self.im,
            im: -self.re,
        }
    }

    /// Fused `self + a * b`.
    ///
    /// Written in "broadcast" form — `self + a.re·b + a.im·b̂` with
    /// `b̂ = (−b.im, b.re)` — so each step is one real scalar times a
    /// complex, which the vectorizer packs across adjacent accumulators
    /// without per-multiply lane swizzles. Every component sees exactly
    /// the textbook operation sequence (`x + (−y)` is IEEE-identical to
    /// `x − y`), so results are bit-identical to the naive form.
    #[inline]
    pub fn madd(self, a: Complex<T>, b: Complex<T>) -> Complex<T> {
        let t = Complex {
            re: self.re + a.re * b.re,
            im: self.im + a.re * b.im,
        };
        Complex {
            re: t.re + a.im * (-b.im),
            im: t.im + a.im * b.re,
        }
    }

    /// `self * conj(rhs)`.
    #[inline]
    pub fn mul_conj(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re * rhs.re + self.im * rhs.im,
            im: self.im * rhs.re - self.re * rhs.im,
        }
    }
}

impl C64 {
    /// Argument in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> C64 {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn add(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Complex<T>) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn sub(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex<T>) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex<T>) {
        *self = *self * rhs;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: T) -> Complex<T> {
        Complex {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn div(self, rhs: Complex<T>) -> Complex<T> {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn neg(self) -> Complex<T> {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= T::ZERO {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conjugation_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), C64::real(25.0)));
    }

    #[test]
    fn i_multiplication_shortcuts() {
        let a = C64::new(2.0, -3.0);
        assert_eq!(a.mul_i(), a * I);
        assert_eq!(a.mul_neg_i(), a * -I);
        assert_eq!(I * I, -C64::ONE);
    }

    #[test]
    fn madd_matches_expanded_form() {
        let acc = C64::new(0.5, 0.5);
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.25, 3.0);
        assert!(close(acc.madd(a, b), acc + a * b));
    }

    #[test]
    fn mul_conj_matches_expanded_form() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-2.0, 0.5);
        assert!(close(a.mul_conj(b), a * b.conj()));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn single_precision_instantiation() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -1.0);
        assert_eq!(a * b, C32::new(5.0, 5.0));
        assert_eq!(C32::from_c64(C64::new(1.0, -0.5)), C32::new(1.0, -0.5));
        assert_eq!(C32::new(1.0, -0.5).to_c64(), C64::new(1.0, -0.5));
    }
}
