//! Double-precision complex arithmetic.
//!
//! Implemented locally (rather than pulling in a numerics crate) so the
//! operation counts feeding the performance model are exactly the ones the
//! code performs: a complex multiply is 4 real multiplies and 2 adds — 3
//! FMAs and 1 multiply on the PPC 440's FPU.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// A real number.
    #[inline]
    pub const fn real(re: f64) -> C64 {
        C64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> C64 {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Multiply by `i`.
    #[inline]
    pub fn mul_i(self) -> C64 {
        C64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by `-i`.
    #[inline]
    pub fn mul_neg_i(self) -> C64 {
        C64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Fused `self + a * b`.
    #[inline]
    pub fn madd(self, a: C64, b: C64) -> C64 {
        C64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// `self * conj(rhs)`.
    #[inline]
    pub fn mul_conj(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re + self.im * rhs.im,
            im: self.im * rhs.re - self.re * rhs.im,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64 {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conjugation_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), C64::real(25.0)));
    }

    #[test]
    fn i_multiplication_shortcuts() {
        let a = C64::new(2.0, -3.0);
        assert_eq!(a.mul_i(), a * I);
        assert_eq!(a.mul_neg_i(), a * -I);
        assert_eq!(I * I, -C64::ONE);
    }

    #[test]
    fn madd_matches_expanded_form() {
        let acc = C64::new(0.5, 0.5);
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.25, 3.0);
        assert!(close(acc.madd(a, b), acc + a * b));
    }

    #[test]
    fn mul_conj_matches_expanded_form() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-2.0, 0.5);
        assert!(close(a.mul_conj(b), a * b.conj()));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }
}
