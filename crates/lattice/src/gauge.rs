//! The gauge sector: plaquette, Wilson action, and quenched evolution by
//! Cabibbo–Marinari heatbath with overrelaxation.
//!
//! This is the workload of the paper's §4 verification: "a five day
//! simulation was completed on a 128 node machine … and then redone, with
//! the requirement that the resulting QCD configuration be identical in
//! all bits." Every random draw here is keyed to the global site index and
//! sweep number (see [`crate::rng`]), so two evolutions of the same seed
//! are bit-identical whatever the machine decomposition.

use crate::complex::C64;
use crate::field::GaugeField;
#[cfg(test)]
use crate::field::Lattice;
use crate::rng::SiteRng;
use crate::su3::Su3;
use serde::{Deserialize, Serialize};

/// Average plaquette `⟨(1/3) Re Tr U_p⟩` over all sites and planes —
/// 1.0 on a cold configuration, → 0 as β → 0.
pub fn average_plaquette(gauge: &GaugeField) -> f64 {
    let lat = gauge.lattice();
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for x in lat.sites() {
        for mu in 0..4 {
            for nu in (mu + 1)..4 {
                let xpm = lat.neighbour(x, mu, true);
                let xpn = lat.neighbour(x, nu, true);
                let p = *gauge.link(x, mu)
                    * *gauge.link(xpm, nu)
                    * gauge.link(xpn, mu).adjoint()
                    * gauge.link(x, nu).adjoint();
                acc += p.trace().re / 3.0;
                count += 1;
            }
        }
    }
    acc / count as f64
}

/// The sum of the six staples completing the plaquettes through
/// `U_μ(x)`: the local action is `−(β/3) Re Tr (U_μ(x) S)`.
pub fn staple_sum(gauge: &GaugeField, x: usize, mu: usize) -> Su3 {
    let lat = gauge.lattice();
    let mut s = Su3::ZERO;
    let xpm = lat.neighbour(x, mu, true);
    for nu in 0..4 {
        if nu == mu {
            continue;
        }
        let xpn = lat.neighbour(x, nu, true);
        let xmn = lat.neighbour(x, nu, false);
        let xmn_pm = lat.neighbour(xmn, mu, true);
        // Upper: U_nu(x+mu) U_mu(x+nu)^† U_nu(x)^†.
        s = s + *gauge.link(xpm, nu) * gauge.link(xpn, mu).adjoint() * gauge.link(x, nu).adjoint();
        // Lower: U_nu(x+mu-nu)^† U_mu(x-nu)^† U_nu(x-nu).
        s = s + gauge.link(xmn_pm, nu).adjoint()
            * gauge.link(xmn, mu).adjoint()
            * *gauge.link(xmn, nu);
    }
    s
}

/// Wilson gauge action `S = β Σ_p (1 − (1/3) Re Tr U_p)`.
pub fn wilson_action(gauge: &GaugeField, beta: f64) -> f64 {
    let plaquettes = (gauge.lattice().volume() * 6) as f64;
    beta * plaquettes * (1.0 - average_plaquette(gauge))
}

/// Parameters of the quenched evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolveParams {
    /// Gauge coupling β = 6/g².
    pub beta: f64,
    /// Overrelaxation sweeps per heatbath sweep.
    pub or_per_hb: usize,
    /// Reunitarize every this many sweeps (drift control).
    pub reunit_interval: usize,
}

impl Default for EvolveParams {
    fn default() -> Self {
        EvolveParams {
            beta: 5.7,
            or_per_hb: 1,
            reunit_interval: 10,
        }
    }
}

/// Kennedy–Pendleton sampling of `x0 ∈ [−1, 1]` with density
/// `∝ sqrt(1 − x0²) exp(α x0)`.
fn kp_sample_x0(alpha: f64, rng: &mut SiteRng) -> f64 {
    if alpha < 1e-9 {
        // β k → 0: the weight degenerates to the semicircle density; a
        // uniform draw is adequate for this unreachable-by-physics corner
        // and avoids the division below.
        return 2.0 * rng.uniform() - 1.0;
    }
    loop {
        let r1 = rng.uniform_open();
        let r2 = rng.uniform();
        let r3 = rng.uniform_open();
        let lambda2 =
            -(r1.ln() + (std::f64::consts::TAU * r2 / 2.0).cos().powi(2) * r3.ln()) / (2.0 * alpha);
        let r4 = rng.uniform();
        if r4 * r4 <= 1.0 - lambda2 {
            return 1.0 - 2.0 * lambda2;
        }
    }
}

/// One SU(2)-subgroup heatbath hit on `U_μ(x)`.
fn su2_heatbath_hit(u: &mut Su3, staple: &Su3, beta: f64, p: usize, q: usize, rng: &mut SiteRng) {
    let w = *u * *staple;
    let (va, vb, k) = w.su2_project(p, q);
    if k < 1e-12 {
        return;
    }
    // P(A) ∝ exp((2βk/3) · x0(AV)); sample X = AV from the KP
    // distribution, then A = X V†.
    let alpha = 2.0 * beta * k / 3.0;
    let x0 = kp_sample_x0(alpha, rng);
    let r = (1.0 - x0 * x0).max(0.0).sqrt();
    // Random direction on the 2-sphere.
    let cos_t = 2.0 * rng.uniform() - 1.0;
    let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
    let phi = std::f64::consts::TAU * rng.uniform();
    let (x1, x2, x3) = (r * sin_t * phi.cos(), r * sin_t * phi.sin(), r * cos_t);
    // X as (a, b) parameters: a = x0 + i x3, b = x2 + i x1.
    let xa = C64::new(x0, x3);
    let xb = C64::new(x2, x1);
    // A = X V†: SU(2) multiply (a, b) ∘ conj-inverse of (va, vb).
    let aa = xa * va.conj() + xb * vb.conj();
    let ab = -xa * vb + xb * va;
    let a_mat = Su3::from_su2(aa, ab, p, q);
    *u = a_mat * *u;
}

/// One SU(2)-subgroup overrelaxation hit (microcanonical reflection
/// `A = (V†)²`).
fn su2_overrelax_hit(u: &mut Su3, staple: &Su3, p: usize, q: usize) {
    let w = *u * *staple;
    let (va, vb, k) = w.su2_project(p, q);
    if k < 1e-12 {
        return;
    }
    // (V†)² in (a, b) parameters: V† = (va*, -vb); square it.
    let ha = va.conj();
    let hb = -vb;
    let aa = ha * ha - hb * hb.conj();
    let ab = ha * hb + hb * ha.conj();
    let a_mat = Su3::from_su2(aa, ab, p, q);
    *u = a_mat * *u;
}

const SUBGROUPS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];

/// One full heatbath sweep (all sites, all directions, all subgroups).
pub fn heatbath_sweep(gauge: &mut GaugeField, beta: f64, seed: u64, sweep: u64) {
    let lat = gauge.lattice();
    for x in lat.sites() {
        for mu in 0..4 {
            let staple = staple_sum(gauge, x, mu);
            let mut rng = SiteRng::new(
                seed ^ sweep.wrapping_mul(0x9E3779B97F4A7C15) ^ (mu as u64) << 56,
                x as u64,
            );
            let mut u = *gauge.link(x, mu);
            for &(p, q) in &SUBGROUPS {
                su2_heatbath_hit(&mut u, &staple, beta, p, q, &mut rng);
            }
            *gauge.link_mut(x, mu) = u;
        }
    }
}

/// One full overrelaxation sweep.
pub fn overrelax_sweep(gauge: &mut GaugeField) {
    let lat = gauge.lattice();
    for x in lat.sites() {
        for mu in 0..4 {
            let staple = staple_sum(gauge, x, mu);
            let mut u = *gauge.link(x, mu);
            for &(p, q) in &SUBGROUPS {
                su2_overrelax_hit(&mut u, &staple, p, q);
            }
            *gauge.link_mut(x, mu) = u;
        }
    }
}

/// Run `sweeps` combined (heatbath + OR) sweeps; returns the plaquette
/// history, one entry per sweep.
pub fn evolve(gauge: &mut GaugeField, params: EvolveParams, seed: u64, sweeps: usize) -> Vec<f64> {
    let mut history = Vec::with_capacity(sweeps);
    for sweep in 0..sweeps {
        heatbath_sweep(gauge, params.beta, seed, sweep as u64);
        for _ in 0..params.or_per_hb {
            overrelax_sweep(gauge);
        }
        if params.reunit_interval > 0 && (sweep + 1) % params.reunit_interval == 0 {
            gauge.reunitarize();
        }
        history.push(average_plaquette(gauge));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    #[test]
    fn cold_plaquette_is_one() {
        let g = GaugeField::unit(lat());
        assert!((average_plaquette(&g) - 1.0).abs() < 1e-14);
        assert!(wilson_action(&g, 6.0).abs() < 1e-10);
    }

    #[test]
    fn hot_plaquette_is_small() {
        let g = GaugeField::hot(lat(), 1);
        let p = average_plaquette(&g);
        assert!(
            p.abs() < 0.2,
            "random links should have tiny plaquette, got {p}"
        );
    }

    #[test]
    fn staple_count_on_unit_links() {
        // Six staples, each the identity.
        let g = GaugeField::unit(lat());
        let s = staple_sum(&g, 0, 2);
        assert!((s.0[0][0].re - 6.0).abs() < 1e-12);
        assert!(s.0[0][1].abs() < 1e-12);
    }

    #[test]
    fn heatbath_thermalizes_toward_beta_band() {
        // At beta = 5.7 the quenched plaquette lands near 0.55-0.60; from a
        // hot start the heatbath must climb well above the random value and
        // stay below the cold value.
        let mut g = GaugeField::hot(lat(), 7);
        let history = evolve(&mut g, EvolveParams::default(), 99, 20);
        let p = *history.last().unwrap();
        assert!(p > 0.40 && p < 0.75, "plaquette after thermalization: {p}");
        assert!(g.max_unitarity_error() < 1e-9);
    }

    #[test]
    fn high_beta_stays_ordered() {
        let mut g = GaugeField::unit(lat());
        let history = evolve(
            &mut g,
            EvolveParams {
                beta: 100.0,
                ..Default::default()
            },
            3,
            5,
        );
        assert!(*history.last().unwrap() > 0.95);
    }

    #[test]
    fn overrelaxation_preserves_action() {
        let mut g = GaugeField::hot(lat(), 11);
        // Thermalize a little first.
        evolve(&mut g, EvolveParams::default(), 5, 5);
        let before = wilson_action(&g, 5.7);
        overrelax_sweep(&mut g);
        let after = wilson_action(&g, 5.7);
        // Microcanonical: action preserved up to rounding. Note each hit
        // preserves its own local action exactly; sweeping changes staples,
        // still exact in exact arithmetic.
        assert!(
            (before - after).abs() < 1e-6 * before.abs(),
            "OR changed action: {before} -> {after}"
        );
    }

    #[test]
    fn evolution_is_bit_reproducible() {
        // The §4 check, in miniature: evolve twice from the same start with
        // the same seed; fingerprints must match exactly.
        let small = Lattice::new([2, 2, 2, 2]);
        let mut g1 = GaugeField::hot(small, 42);
        let mut g2 = GaugeField::hot(small, 42);
        evolve(&mut g1, EvolveParams::default(), 1234, 6);
        evolve(&mut g2, EvolveParams::default(), 1234, 6);
        assert_eq!(
            g1.fingerprint(),
            g2.fingerprint(),
            "evolution must be bit-identical"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let small = Lattice::new([2, 2, 2, 2]);
        let mut g1 = GaugeField::hot(small, 42);
        let mut g2 = GaugeField::hot(small, 42);
        evolve(&mut g1, EvolveParams::default(), 1, 3);
        evolve(&mut g2, EvolveParams::default(), 2, 3);
        assert_ne!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn links_stay_in_su3() {
        let mut g = GaugeField::hot(lat(), 13);
        evolve(
            &mut g,
            EvolveParams {
                reunit_interval: 1,
                ..Default::default()
            },
            77,
            5,
        );
        assert!(g.max_unitarity_error() < 1e-10);
        // Spot-check determinants.
        for x in [0, 100, 200] {
            for mu in 0..4 {
                let d = g.link(x, mu).det();
                assert!((d - C64::ONE).abs() < 1e-9);
            }
        }
    }
}
