//! Lattice layouts and field containers.
//!
//! Field containers are generic over the [`Real`] scalar (default `f64`).
//! Randomized constructors ([`GaugeField::hot`], [`FermionField::gaussian`],
//! …) and fingerprints are double-precision-only: single-precision fields
//! are produced by *truncating* a double-precision field (`to_f32`), which
//! keeps the f32 stack a deterministic function of the f64 one.
//!
//! Cross-site reductions (`dot`, `norm_sqr`) accumulate in double precision
//! at every width, in site order — the same deterministic global-sum
//! discipline the QCDOC hardware tree enforces, and the property that lets
//! the mixed-precision solver keep bit-reproducible residuals.

use crate::colorvec::ColorVec;
use crate::complex::{Complex, C64};
use crate::real::Real;
use crate::rng::SiteRng;
use crate::spinor::Spinor;
use crate::su3::Su3;
use serde::{Deserialize, Serialize};

/// A periodic 4-D space-time lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lattice {
    dims: [usize; 4],
}

impl Lattice {
    /// A lattice with extents `[x, y, z, t]`.
    pub fn new(dims: [usize; 4]) -> Lattice {
        assert!(dims.iter().all(|&d| d >= 1), "extents must be >= 1");
        Lattice { dims }
    }

    /// The paper's canonical per-node benchmark volume, 4⁴.
    pub fn hyper4() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    /// Extents.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Number of sites.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Lexicographic index of a coordinate (x fastest).
    pub fn index(&self, c: [usize; 4]) -> usize {
        debug_assert!((0..4).all(|d| c[d] < self.dims[d]));
        ((c[3] * self.dims[2] + c[2]) * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Coordinate of a site index.
    pub fn coord(&self, mut idx: usize) -> [usize; 4] {
        let mut c = [0usize; 4];
        for (d, cd) in c.iter_mut().enumerate() {
            *cd = idx % self.dims[d];
            idx /= self.dims[d];
        }
        debug_assert_eq!(idx, 0);
        c
    }

    /// Index of the neighbour of `idx` one step along `mu` (`forward` or
    /// backward), with periodic wrap-around.
    pub fn neighbour(&self, idx: usize, mu: usize, forward: bool) -> usize {
        let mut c = self.coord(idx);
        let ext = self.dims[mu];
        c[mu] = if forward {
            (c[mu] + 1) % ext
        } else {
            (c[mu] + ext - 1) % ext
        };
        self.index(c)
    }

    /// Checkerboard parity of a site (0 = even, 1 = odd).
    pub fn parity(&self, idx: usize) -> usize {
        let c = self.coord(idx);
        (c[0] + c[1] + c[2] + c[3]) % 2
    }

    /// Iterate over all site indices.
    pub fn sites(&self) -> std::ops::Range<usize> {
        0..self.volume()
    }
}

/// Precomputed nearest-neighbour indices for every site of a [`Lattice`].
///
/// [`Lattice::neighbour`] recomputes the full coordinate (four div/mods)
/// on every call; a Dirac operator makes eight such calls per site per
/// application, which dominates the scalar kernels. Operators build one
/// table at construction time and look hops up instead. The table stores
/// exactly the values `Lattice::neighbour` returns, so kernels using it
/// are bit-identical to ones calling `neighbour` directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighbourTable {
    hops: Vec<[usize; 8]>,
}

impl NeighbourTable {
    /// Tabulate all eight hops (`2*mu + {0: forward, 1: backward}`) of
    /// every site.
    pub fn new(lat: Lattice) -> NeighbourTable {
        let hops = lat
            .sites()
            .map(|x| {
                let mut h = [0usize; 8];
                for mu in 0..4 {
                    h[2 * mu] = lat.neighbour(x, mu, true);
                    h[2 * mu + 1] = lat.neighbour(x, mu, false);
                }
                h
            })
            .collect();
        NeighbourTable { hops }
    }

    /// Forward neighbour of `x` along `mu` (= `lat.neighbour(x, mu, true)`).
    #[inline(always)]
    pub fn fwd(&self, x: usize, mu: usize) -> usize {
        self.hops[x][2 * mu]
    }

    /// Backward neighbour of `x` along `mu` (= `lat.neighbour(x, mu, false)`).
    #[inline(always)]
    pub fn bwd(&self, x: usize, mu: usize) -> usize {
        self.hops[x][2 * mu + 1]
    }
}

/// An SU(3) gauge field: four directed links per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeField<T: Real = f64> {
    lat: Lattice,
    links: Vec<[Su3<T>; 4]>,
}

impl<T: Real> GaugeField<T> {
    /// The free (unit-link) configuration.
    pub fn unit(lat: Lattice) -> GaugeField<T> {
        GaugeField {
            lat,
            links: vec![[Su3::IDENTITY; 4]; lat.volume()],
        }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Link `U_μ(x)`.
    #[inline]
    pub fn link(&self, site: usize, mu: usize) -> &Su3<T> {
        &self.links[site][mu]
    }

    /// Mutable link access.
    #[inline]
    pub fn link_mut(&mut self, site: usize, mu: usize) -> &mut Su3<T> {
        &mut self.links[site][mu]
    }

    /// Worst unitarity violation over all links.
    pub fn max_unitarity_error(&self) -> f64 {
        self.links
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|u| u.unitarity_error().to_f64())
            .fold(0.0, f64::max)
    }

    /// Reunitarize every link in place.
    pub fn reunitarize(&mut self) {
        for ls in &mut self.links {
            for u in ls.iter_mut() {
                *u = u.reunitarize();
            }
        }
    }
}

impl GaugeField {
    /// A "hot" start: links drawn independently and site-deterministically,
    /// then reunitarized — reproducible for any node decomposition.
    pub fn hot(lat: Lattice, seed: u64) -> GaugeField {
        let mut g = GaugeField::unit(lat);
        for idx in lat.sites() {
            let mut rng = SiteRng::new(seed, idx as u64);
            for mu in 0..4 {
                let mut m = Su3::ZERO;
                for r in 0..3 {
                    for c in 0..3 {
                        m.0[r][c] = C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5);
                    }
                }
                g.links[idx][mu] = m.reunitarize();
            }
        }
        g
    }

    /// Truncate every link to single precision.
    pub fn to_f32(&self) -> GaugeField<f32> {
        GaugeField {
            lat: self.lat,
            links: self
                .links
                .iter()
                .map(|ls| {
                    [
                        Su3::from_c64_mat(&ls[0]),
                        Su3::from_c64_mat(&ls[1]),
                        Su3::from_c64_mat(&ls[2]),
                        Su3::from_c64_mat(&ls[3]),
                    ]
                })
                .collect(),
        }
    }

    /// Bitwise fingerprint of the configuration — the §4 reproducibility
    /// check compares these after independent evolutions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for ls in &self.links {
            for u in ls {
                for r in 0..3 {
                    for c in 0..3 {
                        for bits in [u.0[r][c].re.to_bits(), u.0[r][c].im.to_bits()] {
                            h ^= bits;
                            h = h.wrapping_mul(0x100000001B3);
                        }
                    }
                }
            }
        }
        h
    }
}

/// A Wilson-type fermion field: one 4-spinor per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FermionField<T: Real = f64> {
    lat: Lattice,
    data: Vec<Spinor<T>>,
}

impl<T: Real> FermionField<T> {
    /// The zero field.
    pub fn zero(lat: Lattice) -> FermionField<T> {
        FermionField {
            lat,
            data: vec![Spinor::ZERO; lat.volume()],
        }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Site accessor.
    #[inline]
    pub fn site(&self, idx: usize) -> &Spinor<T> {
        &self.data[idx]
    }

    /// Mutable site accessor.
    #[inline]
    pub fn site_mut(&mut self, idx: usize) -> &mut Spinor<T> {
        &mut self.data[idx]
    }

    /// Hermitian inner product, accumulated in double precision in site
    /// order (deterministic at both widths).
    pub fn dot(&self, rhs: &FermionField<T>) -> C64 {
        assert_eq!(self.lat, rhs.lat);
        let mut acc = C64::ZERO;
        for i in self.lat.sites() {
            acc += self.data[i].dot(&rhs.data[i]).to_c64();
        }
        acc
    }

    /// Squared L2 norm, accumulated in double precision.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|s| s.norm_sqr().to_f64()).sum()
    }

    /// `self += a * rhs`.
    pub fn axpy(&mut self, a: C64, rhs: &FermionField<T>) {
        assert_eq!(self.lat, rhs.lat);
        let a = Complex::from_c64(a);
        for i in self.lat.sites() {
            self.data[i] = self.data[i].axpy(a, &rhs.data[i]);
        }
    }

    /// `self = a * self + rhs` (the CG `p`-update shape).
    pub fn xpay(&mut self, a: C64, rhs: &FermionField<T>) {
        assert_eq!(self.lat, rhs.lat);
        let a = Complex::from_c64(a);
        for i in self.lat.sites() {
            self.data[i] = rhs.data[i].axpy(a, &self.data[i]);
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, a: C64) {
        let a = Complex::from_c64(a);
        for s in &mut self.data {
            *s = s.scale(a);
        }
    }
}

impl FermionField {
    /// A Gaussian random field, site-deterministic.
    pub fn gaussian(lat: Lattice, seed: u64) -> FermionField {
        let mut f = FermionField::zero(lat);
        for idx in lat.sites() {
            let mut rng = SiteRng::new(seed ^ 0xF00D, idx as u64);
            for s in 0..4 {
                for c in 0..3 {
                    f.data[idx].0[s].0[c] = C64::new(rng.normal(), rng.normal());
                }
            }
        }
        f
    }

    /// A point source: unit spin-0/color-0 at `site`.
    pub fn point_source(lat: Lattice, site: usize) -> FermionField {
        let mut f = FermionField::zero(lat);
        f.data[site].0[0] = ColorVec::basis(0);
        f
    }

    /// Truncate every site to single precision.
    pub fn to_f32(&self) -> FermionField<f32> {
        FermionField {
            lat: self.lat,
            data: self.data.iter().map(Spinor::from_f64_spinor).collect(),
        }
    }

    /// Bitwise fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for sp in &self.data {
            for s in 0..4 {
                for c in 0..3 {
                    for bits in [sp.0[s].0[c].re.to_bits(), sp.0[s].0[c].im.to_bits()] {
                        h ^= bits;
                        h = h.wrapping_mul(0x100000001B3);
                    }
                }
            }
        }
        h
    }
}

impl FermionField<f32> {
    /// Widen every site to double precision (exact).
    pub fn to_f64(&self) -> FermionField {
        FermionField {
            lat: self.lat,
            data: self.data.iter().map(Spinor::to_f64_spinor).collect(),
        }
    }
}

/// A staggered fermion field: one color vector per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaggeredField<T: Real = f64> {
    lat: Lattice,
    data: Vec<ColorVec<T>>,
}

impl<T: Real> StaggeredField<T> {
    /// The zero field.
    pub fn zero(lat: Lattice) -> StaggeredField<T> {
        StaggeredField {
            lat,
            data: vec![ColorVec::ZERO; lat.volume()],
        }
    }

    /// The lattice this field lives on.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Site accessor.
    #[inline]
    pub fn site(&self, idx: usize) -> &ColorVec<T> {
        &self.data[idx]
    }

    /// Mutable site accessor.
    #[inline]
    pub fn site_mut(&mut self, idx: usize) -> &mut ColorVec<T> {
        &mut self.data[idx]
    }

    /// Hermitian inner product, accumulated in double precision in site
    /// order.
    pub fn dot(&self, rhs: &StaggeredField<T>) -> C64 {
        assert_eq!(self.lat, rhs.lat);
        let mut acc = C64::ZERO;
        for i in self.lat.sites() {
            acc += self.data[i].dot(&rhs.data[i]).to_c64();
        }
        acc
    }

    /// Squared L2 norm, accumulated in double precision.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|s| s.norm_sqr().to_f64()).sum()
    }

    /// `self += a * rhs`.
    pub fn axpy(&mut self, a: C64, rhs: &StaggeredField<T>) {
        assert_eq!(self.lat, rhs.lat);
        let a = Complex::from_c64(a);
        for i in self.lat.sites() {
            self.data[i] = self.data[i].axpy(a, &rhs.data[i]);
        }
    }

    /// `self = a * self + rhs`.
    pub fn xpay(&mut self, a: C64, rhs: &StaggeredField<T>) {
        assert_eq!(self.lat, rhs.lat);
        let a = Complex::from_c64(a);
        for i in self.lat.sites() {
            self.data[i] = rhs.data[i].axpy(a, &self.data[i]);
        }
    }
}

impl StaggeredField {
    /// A Gaussian random field, site-deterministic.
    pub fn gaussian(lat: Lattice, seed: u64) -> StaggeredField {
        let mut f = StaggeredField::zero(lat);
        for idx in lat.sites() {
            let mut rng = SiteRng::new(seed ^ 0x57A6, idx as u64);
            for c in 0..3 {
                f.data[idx].0[c] = C64::new(rng.normal(), rng.normal());
            }
        }
        f
    }

    /// Truncate every site to single precision.
    pub fn to_f32(&self) -> StaggeredField<f32> {
        StaggeredField {
            lat: self.lat,
            data: self.data.iter().map(ColorVec::from_c64_vec).collect(),
        }
    }
}

impl StaggeredField<f32> {
    /// Widen every site to double precision (exact).
    pub fn to_f64(&self) -> StaggeredField {
        StaggeredField {
            lat: self.lat,
            data: self.data.iter().map(ColorVec::to_c64_vec).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_bijection() {
        let lat = Lattice::new([3, 4, 2, 5]);
        for idx in lat.sites() {
            assert_eq!(lat.index(lat.coord(idx)), idx);
        }
    }

    #[test]
    fn neighbour_wraps_periodically() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let origin = lat.index([0, 0, 0, 0]);
        let back = lat.neighbour(origin, 3, false);
        assert_eq!(lat.coord(back), [0, 0, 0, 3]);
        assert_eq!(lat.neighbour(back, 3, true), origin);
    }

    #[test]
    fn neighbour_round_trip_all_directions() {
        let lat = Lattice::new([2, 4, 2, 4]);
        for idx in lat.sites() {
            for mu in 0..4 {
                assert_eq!(lat.neighbour(lat.neighbour(idx, mu, true), mu, false), idx);
            }
        }
    }

    #[test]
    fn parity_flips_across_links() {
        let lat = Lattice::new([4, 4, 4, 4]);
        for idx in lat.sites() {
            for mu in 0..4 {
                let nb = lat.neighbour(idx, mu, true);
                assert_ne!(lat.parity(idx), lat.parity(nb));
            }
        }
    }

    #[test]
    fn parity_halves_the_lattice() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let even = lat.sites().filter(|&i| lat.parity(i) == 0).count();
        assert_eq!(even, lat.volume() / 2);
    }

    #[test]
    fn hot_start_is_unitary_and_reproducible() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let a = GaugeField::hot(lat, 11);
        let b = GaugeField::hot(lat, 11);
        assert!(a.max_unitarity_error() < 1e-12);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = GaugeField::hot(lat, 12);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fermion_vector_space_ops() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let a = FermionField::gaussian(lat, 1);
        let b = FermionField::gaussian(lat, 2);
        // dot(a, a) == |a|^2.
        assert!((a.dot(&a).re - a.norm_sqr()).abs() < 1e-9);
        assert!(a.dot(&a).im.abs() < 1e-10);
        // axpy linearity: |a + b|^2 = |a|^2 + 2 Re<a,b> + |b|^2.
        let mut apb = a.clone();
        apb.axpy(C64::ONE, &b);
        let lhs = apb.norm_sqr();
        let rhs = a.norm_sqr() + 2.0 * a.dot(&b).re + b.norm_sqr();
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn point_source_has_unit_norm() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let src = FermionField::point_source(lat, 17);
        assert!((src.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn gaussian_field_is_decomposition_independent() {
        // The per-site RNG means the field depends only on global indices —
        // two identically-seeded builds agree bitwise.
        let lat = Lattice::new([4, 2, 2, 2]);
        let a = FermionField::gaussian(lat, 5);
        let b = FermionField::gaussian(lat, 5);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn staggered_ops() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let a = StaggeredField::gaussian(lat, 3);
        let b = StaggeredField::gaussian(lat, 4);
        let d = a.dot(&b);
        let d2 = b.dot(&a);
        assert!((d - d2.conj()).abs() < 1e-10);
        let mut c = a.clone();
        c.axpy(C64::real(-1.0), &a);
        assert!(c.norm_sqr() < 1e-20);
    }

    #[test]
    fn precision_truncation_roundtrip() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let a = FermionField::gaussian(lat, 9);
        let lo = a.to_f32();
        // Truncation loses bits, but widening back is exact on what's left.
        let hi = lo.to_f64();
        for i in lat.sites() {
            for s in 0..4 {
                for c in 0..3 {
                    let orig = a.site(i).0[s].0[c];
                    let back = hi.site(i).0[s].0[c];
                    assert!((orig - back).abs() < 1e-6 * orig.abs().max(1.0));
                }
            }
        }
        let g = GaugeField::hot(lat, 10);
        let g32 = g.to_f32();
        assert!(g32.max_unitarity_error() < 1e-5);
    }
}
