//! Even/odd (red/black) preconditioning of the Wilson operator.
//!
//! The Wilson matrix only couples sites of opposite checkerboard parity,
//! so in the parity basis
//!
//! ```text
//! M = [ 1        −κ D_eo ]
//!     [ −κ D_oe   1      ]
//! ```
//!
//! and the Schur complement `M̂ = 1 − κ² D_eo D_oe` acts on even sites
//! only. Solving `M̂ x_e = b_e + κ D_eo b_o` and back-substituting
//! `x_o = b_o + κ D_oe x_e` halves the vector length and roughly halves
//! the iteration count — the standard production trick of the era's QCD
//! codes (and the reason the per-node layouts in §4 are checkerboarded).

use crate::complex::C64;
use crate::field::{FermionField, GaugeField, Lattice};
use crate::solver::{CgParams, CgReport, DiracOperator, KrylovVector};
use crate::spinor::{ProjSign, Spinor};
use serde::{Deserialize, Serialize};

/// Site ordering for one parity: dense indices 0..V/2 per checkerboard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EoLayout {
    lat: Lattice,
    /// Full-lattice site index of each (parity, dense index).
    site_of: [Vec<usize>; 2],
    /// (parity, dense index) of each full-lattice site.
    eo_of: Vec<(usize, usize)>,
}

impl EoLayout {
    /// Build the layout for a lattice (requires an even volume).
    pub fn new(lat: Lattice) -> EoLayout {
        assert!(
            lat.volume().is_multiple_of(2),
            "even/odd split needs even volume"
        );
        let mut site_of = [Vec::new(), Vec::new()];
        let mut eo_of = vec![(0usize, 0usize); lat.volume()];
        for x in lat.sites() {
            let p = lat.parity(x);
            eo_of[x] = (p, site_of[p].len());
            site_of[p].push(x);
        }
        EoLayout {
            lat,
            site_of,
            eo_of,
        }
    }

    /// The lattice.
    pub fn lattice(&self) -> Lattice {
        self.lat
    }

    /// Sites per parity.
    pub fn half_volume(&self) -> usize {
        self.lat.volume() / 2
    }

    /// Full-lattice site of `(parity, dense)`.
    pub fn site(&self, parity: usize, dense: usize) -> usize {
        self.site_of[parity][dense]
    }

    /// `(parity, dense)` of a full-lattice site.
    pub fn eo(&self, site: usize) -> (usize, usize) {
        self.eo_of[site]
    }

    /// Split a full field into (even, odd) halves.
    pub fn split(&self, f: &FermionField) -> (EoField, EoField) {
        let mut even = EoField::zero(self.half_volume());
        let mut odd = EoField::zero(self.half_volume());
        for x in self.lat.sites() {
            let (p, d) = self.eo_of[x];
            if p == 0 {
                even.data[d] = *f.site(x);
            } else {
                odd.data[d] = *f.site(x);
            }
        }
        (even, odd)
    }

    /// Join parity halves back into a full field.
    pub fn join(&self, even: &EoField, odd: &EoField) -> FermionField {
        let mut f = FermionField::zero(self.lat);
        for x in self.lat.sites() {
            let (p, d) = self.eo_of[x];
            *f.site_mut(x) = if p == 0 { even.data[d] } else { odd.data[d] };
        }
        f
    }
}

/// A spinor field living on one checkerboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EoField {
    data: Vec<Spinor>,
}

impl EoField {
    /// The zero half-field.
    pub fn zero(half_volume: usize) -> EoField {
        EoField {
            data: vec![Spinor::ZERO; half_volume],
        }
    }

    /// Site accessor.
    pub fn site(&self, d: usize) -> &Spinor {
        &self.data[d]
    }

    /// Mutable site accessor.
    pub fn site_mut(&mut self, d: usize) -> &mut Spinor {
        &mut self.data[d]
    }
}

impl KrylovVector for EoField {
    fn dot(&self, rhs: &Self) -> C64 {
        let mut acc = C64::ZERO;
        for (a, b) in self.data.iter().zip(&rhs.data) {
            acc += a.dot(b);
        }
        acc
    }
    fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|s| s.norm_sqr()).sum()
    }
    fn axpy(&mut self, a: C64, rhs: &Self) {
        for (x, y) in self.data.iter_mut().zip(&rhs.data) {
            *x = x.axpy(a, y);
        }
    }
    fn xpay(&mut self, a: C64, rhs: &Self) {
        for (x, y) in self.data.iter_mut().zip(&rhs.data) {
            *x = y.axpy(a, x);
        }
    }
    fn fill_zero(&mut self) {
        for s in &mut self.data {
            *s = Spinor::ZERO;
        }
    }
    fn to_bits(&self) -> Vec<u64> {
        let mut bits = Vec::with_capacity(self.data.len() * 24);
        for sp in &self.data {
            for cv in &sp.0 {
                for z in &cv.0 {
                    bits.push(z.re.to_bits());
                    bits.push(z.im.to_bits());
                }
            }
        }
        bits
    }
    fn load_bits(&mut self, bits: &[u64]) {
        assert_eq!(bits.len(), self.data.len() * 24, "half-field word count");
        let mut it = bits.iter();
        for sp in &mut self.data {
            for cv in &mut sp.0 {
                for z in &mut cv.0 {
                    z.re = f64::from_bits(*it.next().expect("length checked"));
                    z.im = f64::from_bits(*it.next().expect("length checked"));
                }
            }
        }
    }
}

/// The even/odd-preconditioned Wilson operator.
#[derive(Debug, Clone)]
pub struct EoWilson<'a> {
    gauge: &'a GaugeField,
    layout: EoLayout,
    kappa: f64,
}

impl<'a> EoWilson<'a> {
    /// Build from a gauge field and hopping parameter.
    pub fn new(gauge: &'a GaugeField, kappa: f64) -> EoWilson<'a> {
        EoWilson {
            gauge,
            layout: EoLayout::new(gauge.lattice()),
            kappa,
        }
    }

    /// The layout.
    pub fn layout(&self) -> &EoLayout {
        &self.layout
    }

    /// The parity-changing hop: `out[target parity] = D in[source parity]`.
    /// `target` is 0 (even) for `D_eo` (odd → even) and 1 for `D_oe`.
    pub fn hop(&self, target: usize, inp: &EoField) -> EoField {
        let lat = self.layout.lat;
        let mut out = EoField::zero(self.layout.half_volume());
        for d in 0..self.layout.half_volume() {
            let x = self.layout.site(target, d);
            let mut acc = Spinor::ZERO;
            for mu in 0..4 {
                let xf = lat.neighbour(x, mu, true);
                let (_, df) = self.layout.eo(xf);
                let hf = inp.data[df]
                    .project(mu, ProjSign::Minus)
                    .mul_su3(self.gauge.link(x, mu));
                acc += Spinor::reconstruct(&hf, mu, ProjSign::Minus);
                let xb = lat.neighbour(x, mu, false);
                let (_, db) = self.layout.eo(xb);
                let hb = inp.data[db]
                    .project(mu, ProjSign::Plus)
                    .adj_mul_su3(self.gauge.link(xb, mu));
                acc += Spinor::reconstruct(&hb, mu, ProjSign::Plus);
            }
            out.data[d] = acc;
        }
        out
    }

    /// The Schur complement `M̂ = 1 − κ² D_eo D_oe` on even sites.
    pub fn apply_mhat(&self, out: &mut EoField, inp: &EoField) {
        let doe = self.hop(1, inp); // even -> odd
        let deo = self.hop(0, &doe); // odd -> even
        *out = inp.clone();
        out.axpy(C64::real(-self.kappa * self.kappa), &deo);
    }

    /// `M̂† = γ₅ M̂ γ₅` (inherited from the full operator).
    pub fn apply_mhat_dagger(&self, out: &mut EoField, inp: &EoField) {
        let mut tmp = inp.clone();
        for s in &mut tmp.data {
            *s = s.apply_gamma5();
        }
        let mut mid = EoField::zero(self.layout.half_volume());
        self.apply_mhat(&mut mid, &tmp);
        *out = mid;
        for s in &mut out.data {
            *s = s.apply_gamma5();
        }
    }

    /// Solve `M x = b` by preconditioned CG. Returns the full-lattice
    /// solution and the CG report of the even-site solve.
    pub fn solve(&self, b: &FermionField, params: CgParams) -> (FermionField, CgReport) {
        let (be, bo) = self.layout.split(b);
        // b̂_e = b_e + κ D_eo b_o.
        let deo_bo = self.hop(0, &bo);
        let mut bhat = be.clone();
        bhat.axpy(C64::real(self.kappa), &deo_bo);
        // CG on M̂† M̂ x_e = M̂† b̂.
        let wrapper = EoOperator { op: self };
        let mut xe = EoField::zero(self.layout.half_volume());
        let report = crate::solver::solve_cgne(&wrapper, &mut xe, &bhat, params);
        // x_o = b_o + κ D_oe x_e.
        let doe_xe = self.hop(1, &xe);
        let mut xo = bo.clone();
        xo.axpy(C64::real(self.kappa), &doe_xe);
        (self.layout.join(&xe, &xo), report)
    }
}

/// Adapter implementing the solver trait for the Schur complement.
struct EoOperator<'a, 'g> {
    op: &'a EoWilson<'g>,
}

impl DiracOperator for EoOperator<'_, '_> {
    type Field = EoField;
    fn apply(&self, out: &mut EoField, inp: &EoField) {
        self.op.apply_mhat(out, inp);
    }
    fn apply_dagger(&self, out: &mut EoField, inp: &EoField) {
        self.op.apply_mhat_dagger(out, inp);
    }
    fn name(&self) -> &'static str {
        "wilson-eo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wilson::WilsonDirac;

    fn lat() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    #[test]
    fn split_join_roundtrip() {
        let layout = EoLayout::new(lat());
        let f = FermionField::gaussian(lat(), 1);
        let (e, o) = layout.split(&f);
        let back = layout.join(&e, &o);
        assert_eq!(back.fingerprint(), f.fingerprint());
    }

    #[test]
    fn hop_changes_parity_only() {
        // D_oe of a field supported on even sites lands only on odd sites,
        // matching the full dslash restricted to those sites.
        let gauge = GaugeField::hot(lat(), 2);
        let eo = EoWilson::new(&gauge, 0.1);
        let psi = FermionField::gaussian(lat(), 3);
        let (pe, _po) = eo.layout.split(&psi);
        // Zero odd part, apply full dslash, compare odd output with hop.
        let full_in = eo.layout.join(&pe, &EoField::zero(eo.layout.half_volume()));
        let d = WilsonDirac::new(&gauge, 0.1);
        let mut full_out = FermionField::zero(lat());
        d.dslash(&mut full_out, &full_in);
        let hop_out = eo.hop(1, &pe);
        for dd in 0..eo.layout.half_volume() {
            let x = eo.layout.site(1, dd);
            let want = full_out.site(x);
            let got = hop_out.site(dd);
            for s in 0..4 {
                for c in 0..3 {
                    assert_eq!(got.0[s].0[c].re.to_bits(), want.0[s].0[c].re.to_bits());
                }
            }
        }
        // The even part of the full dslash output must vanish (parity
        // coupling only).
        for dd in 0..eo.layout.half_volume() {
            let x = eo.layout.site(0, dd);
            assert!(full_out.site(x).norm_sqr() < 1e-30);
        }
    }

    #[test]
    fn preconditioned_solution_matches_unpreconditioned() {
        let gauge = GaugeField::hot(lat(), 4);
        let b = FermionField::gaussian(lat(), 5);
        let kappa = 0.12;
        let params = CgParams {
            tolerance: 1e-10,
            max_iterations: 4000,
        };
        // Unpreconditioned.
        let d = WilsonDirac::new(&gauge, kappa);
        let mut x_full = FermionField::zero(lat());
        let full_report = crate::solver::solve_cgne(&d, &mut x_full, &b, params);
        // Preconditioned.
        let eo = EoWilson::new(&gauge, kappa);
        let (x_eo, eo_report) = eo.solve(&b, params);
        assert!(full_report.converged && eo_report.converged);
        // Same solution.
        let mut diff = x_eo.clone();
        diff.axpy(C64::real(-1.0), &x_full);
        assert!(
            diff.norm_sqr() / x_full.norm_sqr() < 1e-12,
            "solutions differ: {}",
            diff.norm_sqr() / x_full.norm_sqr()
        );
        // And with fewer iterations — the point of the preconditioning.
        assert!(
            eo_report.iterations < full_report.iterations,
            "eo {} vs full {}",
            eo_report.iterations,
            full_report.iterations
        );
    }

    #[test]
    fn preconditioned_residual_is_true_residual() {
        let gauge = GaugeField::hot(lat(), 6);
        let b = FermionField::gaussian(lat(), 7);
        let eo = EoWilson::new(&gauge, 0.11);
        let (x, report) = eo.solve(&b, CgParams::default());
        assert!(report.converged);
        // Verify against the full operator: |Mx - b| / |b| small.
        let d = WilsonDirac::new(&gauge, 0.11);
        let mut mx = FermionField::zero(lat());
        d.apply(&mut mx, &x);
        mx.axpy(C64::real(-1.0), &b);
        assert!((mx.norm_sqr() / b.norm_sqr()).sqrt() < 1e-6);
    }

    #[test]
    fn mhat_is_gamma5_hermitian() {
        let gauge = GaugeField::hot(lat(), 8);
        let eo = EoWilson::new(&gauge, 0.13);
        let hv = eo.layout.half_volume();
        let (u, _) = eo.layout.split(&FermionField::gaussian(lat(), 9));
        let (v, _) = eo.layout.split(&FermionField::gaussian(lat(), 10));
        let mut mv = EoField::zero(hv);
        eo.apply_mhat(&mut mv, &v);
        let mut mdu = EoField::zero(hv);
        eo.apply_mhat_dagger(&mut mdu, &u);
        let a = u.dot(&mv);
        let bb = mdu.dot(&v);
        assert!((a - bb).abs() < 1e-8 * a.abs().max(1.0));
    }
}
