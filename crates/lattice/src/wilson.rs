//! The Wilson Dirac operator — "naive Wilson fermions" of the §4
//! benchmarks.
//!
//! Hopping (κ) normalization:
//!
//! ```text
//! M ψ(x) = ψ(x) − κ Σ_μ [ U_μ(x) (1−γ_μ) ψ(x+μ̂) + U_μ†(x−μ̂) (1+γ_μ) ψ(x−μ̂) ]
//! ```
//!
//! The operator is γ₅-Hermitian (`M† = γ₅ M γ₅`), which is how
//! [`WilsonDirac::apply_dagger`] is implemented, and the spin projection
//! trick of [`crate::spinor`] halves the work and the neighbour traffic.

use crate::complex::{Complex, C64};
use crate::field::{FermionField, GaugeField, NeighbourTable};
use crate::real::Real;
use crate::spinor::{ProjSign, Spinor};

/// The Wilson Dirac operator on a fixed gauge background.
///
/// Generic over the [`Real`] scalar of the gauge/fermion fields; the
/// hopping parameter is always stored in double precision and truncated at
/// application time (identity for the `f64` instantiation).
#[derive(Debug, Clone)]
pub struct WilsonDirac<'a, T: Real = f64> {
    gauge: &'a GaugeField<T>,
    kappa: f64,
    hops: NeighbourTable,
}

impl<'a, T: Real> WilsonDirac<'a, T> {
    /// Build with hopping parameter `kappa` (free-field critical value is
    /// 1/8).
    pub fn new(gauge: &'a GaugeField<T>, kappa: f64) -> WilsonDirac<'a, T> {
        let hops = NeighbourTable::new(gauge.lattice());
        WilsonDirac { gauge, kappa, hops }
    }

    /// The hopping parameter.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The gauge field.
    pub fn gauge(&self) -> &GaugeField<T> {
        self.gauge
    }

    /// The hopping term alone:
    /// `(Dψ)(x) = Σ_μ [U_μ(x)(1−γ_μ)ψ(x+μ̂) + U†_μ(x−μ̂)(1+γ_μ)ψ(x−μ̂)]`.
    pub fn dslash(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        let lat = self.gauge.lattice();
        assert_eq!(inp.lattice(), lat);
        assert_eq!(out.lattice(), lat);
        for x in lat.sites() {
            let mut acc = Spinor::ZERO;
            for mu in 0..4 {
                // Forward: U_mu(x) (1-gamma_mu) psi(x+mu).
                let xf = self.hops.fwd(x, mu);
                let hf = inp
                    .site(xf)
                    .project(mu, ProjSign::Minus)
                    .mul_su3(self.gauge.link(x, mu));
                acc += Spinor::reconstruct(&hf, mu, ProjSign::Minus);
                // Backward: U_mu(x-mu)^dag (1+gamma_mu) psi(x-mu).
                let xb = self.hops.bwd(x, mu);
                let hb = inp
                    .site(xb)
                    .project(mu, ProjSign::Plus)
                    .adj_mul_su3(self.gauge.link(xb, mu));
                acc += Spinor::reconstruct(&hb, mu, ProjSign::Plus);
            }
            *out.site_mut(x) = acc;
        }
    }

    /// The full operator `M = 1 − κ D`.
    pub fn apply(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        self.dslash(out, inp);
        let lat = inp.lattice();
        let mk = Complex::from_c64(C64::real(-self.kappa));
        for x in lat.sites() {
            *out.site_mut(x) = inp.site(x).axpy(mk, out.site(x));
        }
    }

    /// `M† = γ₅ M γ₅`.
    ///
    /// Applies the outer γ₅ in place on `out` (γ₅ only negates components,
    /// which is exact, so this matches the textbook three-buffer form bit
    /// for bit while allocating one temporary instead of two).
    pub fn apply_dagger(&self, out: &mut FermionField<T>, inp: &FermionField<T>) {
        let lat = inp.lattice();
        let mut tmp = FermionField::zero(lat);
        for x in lat.sites() {
            *tmp.site_mut(x) = inp.site(x).apply_gamma5();
        }
        self.apply(out, &tmp);
        for x in lat.sites() {
            let g = out.site(x).apply_gamma5();
            *out.site_mut(x) = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Lattice;

    fn small() -> Lattice {
        Lattice::new([4, 4, 4, 4])
    }

    #[test]
    fn free_field_plane_constant_mode() {
        // On unit links, the constant spinor is an eigenvector of the
        // hopping term with eigenvalue 8 (each of 8 hops contributes the
        // projector pair summing to 2 per direction... in fact
        // sum_mu (1-g)+(1+g) = 8 identity on a constant field).
        let lat = small();
        let gauge = GaugeField::unit(lat);
        let d = WilsonDirac::new(&gauge, 0.1);
        let mut inp = FermionField::zero(lat);
        for x in lat.sites() {
            *inp.site_mut(x) = *FermionField::gaussian(lat, 3).site(0);
        }
        let mut out = FermionField::zero(lat);
        d.dslash(&mut out, &inp);
        for x in lat.sites() {
            for s in 0..4 {
                for c in 0..3 {
                    let expect = inp.site(x).0[s].0[c] * 8.0;
                    assert!((out.site(x).0[s].0[c] - expect).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn operator_reduces_to_identity_at_kappa_zero() {
        let lat = small();
        let gauge = GaugeField::hot(lat, 1);
        let d = WilsonDirac::new(&gauge, 0.0);
        let inp = FermionField::gaussian(lat, 2);
        let mut out = FermionField::zero(lat);
        d.apply(&mut out, &inp);
        for x in lat.sites() {
            for s in 0..4 {
                for c in 0..3 {
                    assert_eq!(
                        out.site(x).0[s].0[c].re.to_bits(),
                        inp.site(x).0[s].0[c].re.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn gamma5_hermiticity() {
        // <u, M v> == <M† u, v> with M† implemented as γ5 M γ5.
        let lat = small();
        let gauge = GaugeField::hot(lat, 7);
        let d = WilsonDirac::new(&gauge, 0.124);
        let u = FermionField::gaussian(lat, 10);
        let v = FermionField::gaussian(lat, 11);
        let mut mv = FermionField::zero(lat);
        d.apply(&mut mv, &v);
        let mut mdag_u = FermionField::zero(lat);
        d.apply_dagger(&mut mdag_u, &u);
        let a = u.dot(&mv);
        let b = mdag_u.dot(&v);
        assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn dslash_is_linear() {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, 3);
        let d = WilsonDirac::new(&gauge, 0.1);
        let a = FermionField::gaussian(lat, 20);
        let b = FermionField::gaussian(lat, 21);
        let mut ab = a.clone();
        ab.axpy(C64::new(0.5, -0.25), &b);
        let mut out_ab = FermionField::zero(lat);
        d.dslash(&mut out_ab, &ab);
        let mut out_a = FermionField::zero(lat);
        d.dslash(&mut out_a, &a);
        let mut out_b = FermionField::zero(lat);
        d.dslash(&mut out_b, &b);
        out_a.axpy(C64::new(0.5, -0.25), &out_b);
        for x in lat.sites() {
            for s in 0..4 {
                for c in 0..3 {
                    assert!((out_ab.site(x).0[s].0[c] - out_a.site(x).0[s].0[c]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn dslash_couples_only_nearest_neighbours() {
        // A point source spreads exactly one hop per application.
        let lat = small();
        let gauge = GaugeField::hot(lat, 9);
        let d = WilsonDirac::new(&gauge, 0.1);
        let src_site = lat.index([1, 2, 3, 0]);
        let src = FermionField::point_source(lat, src_site);
        let mut out = FermionField::zero(lat);
        d.dslash(&mut out, &src);
        for x in lat.sites() {
            let nonzero = out.site(x).norm_sqr() > 1e-20;
            let is_neighbour = (0..4).any(|mu| {
                lat.neighbour(x, mu, true) == src_site || lat.neighbour(x, mu, false) == src_site
            });
            assert_eq!(nonzero, is_neighbour, "site {:?}", lat.coord(x));
        }
    }

    #[test]
    fn gauge_covariance_of_norm() {
        // A random gauge transformation leaves |M psi| invariant when psi
        // transforms too. We check the weaker invariant: |dslash psi| on a
        // transformed (gauge, psi) pair equals the original.
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::hot(lat, 30);
        let psi = FermionField::gaussian(lat, 31);
        // Gauge transformation Omega(x).
        let omega = GaugeField::hot(lat, 32); // reuse links[.][0] as Omega
        let mut gauge2 = gauge.clone();
        let mut psi2 = FermionField::zero(lat);
        for x in lat.sites() {
            let om_x = *omega.link(x, 0);
            for mu in 0..4 {
                let xf = lat.neighbour(x, mu, true);
                let om_xf = *omega.link(xf, 0);
                *gauge2.link_mut(x, mu) = om_x * *gauge.link(x, mu) * om_xf.adjoint();
            }
            let s = psi.site(x);
            let mut t = Spinor::ZERO;
            for sp in 0..4 {
                t.0[sp] = om_x.mul_vec(&s.0[sp]);
            }
            *psi2.site_mut(x) = t;
        }
        let d1 = WilsonDirac::new(&gauge, 0.11);
        let d2 = WilsonDirac::new(&gauge2, 0.11);
        let mut o1 = FermionField::zero(lat);
        let mut o2 = FermionField::zero(lat);
        d1.apply(&mut o1, &psi);
        d2.apply(&mut o2, &psi2);
        assert!(
            (o1.norm_sqr() - o2.norm_sqr()).abs() < 1e-8 * o1.norm_sqr(),
            "{} vs {}",
            o1.norm_sqr(),
            o2.norm_sqr()
        );
    }
}
