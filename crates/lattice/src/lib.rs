//! Lattice QCD workloads for the QCDOC reproduction.
//!
//! QCDOC exists to run lattice QCD, and the paper benchmarks it on the
//! conjugate-gradient solution of the Dirac equation for four fermion
//! discretizations: naive Wilson, clover-improved Wilson, ASQTAD staggered
//! (§4: 40%, 46.5% and 38% of peak respectively at 4⁴ local volume) and
//! domain-wall fermions (the five-dimensional formulation the machine's
//! sixth network dimension anticipates). This crate implements that
//! workload suite from scratch:
//!
//! * [`complex`], [`su3`], [`colorvec`], [`spinor`], [`gamma`] — the dense
//!   algebra: complex numbers, SU(3) matrices, color vectors, 4-spinors and
//!   the Euclidean gamma-matrix basis with its spin projectors;
//! * [`field`] — 4-D (and 5-D) lattice layouts, gauge and fermion fields,
//!   even/odd checkerboarding;
//! * [`rng`] — a deterministic, site-indexed parallel RNG so field
//!   generation is bit-reproducible regardless of node decomposition;
//! * [`gauge`] — plaquette, Wilson gauge action, and quenched heatbath +
//!   overrelaxation evolution (the workload of the §4 reproducibility run);
//! * [`wilson`], [`clover`], [`staggered`], [`dwf`] — the four Dirac
//!   operators;
//! * [`eo`] — even/odd preconditioning (the production solver trick);
//! * [`solver`] — conjugate gradient on the normal equations, the kernel
//!   that "dominates our calculations";
//! * [`aosoa`] — lane-blocked AoSoA field layouts and the SIMD Wilson hot
//!   path, bit-identical per precision to the scalar kernels;
//! * [`checkpoint`] — deterministic CG state checkpoints in the NERSC
//!   idiom, the solver half of the machine's quarantine-and-resume story;
//! * [`counts`] — closed-form per-site operation ledgers for each operator,
//!   the input to the machine performance model.
//!
//! The whole stack is generic over the [`Real`] scalar width (`f64` by
//! default, `f32` via [`real`]): fields, all four operators and the CG
//! solver instantiate at either precision, and
//! [`solver::solve_cgne_mixed`] combines them into the reliable-update
//! scheme that reaches full double-precision tolerance with the bulk of
//! the work in single precision — the §4 single-precision story, where
//! halved operands double the effective EDRAM bandwidth.

#![warn(missing_docs)]

pub mod aosoa;
pub mod checkpoint;
pub mod clover;
pub mod colorvec;
pub mod complex;
pub mod counts;
pub mod dwf;
pub mod eo;
pub mod field;
pub mod gamma;
pub mod gauge;
pub mod io;
pub mod measure;
pub mod multishift;
pub mod real;
pub mod rng;
pub mod solver;
pub mod spinor;
pub mod staggered;
pub mod su3;
pub mod wilson;

pub use checkpoint::CgCheckpoint;
pub use complex::{Complex, C32, C64};
pub use field::{FermionField, GaugeField, Lattice};
pub use real::Real;
pub use solver::{CgReport, DiracOperator, ResumeError};
pub use su3::Su3;
