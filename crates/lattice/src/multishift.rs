//! Multi-shift conjugate gradient: all masses for the price of one.
//!
//! Staggered programs (and the RHMC algorithms that came online in the
//! QCDOC era) need `(M†M + σᵢ)⁻¹ b` at many shifts `σᵢ` — e.g. several
//! quark masses on one configuration, or the partial-fraction poles of a
//! rational approximation. Because all the shifted systems share one
//! Krylov space, a single CG iteration updates every solution at once:
//! the shifted residuals stay collinear with the unshifted one, with
//! per-shift scalar recurrences (Jegerlehner's algorithm).

use crate::complex::C64;
use crate::solver::{DiracOperator, KrylovVector};
use serde::{Deserialize, Serialize};

/// Result of a multi-shift solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultishiftReport {
    /// Iterations of the shared Krylov process.
    pub iterations: usize,
    /// Whether the base system converged.
    pub converged: bool,
    /// Final relative residual of the base (smallest-shift) system.
    pub final_residual: f64,
    /// Operator applications (two per iteration: `M` then `M†`).
    pub operator_applications: usize,
}

/// Solve `(M†M + σᵢ) xᵢ = b` for every shift in `shifts` simultaneously.
/// Shifts must be non-negative and are solved relative to the smallest.
/// Returns one solution per shift (same order) plus the report.
pub fn solve_multishift<Op: DiracOperator>(
    op: &Op,
    b: &Op::Field,
    shifts: &[f64],
    tolerance: f64,
    max_iterations: usize,
) -> (Vec<Op::Field>, MultishiftReport) {
    assert!(!shifts.is_empty(), "need at least one shift");
    assert!(
        shifts.iter().all(|&s| s >= 0.0),
        "shifts must be non-negative"
    );
    let ns = shifts.len();

    // Base system: the smallest shift (best conditioned is the largest,
    // but convergence is governed by the smallest; run the recurrences
    // relative to sigma_min as the base).
    let base = shifts.iter().cloned().fold(f64::INFINITY, f64::min);
    let rel: Vec<f64> = shifts.iter().map(|&s| s - base).collect();

    // Krylov state for A = M†M + base.
    let mut r = b.clone();
    let mut p = r.clone();
    let bnorm = b.norm_sqr().max(f64::MIN_POSITIVE);
    let mut rsq = r.norm_sqr();

    // Per-shift state.
    let mut x: Vec<Op::Field> = (0..ns)
        .map(|_| {
            let mut z = b.clone();
            z.fill_zero();
            z
        })
        .collect();
    let mut ps: Vec<Op::Field> = (0..ns).map(|_| r.clone()).collect();
    let mut zeta_prev = vec![1.0f64; ns];
    let mut zeta = vec![1.0f64; ns];
    let mut beta_prev = 1.0f64;
    let mut alpha_prev = 0.0f64;

    let mut iterations = 0usize;
    let mut applications = 0usize;
    let mut converged = (rsq / bnorm).sqrt() <= tolerance;

    let mut t = b.clone();
    while !converged && iterations < max_iterations {
        // q = (M†M + base) p.
        op.apply(&mut t, &p);
        let mut q = p.clone();
        op.apply_dagger(&mut q, &t);
        applications += 2;
        if base != 0.0 {
            q.axpy(C64::real(base), &p);
        }
        let pq = p.dot(&q).re;
        if pq <= 0.0 {
            break;
        }
        // CG uses beta = -rsq/pq in the shifted-literature sign convention.
        let beta = -rsq / pq;
        // Shifted zeta/beta recurrences.
        let mut beta_s = vec![0.0f64; ns];
        let mut zeta_next = vec![0.0f64; ns];
        for i in 0..ns {
            // Jegerlehner: zeta_{n+1} = zeta_n zeta_{n-1} beta_{n-1} /
            //   (beta alpha (zeta_{n-1} - zeta_n) + zeta_{n-1} beta_{n-1} (1 - sigma beta)).
            let numer = zeta[i] * zeta_prev[i] * beta_prev;
            let den = beta * alpha_prev * (zeta_prev[i] - zeta[i])
                + zeta_prev[i] * beta_prev * (1.0 - rel[i] * beta);
            zeta_next[i] = if den.abs() < 1e-300 { 0.0 } else { numer / den };
            beta_s[i] = if zeta[i].abs() < 1e-300 {
                0.0
            } else {
                beta * zeta_next[i] / zeta[i]
            };
        }
        // x_i -= beta_i p_i ; base residual update r += beta q.
        for i in 0..ns {
            x[i].axpy(C64::real(-beta_s[i]), &ps[i]);
        }
        r.axpy(C64::real(beta), &q);
        let new_rsq = r.norm_sqr();
        let alpha = new_rsq / rsq;
        // p = r + alpha p ; p_i = zeta_next r + alpha_i p_i.
        p.xpay(C64::real(alpha), &r);
        for i in 0..ns {
            let alpha_i = if (zeta[i] * beta).abs() < 1e-300 {
                0.0
            } else {
                alpha * zeta_next[i] * beta_s[i] / (zeta[i] * beta)
            };
            // p_i = zeta_next·r + alpha_i·p_i (build zeta_next·r via axpy
            // from a zeroed clone).
            let mut scaled_r = r.clone();
            scaled_r.fill_zero();
            scaled_r.axpy(C64::real(zeta_next[i]), &r);
            ps[i].xpay(C64::real(alpha_i), &scaled_r);
        }
        zeta_prev = zeta;
        zeta = zeta_next;
        beta_prev = beta;
        alpha_prev = alpha;
        rsq = new_rsq;
        iterations += 1;
        converged = (rsq / bnorm).sqrt() <= tolerance;
    }

    let report = MultishiftReport {
        iterations,
        converged,
        final_residual: (rsq / bnorm).sqrt(),
        operator_applications: applications,
    };
    (x, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{GaugeField, Lattice, StaggeredField};
    use crate::staggered::StaggeredDirac;

    /// The shifted normal operator for the staggered action: `M†M + σ`
    /// with `M = m + D` gives `m² − D² + σ` — so a solve at shift σ equals
    /// a plain solve at mass `sqrt(m² + σ)`.
    fn residual_of(op: &StaggeredDirac, shift: f64, x: &StaggeredField, b: &StaggeredField) -> f64 {
        let mut t = b.clone();
        op.apply(&mut t, x);
        let mut q = b.clone();
        op.apply_dagger(&mut q, &t);
        q.axpy(C64::real(shift), x);
        q.axpy(C64::real(-1.0), b);
        (q.norm_sqr() / b.norm_sqr()).sqrt()
    }

    #[test]
    fn all_shifts_solved_in_one_krylov_process() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::hot(lat, 90);
        let op = StaggeredDirac::new(&gauge, 0.10);
        let b = StaggeredField::gaussian(lat, 91);
        let shifts = [0.0, 0.05, 0.2, 1.0];
        let (xs, report) = solve_multishift(&op, &b, &shifts, 1e-9, 4000);
        assert!(report.converged, "{report:?}");
        assert_eq!(xs.len(), 4);
        for (i, &s) in shifts.iter().enumerate() {
            let r = residual_of(&op, s, &xs[i], &b);
            assert!(r < 1e-6, "shift {s}: residual {r}");
        }
    }

    #[test]
    fn matches_individual_solves() {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, 92);
        let op = StaggeredDirac::new(&gauge, 0.15);
        let b = StaggeredField::gaussian(lat, 93);
        let shifts = [0.0, 0.3];
        let (xs, _) = solve_multishift(&op, &b, &shifts, 1e-10, 4000);
        // Individual check via residuals (tight tolerance).
        for (i, &s) in shifts.iter().enumerate() {
            assert!(residual_of(&op, s, &xs[i], &b) < 1e-8);
        }
    }

    #[test]
    fn larger_shifts_converge_faster_in_residual() {
        // The larger-shift system is better conditioned: at the moment the
        // base system reaches tolerance, the shifted one is at least as
        // converged.
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, 94);
        let op = StaggeredDirac::new(&gauge, 0.08);
        let b = StaggeredField::gaussian(lat, 95);
        let shifts = [0.0, 2.0];
        let (xs, _) = solve_multishift(&op, &b, &shifts, 1e-9, 4000);
        let r_small = residual_of(&op, 0.0, &xs[0], &b);
        let r_big = residual_of(&op, 2.0, &xs[1], &b);
        assert!(
            r_big <= r_small * 10.0,
            "r_big {r_big} vs r_small {r_small}"
        );
    }

    #[test]
    fn cost_is_one_krylov_process() {
        // Operator applications must not scale with the number of shifts.
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, 96);
        let op = StaggeredDirac::new(&gauge, 0.12);
        let b = StaggeredField::gaussian(lat, 97);
        let (_, r1) = solve_multishift(&op, &b, &[0.0], 1e-8, 4000);
        let (_, r5) = solve_multishift(&op, &b, &[0.0, 0.1, 0.2, 0.5, 1.0], 1e-8, 4000);
        assert_eq!(r1.operator_applications, r5.operator_applications);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_shifts_rejected() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::unit(lat);
        let op = StaggeredDirac::new(&gauge, 0.1);
        let b = StaggeredField::gaussian(lat, 1);
        let _ = solve_multishift(&op, &b, &[-0.1], 1e-8, 10);
    }
}
