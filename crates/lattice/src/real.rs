//! The scalar abstraction behind the precision-generic lattice stack.
//!
//! Every algebraic type in this crate — [`crate::complex::Complex`],
//! [`crate::colorvec::ColorVec`], [`crate::su3::Su3`],
//! [`crate::spinor::Spinor`], the fields and the four Dirac operators — is
//! generic over a [`Real`] scalar, with `f64` as the default type
//! parameter so all pre-existing double-precision code compiles unchanged.
//! `f32` instantiations give the single-precision kernels the paper's §4
//! headline numbers assume (half the memory traffic, twice the sites per
//! EDRAM byte); the mixed-precision solver in [`crate::solver`] pairs the
//! two.
//!
//! The contract that keeps the repo's bit-reproducibility guarantees
//! intact: for `f64`, [`Real::from_f64`] and [`Real::to_f64`] are the
//! identity, so the generic code paths execute the exact operation
//! sequence the previous concrete `f64` code did — same bits out.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type the lattice algebra can be instantiated over.
///
/// Implemented for `f32` and `f64` only; the trait is sealed in spirit
/// (nothing stops a third impl, but the precision model in
/// [`crate::counts`] only knows these two widths).
pub trait Real:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Width of the scalar in bytes (4 or 8) — the quantity the
    /// performance model threads through its byte ledgers.
    const BYTES: u64;

    /// Truncate (or pass through) a double-precision value.
    /// **Identity for `f64`** — the bit-reproducibility anchor.
    fn from_f64(v: f64) -> Self;
    /// Widen (or pass through) to double precision. Exact for both
    /// supported widths.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// The value as 64 IEEE-754 bits: `to_bits` for `f64`, the exact
    /// `f64` widening's bits for `f32`. Used by checkpoint serialization
    /// so both precisions share one wire format.
    fn bits64(self) -> u64;
    /// Inverse of [`Real::bits64`]. Exact round-trip for values produced
    /// by `bits64`.
    fn from_bits64(bits: u64) -> Self;
}

impl Real for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const BYTES: u64 = 8;

    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
}

impl Real for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    const BYTES: u64 = 4;

    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn sqrt(self) -> f32 {
        f32::sqrt(self)
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn bits64(self) -> u64 {
        f64::from(self).to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> f32 {
        f64::from_bits(bits) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_conversions_are_identity() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(<f64 as Real>::from_f64(v).to_bits(), v.to_bits());
            assert_eq!(Real::to_f64(v).to_bits(), v.to_bits());
            assert_eq!(f64::from_bits64(v.bits64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_bits64_roundtrip_is_exact() {
        for v in [0.0f32, -1.5, 3.0e38, f32::MIN_POSITIVE, 0.1] {
            let back = f32::from_bits64(v.bits64());
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn widths_match_the_ieee_formats() {
        assert_eq!(<f64 as Real>::BYTES, 8);
        assert_eq!(<f32 as Real>::BYTES, 4);
    }
}
