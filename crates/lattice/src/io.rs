//! Gauge-configuration I/O in the NERSC archive style.
//!
//! Production QCD machines write their configurations to shared disks —
//! on QCDOC via the run kernel's NFS mounts (§3.2: "support for NFS
//! mounting of remote disks, which is already being used by application
//! programs to write directly to the host disk system"). The de-facto
//! interchange format of the era is the NERSC archive: an ASCII header
//! with the lattice geometry, plaquette, and a 32-bit additive checksum,
//! followed by big-endian IEEE doubles of the link matrices.

use crate::field::{GaugeField, Lattice};
use crate::gauge::average_plaquette;

/// Errors while reading a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The header is malformed or missing required keys.
    BadHeader(String),
    /// Geometry in the header does not match the data length.
    Truncated,
    /// The checksum does not match the data.
    Checksum {
        /// Checksum computed from the data.
        computed: u32,
        /// Checksum recorded in the header.
        recorded: u32,
    },
    /// The recorded plaquette disagrees with the data (corruption).
    Plaquette,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadHeader(k) => write!(f, "bad header: {k}"),
            IoError::Truncated => write!(f, "data shorter than the header geometry"),
            IoError::Checksum { computed, recorded } => {
                write!(
                    f,
                    "checksum mismatch: data {computed:#010x}, header {recorded:#010x}"
                )
            }
            IoError::Plaquette => write!(f, "plaquette mismatch (corrupt data)"),
        }
    }
}

impl std::error::Error for IoError {}

/// The NERSC additive checksum: the 32-bit wrapping sum of the data
/// stream taken as 32-bit big-endian words.
pub fn nersc_checksum(data: &[u8]) -> u32 {
    data.chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_be_bytes(w)
        })
        .fold(0u32, u32::wrapping_add)
}

/// Serialize a gauge field to the archive format.
pub fn write_config(gauge: &GaugeField) -> Vec<u8> {
    let lat = gauge.lattice();
    let dims = lat.dims();
    // Binary payload: for each site (x fastest), each mu, the full 3x3
    // complex matrix, row major, re then im, as big-endian f64.
    let mut payload = Vec::with_capacity(lat.volume() * 4 * 18 * 8);
    for x in lat.sites() {
        for mu in 0..4 {
            let u = gauge.link(x, mu);
            for r in 0..3 {
                for c in 0..3 {
                    payload.extend_from_slice(&u.0[r][c].re.to_be_bytes());
                    payload.extend_from_slice(&u.0[r][c].im.to_be_bytes());
                }
            }
        }
    }
    let checksum = nersc_checksum(&payload);
    let plaq = average_plaquette(gauge);
    let mut out = String::new();
    out.push_str("BEGIN_HEADER\n");
    out.push_str("HDR_VERSION = 1.0\n");
    out.push_str("DATATYPE = 4D_SU3_GAUGE_3x3\n");
    for (i, name) in ["DIMENSION_1", "DIMENSION_2", "DIMENSION_3", "DIMENSION_4"]
        .iter()
        .enumerate()
    {
        out.push_str(&format!("{name} = {}\n", dims[i]));
    }
    out.push_str(&format!("PLAQUETTE = {plaq:.12}\n"));
    out.push_str(&format!("CHECKSUM = {checksum:x}\n"));
    out.push_str("FLOATING_POINT = IEEE64BIG\n");
    out.push_str("END_HEADER\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

pub(crate) fn header_value<'a>(header: &'a str, key: &str) -> Result<&'a str, IoError> {
    header
        .lines()
        .find_map(|l| {
            let mut parts = l.splitn(2, '=');
            let k = parts.next()?.trim();
            let v = parts.next()?.trim();
            (k == key).then_some(v)
        })
        .ok_or_else(|| IoError::BadHeader(format!("missing {key}")))
}

/// Deserialize and fully validate a configuration.
pub fn read_config(bytes: &[u8]) -> Result<GaugeField, IoError> {
    let end_marker = b"END_HEADER\n";
    let header_end = bytes
        .windows(end_marker.len())
        .position(|w| w == end_marker)
        .ok_or_else(|| IoError::BadHeader("no END_HEADER".into()))?
        + end_marker.len();
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| IoError::BadHeader("non-utf8 header".into()))?;
    let mut dims = [0usize; 4];
    for (i, name) in ["DIMENSION_1", "DIMENSION_2", "DIMENSION_3", "DIMENSION_4"]
        .iter()
        .enumerate()
    {
        dims[i] = header_value(header, name)?
            .parse()
            .map_err(|_| IoError::BadHeader(format!("bad {name}")))?;
    }
    // Reject absurd geometry before allocating anything: every extent
    // must be positive and the implied volume bounded, so a corrupt
    // header cannot drive a huge (or zero-sized) allocation.
    dims.iter()
        .try_fold(
            1usize,
            |acc, &d| {
                if d == 0 {
                    None
                } else {
                    acc.checked_mul(d)
                }
            },
        )
        .filter(|&v| v <= (1 << 28))
        .ok_or_else(|| IoError::BadHeader("absurd DIMENSION".into()))?;
    let recorded_checksum = u32::from_str_radix(header_value(header, "CHECKSUM")?, 16)
        .map_err(|_| IoError::BadHeader("bad CHECKSUM".into()))?;
    let recorded_plaq: f64 = header_value(header, "PLAQUETTE")?
        .parse()
        .map_err(|_| IoError::BadHeader("bad PLAQUETTE".into()))?;

    let lat = Lattice::new(dims);
    let payload = &bytes[header_end..];
    let expect_len = lat.volume() * 4 * 18 * 8;
    if payload.len() < expect_len {
        return Err(IoError::Truncated);
    }
    let payload = &payload[..expect_len];
    let computed = nersc_checksum(payload);
    if computed != recorded_checksum {
        return Err(IoError::Checksum {
            computed,
            recorded: recorded_checksum,
        });
    }
    let mut gauge = GaugeField::unit(lat);
    let mut off = 0usize;
    let f64_at = |off: &mut usize| {
        let v = f64::from_be_bytes(payload[*off..*off + 8].try_into().expect("length checked"));
        *off += 8;
        v
    };
    for x in lat.sites() {
        for mu in 0..4 {
            let u = gauge.link_mut(x, mu);
            for r in 0..3 {
                for c in 0..3 {
                    u.0[r][c].re = f64_at(&mut off);
                    u.0[r][c].im = f64_at(&mut off);
                }
            }
        }
    }
    // Plaquette cross-check (12 digits recorded).
    if (average_plaquette(&gauge) - recorded_plaq).abs() > 1e-10 {
        return Err(IoError::Plaquette);
    }
    Ok(gauge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge::{evolve, EvolveParams};

    fn config() -> GaugeField {
        let lat = Lattice::new([2, 2, 2, 4]);
        let mut g = GaugeField::hot(lat, 33);
        evolve(&mut g, EvolveParams::default(), 5, 2);
        g
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let g = config();
        let bytes = write_config(&g);
        let back = read_config(&bytes).unwrap();
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn header_is_human_readable() {
        let bytes = write_config(&config());
        let text = String::from_utf8_lossy(&bytes[..300]);
        for needle in [
            "BEGIN_HEADER",
            "DIMENSION_1 = 2",
            "DIMENSION_4 = 4",
            "PLAQUETTE",
            "IEEE64BIG",
        ] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn corrupted_payload_is_caught_by_checksum() {
        let mut bytes = write_config(&config());
        let n = bytes.len();
        bytes[n - 100] ^= 0x40;
        match read_config(&bytes) {
            Err(IoError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_caught() {
        let bytes = write_config(&config());
        let short = &bytes[..bytes.len() - 16];
        assert_eq!(read_config(short), Err(IoError::Truncated));
    }

    #[test]
    fn missing_header_key_is_caught() {
        let bytes = write_config(&config());
        let text = String::from_utf8_lossy(&bytes[..200]).into_owned();
        let mangled = text.replace("CHECKSUM", "CHEKSUM");
        let mut out = mangled.into_bytes();
        out.extend_from_slice(&bytes[200..]);
        assert!(matches!(read_config(&out), Err(IoError::BadHeader(_))));
    }

    fn with_header_edit(bytes: &[u8], from: &str, to: &str) -> Vec<u8> {
        let end = bytes
            .windows(11)
            .position(|w| w == b"END_HEADER\n")
            .unwrap()
            + 11;
        let text = String::from_utf8(bytes[..end].to_vec()).unwrap();
        let mut out = text.replacen(from, to, 1).into_bytes();
        out.extend_from_slice(&bytes[end..]);
        out
    }

    #[test]
    fn non_numeric_header_field_is_rejected() {
        let bytes = write_config(&config());
        let bad = with_header_edit(&bytes, "DIMENSION_2 = 2", "DIMENSION_2 = two");
        assert!(matches!(read_config(&bad), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn non_hex_checksum_is_rejected() {
        let bytes = write_config(&config());
        // Prefixing a non-hex character corrupts the value whatever it was.
        let bad = with_header_edit(&bytes, "CHECKSUM = ", "CHECKSUM = z");
        assert!(matches!(read_config(&bad), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn absurd_dimension_is_rejected_before_allocation() {
        let bytes = write_config(&config());
        for bad_dim in ["0", "999999999", "18446744073709551616"] {
            let bad = with_header_edit(
                &bytes,
                "DIMENSION_1 = 2",
                &format!("DIMENSION_1 = {bad_dim}"),
            );
            assert!(
                matches!(read_config(&bad), Err(IoError::BadHeader(_))),
                "DIMENSION_1 = {bad_dim} should be a header error"
            );
        }
    }

    #[test]
    fn header_only_input_is_rejected() {
        let bytes = write_config(&config());
        let end = bytes
            .windows(11)
            .position(|w| w == b"END_HEADER\n")
            .unwrap()
            + 11;
        // A file that stops right after the header: geometry promises data.
        assert_eq!(read_config(&bytes[..end]), Err(IoError::Truncated));
        // A file that never finishes the header at all.
        assert!(matches!(
            read_config(&bytes[..end - 12]),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn tampered_recorded_checksum_is_detected() {
        let bytes = write_config(&config());
        let end = bytes
            .windows(11)
            .position(|w| w == b"END_HEADER\n")
            .unwrap()
            + 11;
        let computed = nersc_checksum(&bytes[end..]);
        let bad = with_header_edit(
            &bytes,
            &format!("CHECKSUM = {computed:x}"),
            &format!("CHECKSUM = {:x}", computed.wrapping_add(1)),
        );
        assert!(matches!(read_config(&bad), Err(IoError::Checksum { .. })));
    }

    #[test]
    fn checksum_is_position_sensitive_enough() {
        // Swapping two different words changes the sum only if they differ;
        // our corruption test covers single-bit flips, the format's actual
        // failure mode over NFS.
        let a = nersc_checksum(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = nersc_checksum(&[1, 2, 3, 5, 5, 6, 7, 8]);
        assert_ne!(a, b);
    }
}
