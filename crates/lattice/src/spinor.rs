//! Dirac 4-spinors, half-spinors, and the Wilson spin-projection trick.
//!
//! A site of a Wilson-type fermion field is a 4-spinor: four spin
//! components, each a color-3 vector (24 reals). The hopping term applies
//! `(1 ∓ γ_μ)`, a rank-2 projector, so only a *half-spinor* (two spin
//! components, 12 reals) needs the SU(3) multiplication and — crucially for
//! the machine — only the half-spinor crosses the mesh to the neighbouring
//! node. The projection/reconstruction identities follow from the
//! permutation-phase structure of the gamma basis (see [`crate::gamma`]).
//!
//! Both types are generic over the [`Real`] scalar. The gamma tables stay
//! double precision (their phases are 0, ±1, ±i — exactly representable at
//! any width) and are converted per use via [`Complex::from_c64`], which is
//! the identity for `f64`.

use crate::colorvec::ColorVec;
use crate::complex::Complex;
use crate::gamma::{Gamma, GAMMA, GAMMA5};
use crate::real::Real;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A full 4-spinor: spin × color.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Spinor<T: Real = f64>(pub [ColorVec<T>; 4]);

/// The two independent spin components of a projected spinor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HalfSpinor<T: Real = f64>(pub [ColorVec<T>; 2]);

/// Projection sign: `(1 − γ_μ)` for hops in the +μ direction, `(1 + γ_μ)`
/// for hops in −μ (Wilson convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjSign {
    /// `(1 − γ_μ)`.
    Minus,
    /// `(1 + γ_μ)`.
    Plus,
}

impl<T: Real> Spinor<T> {
    /// The zero spinor.
    pub const ZERO: Spinor<T> = Spinor([ColorVec::ZERO; 4]);

    /// Hermitian inner product.
    pub fn dot(&self, rhs: &Spinor<T>) -> Complex<T> {
        let mut acc = Complex::ZERO;
        for s in 0..4 {
            acc += self.0[s].dot(&rhs.0[s]);
        }
        acc
    }

    /// Squared norm.
    pub fn norm_sqr(&self) -> T {
        let mut acc = T::ZERO;
        for c in &self.0 {
            acc += c.norm_sqr();
        }
        acc
    }

    /// Scale by a complex factor.
    pub fn scale(&self, s: Complex<T>) -> Spinor<T> {
        Spinor([
            self.0[0].scale(s),
            self.0[1].scale(s),
            self.0[2].scale(s),
            self.0[3].scale(s),
        ])
    }

    /// `self + a * rhs`.
    pub fn axpy(&self, a: Complex<T>, rhs: &Spinor<T>) -> Spinor<T> {
        Spinor([
            self.0[0].axpy(a, &rhs.0[0]),
            self.0[1].axpy(a, &rhs.0[1]),
            self.0[2].axpy(a, &rhs.0[2]),
            self.0[3].axpy(a, &rhs.0[3]),
        ])
    }

    /// Apply a gamma matrix (sparse table form).
    pub fn apply_gamma(&self, g: &Gamma) -> Spinor<T> {
        let mut out = Spinor::ZERO;
        for r in 0..4 {
            out.0[r] = self.0[g.col[r]].scale(Complex::from_c64(g.phase[r]));
        }
        out
    }

    /// Apply γ_5.
    pub fn apply_gamma5(&self) -> Spinor<T> {
        self.apply_gamma(&GAMMA5)
    }

    /// Project `(1 ∓ γ_μ) ψ` down to its two independent spin components.
    pub fn project(&self, mu: usize, sign: ProjSign) -> HalfSpinor<T> {
        let g = &GAMMA[mu];
        let mut h = HalfSpinor::default();
        for s in 0..2 {
            let gpart = self.0[g.col[s]].scale(Complex::from_c64(g.phase[s]));
            h.0[s] = match sign {
                ProjSign::Minus => self.0[s] - gpart,
                ProjSign::Plus => self.0[s] + gpart,
            };
        }
        h
    }

    /// Multiply each spin component of a half-spinor by `u`, then rebuild
    /// the full `(1 ∓ γ_μ)`-projected spinor.
    pub fn reconstruct(h: &HalfSpinor<T>, mu: usize, sign: ProjSign) -> Spinor<T> {
        let g = &GAMMA[mu];
        let mut out = Spinor::ZERO;
        out.0[0] = h.0[0];
        out.0[1] = h.0[1];
        for r in 2..4 {
            // Row r of (1 ∓ γ_μ)ψ equals ∓ phase[r] · h[col[r]]
            // (see the derivation in crate::gamma's docs/tests).
            let src = h.0[g.col[r]].scale(Complex::from_c64(g.phase[r]));
            out.0[r] = match sign {
                ProjSign::Minus => -src,
                ProjSign::Plus => src,
            };
        }
        out
    }

    /// Convert (truncate for `f32`, identity for `f64`) from double
    /// precision.
    pub fn from_f64_spinor(s: &Spinor<f64>) -> Spinor<T> {
        Spinor([
            ColorVec::from_c64_vec(&s.0[0]),
            ColorVec::from_c64_vec(&s.0[1]),
            ColorVec::from_c64_vec(&s.0[2]),
            ColorVec::from_c64_vec(&s.0[3]),
        ])
    }

    /// Widen to double precision (exact for both supported widths).
    pub fn to_f64_spinor(&self) -> Spinor<f64> {
        Spinor([
            self.0[0].to_c64_vec(),
            self.0[1].to_c64_vec(),
            self.0[2].to_c64_vec(),
            self.0[3].to_c64_vec(),
        ])
    }
}

impl<T: Real> HalfSpinor<T> {
    /// Apply an SU(3) matrix to both spin components.
    pub fn mul_su3(&self, u: &crate::su3::Su3<T>) -> HalfSpinor<T> {
        let (a, b) = u.mul_vec2(&self.0[0], &self.0[1]);
        HalfSpinor([a, b])
    }

    /// Apply the adjoint of an SU(3) matrix to both spin components.
    pub fn adj_mul_su3(&self, u: &crate::su3::Su3<T>) -> HalfSpinor<T> {
        let (a, b) = u.adj_mul_vec2(&self.0[0], &self.0[1]);
        HalfSpinor([a, b])
    }

    /// Flatten to 12 complex numbers (the wire format of a face exchange).
    /// Values are carried as 64-bit IEEE words at both precisions so the
    /// exchange format is width-independent.
    pub fn to_words(&self) -> [u64; 24] {
        let mut out = [0u64; 24];
        let mut k = 0;
        for s in 0..2 {
            for c in 0..3 {
                out[k] = self.0[s].0[c].re.bits64();
                out[k + 1] = self.0[s].0[c].im.bits64();
                k += 2;
            }
        }
        out
    }

    /// Inverse of [`HalfSpinor::to_words`].
    pub fn from_words(words: &[u64; 24]) -> HalfSpinor<T> {
        let mut h = HalfSpinor::default();
        let mut k = 0;
        for s in 0..2 {
            for c in 0..3 {
                h.0[s].0[c] = Complex::new(T::from_bits64(words[k]), T::from_bits64(words[k + 1]));
                k += 2;
            }
        }
        h
    }
}

impl<T: Real> Add for Spinor<T> {
    type Output = Spinor<T>;
    fn add(self, rhs: Spinor<T>) -> Spinor<T> {
        Spinor([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl<T: Real> AddAssign for Spinor<T> {
    fn add_assign(&mut self, rhs: Spinor<T>) {
        for s in 0..4 {
            self.0[s] += rhs.0[s];
        }
    }
}

impl<T: Real> Sub for Spinor<T> {
    type Output = Spinor<T>;
    fn sub(self, rhs: Spinor<T>) -> Spinor<T> {
        Spinor([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl<T: Real> Neg for Spinor<T> {
    type Output = Spinor<T>;
    fn neg(self) -> Spinor<T> {
        Spinor([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl<T: Real> Mul<T> for Spinor<T> {
    type Output = Spinor<T>;
    fn mul(self, rhs: T) -> Spinor<T> {
        Spinor([
            self.0[0] * rhs,
            self.0[1] * rhs,
            self.0[2] * rhs,
            self.0[3] * rhs,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;
    use crate::rng::SiteRng;
    use crate::su3::Su3;

    fn random_spinor(seed: u64) -> Spinor {
        let mut rng = SiteRng::new(seed, 99);
        let mut s = Spinor::ZERO;
        for sp in 0..4 {
            for c in 0..3 {
                s.0[sp].0[c] = C64::new(rng.normal(), rng.normal());
            }
        }
        s
    }

    fn random_su3(seed: u64) -> Su3 {
        let mut rng = SiteRng::new(seed, 5);
        let mut m = Su3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                m.0[r][c] = C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5);
            }
        }
        m.reunitarize()
    }

    /// Dense application of (1 ∓ γ_μ) for cross-checking the projection
    /// trick.
    fn one_mp_gamma(psi: &Spinor, mu: usize, sign: ProjSign) -> Spinor {
        let g = psi.apply_gamma(&GAMMA[mu]);
        match sign {
            ProjSign::Minus => *psi - g,
            ProjSign::Plus => *psi + g,
        }
    }

    #[test]
    fn projection_reconstruction_identity() {
        for mu in 0..4 {
            for sign in [ProjSign::Minus, ProjSign::Plus] {
                let psi = random_spinor(mu as u64);
                let direct = one_mp_gamma(&psi, mu, sign);
                let via_half = Spinor::reconstruct(&psi.project(mu, sign), mu, sign);
                for s in 0..4 {
                    for c in 0..3 {
                        assert!(
                            (direct.0[s].0[c] - via_half.0[s].0[c]).abs() < 1e-13,
                            "mu={mu} sign={sign:?} s={s} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn projection_commutes_with_su3() {
        // U acts on color only, so project → U → reconstruct must equal
        // U ⊗ (1 ∓ γ_μ) applied densely.
        let u = random_su3(3);
        let psi = random_spinor(17);
        for mu in 0..4 {
            let h = psi.project(mu, ProjSign::Minus).mul_su3(&u);
            let fast = Spinor::reconstruct(&h, mu, ProjSign::Minus);
            let mut slow = one_mp_gamma(&psi, mu, ProjSign::Minus);
            for s in 0..4 {
                slow.0[s] = u.mul_vec(&slow.0[s]);
            }
            for s in 0..4 {
                for c in 0..3 {
                    assert!((fast.0[s].0[c] - slow.0[s].0[c]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn projector_sum_is_two_psi() {
        // (1−γ)ψ + (1+γ)ψ = 2ψ.
        let psi = random_spinor(7);
        for mu in 0..4 {
            let a = Spinor::reconstruct(&psi.project(mu, ProjSign::Minus), mu, ProjSign::Minus);
            let b = Spinor::reconstruct(&psi.project(mu, ProjSign::Plus), mu, ProjSign::Plus);
            let sum = a + b;
            let twice = psi * 2.0;
            for s in 0..4 {
                for c in 0..3 {
                    assert!((sum.0[s].0[c] - twice.0[s].0[c]).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn gamma5_is_involution_on_spinors() {
        let psi = random_spinor(11);
        let twice = psi.apply_gamma5().apply_gamma5();
        for s in 0..4 {
            for c in 0..3 {
                assert!((twice.0[s].0[c] - psi.0[s].0[c]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn words_roundtrip_is_bit_exact() {
        let psi = random_spinor(23);
        let h = psi.project(2, ProjSign::Plus);
        let back: HalfSpinor = HalfSpinor::from_words(&h.to_words());
        for s in 0..2 {
            for c in 0..3 {
                assert_eq!(h.0[s].0[c].re.to_bits(), back.0[s].0[c].re.to_bits());
                assert_eq!(h.0[s].0[c].im.to_bits(), back.0[s].0[c].im.to_bits());
            }
        }
    }

    #[test]
    fn words_roundtrip_is_bit_exact_single_precision() {
        let psi: Spinor<f32> = Spinor::from_f64_spinor(&random_spinor(29));
        let h = psi.project(1, ProjSign::Minus);
        let back: HalfSpinor<f32> = HalfSpinor::from_words(&h.to_words());
        for s in 0..2 {
            for c in 0..3 {
                assert_eq!(h.0[s].0[c].re.to_bits(), back.0[s].0[c].re.to_bits());
                assert_eq!(h.0[s].0[c].im.to_bits(), back.0[s].0[c].im.to_bits());
            }
        }
    }

    #[test]
    fn dot_and_norm_consistent() {
        let psi = random_spinor(31);
        assert!((psi.dot(&psi).re - psi.norm_sqr()).abs() < 1e-10);
        assert!(psi.dot(&psi).im.abs() < 1e-12);
    }

    #[test]
    fn axpy_matches_manual() {
        let a = random_spinor(1);
        let b = random_spinor(2);
        let s = C64::new(0.5, -1.5);
        let fast = a.axpy(s, &b);
        for sp in 0..4 {
            for c in 0..3 {
                let manual = a.0[sp].0[c] + s * b.0[sp].0[c];
                assert!((fast.0[sp].0[c] - manual).abs() < 1e-13);
            }
        }
    }
}
