//! Euclidean gamma matrices in the DeGrand–Rossi (chiral) basis.
//!
//! Each Euclidean γ_μ has exactly one non-zero entry per row, with value
//! ±1 or ±i, so we store it as a permutation-plus-phase table. That sparse
//! structure is also what makes the Wilson spin projection trick work (see
//! [`crate::spinor`]): `(1 ∓ γ_μ) ψ` has only two independent spin
//! components, halving both the flops and the nearest-neighbour
//! communication volume.

use crate::complex::C64;

const I: C64 = C64 { re: 0.0, im: 1.0 };
const NEG_I: C64 = C64 { re: 0.0, im: -1.0 };
const ONE: C64 = C64 { re: 1.0, im: 0.0 };
const NEG_ONE: C64 = C64 { re: -1.0, im: 0.0 };

/// A gamma matrix as a row table: row `r` has its single non-zero entry in
/// column `col[r]` with value `phase[r]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Column of the non-zero entry in each row.
    pub col: [usize; 4],
    /// Value of that entry.
    pub phase: [C64; 4],
}

/// γ_0 … γ_3 (x, y, z, t) in the DeGrand–Rossi basis.
pub const GAMMA: [Gamma; 4] = [
    // γ_x
    Gamma {
        col: [3, 2, 1, 0],
        phase: [I, I, NEG_I, NEG_I],
    },
    // γ_y
    Gamma {
        col: [3, 2, 1, 0],
        phase: [NEG_ONE, ONE, ONE, NEG_ONE],
    },
    // γ_z
    Gamma {
        col: [2, 3, 0, 1],
        phase: [I, NEG_I, NEG_I, I],
    },
    // γ_t
    Gamma {
        col: [2, 3, 0, 1],
        phase: [ONE, ONE, ONE, ONE],
    },
];

/// γ_5 = γ_x γ_y γ_z γ_t — diagonal (+1, +1, −1, −1) in this basis.
pub const GAMMA5: Gamma = Gamma {
    col: [0, 1, 2, 3],
    phase: [ONE, ONE, NEG_ONE, NEG_ONE],
};

impl Gamma {
    /// Dense 4×4 form.
    pub fn dense(&self) -> [[C64; 4]; 4] {
        let mut m = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            m[r][self.col[r]] = self.phase[r];
        }
        m
    }
}

/// Dense 4×4 complex matrix product (test helper exposed for the clover
/// construction of σ_μν).
pub fn matmul4(a: &[[C64; 4]; 4], b: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc = acc.madd(a[r][k], b[k][c]);
            }
            out[r][c] = acc;
        }
    }
    out
}

/// σ_μν = (i/2)[γ_μ, γ_ν] as a dense matrix — used by the clover term.
pub fn sigma(mu: usize, nu: usize) -> [[C64; 4]; 4] {
    let gm = GAMMA[mu].dense();
    let gn = GAMMA[nu].dense();
    let mn = matmul4(&gm, &gn);
    let nm = matmul4(&gn, &gm);
    let mut out = [[C64::ZERO; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            out[r][c] = (mn[r][c] - nm[r][c]).mul_i() * 0.5;
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn dense_eq(a: &[[C64; 4]; 4], b: &[[C64; 4]; 4], tol: f64) -> bool {
        for r in 0..4 {
            for c in 0..4 {
                if (a[r][c] - b[r][c]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn identity() -> [[C64; 4]; 4] {
        let mut m = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            m[r][r] = C64::ONE;
        }
        m
    }

    fn scaled(m: &[[C64; 4]; 4], s: f64) -> [[C64; 4]; 4] {
        let mut out = *m;
        for r in 0..4 {
            for c in 0..4 {
                out[r][c] = m[r][c] * s;
            }
        }
        out
    }

    fn add(a: &[[C64; 4]; 4], b: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
        let mut out = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                out[r][c] = a[r][c] + b[r][c];
            }
        }
        out
    }

    #[test]
    fn clifford_algebra() {
        // {γ_μ, γ_ν} = 2 δ_μν.
        for mu in 0..4 {
            for nu in 0..4 {
                let gm = GAMMA[mu].dense();
                let gn = GAMMA[nu].dense();
                let anti = add(&matmul4(&gm, &gn), &matmul4(&gn, &gm));
                let expect = if mu == nu {
                    scaled(&identity(), 2.0)
                } else {
                    [[C64::ZERO; 4]; 4]
                };
                assert!(dense_eq(&anti, &expect, 1e-14), "mu={mu} nu={nu}");
            }
        }
    }

    #[test]
    fn gammas_are_hermitian() {
        for (mu, g) in GAMMA.iter().enumerate() {
            let d = g.dense();
            for r in 0..4 {
                for c in 0..4 {
                    assert!((d[r][c] - d[c][r].conj()).abs() < 1e-15, "gamma_{mu}");
                }
            }
        }
    }

    #[test]
    fn gamma5_is_product_of_gammas() {
        let p = matmul4(
            &matmul4(&GAMMA[0].dense(), &GAMMA[1].dense()),
            &matmul4(&GAMMA[2].dense(), &GAMMA[3].dense()),
        );
        assert!(dense_eq(&p, &GAMMA5.dense(), 1e-14));
    }

    #[test]
    fn gamma5_anticommutes_with_each_gamma() {
        let g5 = GAMMA5.dense();
        for g in &GAMMA {
            let d = g.dense();
            let anti = add(&matmul4(&g5, &d), &matmul4(&d, &g5));
            assert!(dense_eq(&anti, &[[C64::ZERO; 4]; 4], 1e-14));
        }
    }

    #[test]
    fn permutation_involution() {
        // γ_μ² = 1 in table form: col[col[r]] == r and phase products are 1.
        for g in &GAMMA {
            for r in 0..4 {
                assert_eq!(g.col[g.col[r]], r);
                assert!((g.phase[r] * g.phase[g.col[r]] - C64::ONE).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn sigma_is_hermitian_and_traceless() {
        for mu in 0..4 {
            for nu in 0..4 {
                if mu == nu {
                    continue;
                }
                let s = sigma(mu, nu);
                let mut trace = C64::ZERO;
                for r in 0..4 {
                    trace += s[r][r];
                    for c in 0..4 {
                        assert!((s[r][c] - s[c][r].conj()).abs() < 1e-14);
                    }
                }
                assert!(trace.abs() < 1e-14);
            }
        }
    }

    #[test]
    fn sigma_antisymmetric_in_indices() {
        let a = sigma(0, 1);
        let b = sigma(1, 0);
        for r in 0..4 {
            for c in 0..4 {
                assert!((a[r][c] + b[r][c]).abs() < 1e-14);
            }
        }
    }
}
