//! Property-based tests on the lattice algebra and operators.

use proptest::prelude::*;
use qcdoc_lattice::complex::C64;
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::rng::SiteRng;
use qcdoc_lattice::solver::{solve_cgne, CgParams};
use qcdoc_lattice::spinor::ProjSign;
use qcdoc_lattice::su3::Su3;
use qcdoc_lattice::wilson::WilsonDirac;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_su3(seed: u64) -> Su3 {
    let mut rng = SiteRng::new(seed, 1);
    let mut m = Su3::ZERO;
    for r in 0..3 {
        for c in 0..3 {
            m.0[r][c] = C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5);
        }
    }
    m.reunitarize()
}

proptest! {
    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let assoc = (a * b) * c - a * (b * c);
        prop_assert!(assoc.abs() < 1e-12);
        let dist = a * (b + c) - (a * b + a * c);
        prop_assert!(dist.abs() < 1e-12);
        let comm = a * b - b * a;
        prop_assert!(comm.abs() < 1e-13);
    }

    #[test]
    fn conj_is_multiplicative(a in arb_c64(), b in arb_c64()) {
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn su3_closure_and_unitarity(s1 in 0u64..1000, s2 in 0u64..1000) {
        let a = arb_su3(s1);
        let b = arb_su3(s2.wrapping_add(7777));
        let c = a * b;
        prop_assert!(c.unitarity_error() < 1e-11);
        prop_assert!((c.det() - C64::ONE).abs() < 1e-11);
        // Reunitarization is (numerically) idempotent on group elements.
        prop_assert!(c.reunitarize().distance(&c) < 1e-11);
    }

    #[test]
    fn trace_cyclic(s1 in 0u64..500, s2 in 0u64..500) {
        let a = arb_su3(s1);
        let b = arb_su3(s2.wrapping_add(31337));
        let t1 = (a * b).trace();
        let t2 = (b * a).trace();
        prop_assert!((t1 - t2).abs() < 1e-11);
    }

    #[test]
    fn projection_halves_degrees_of_freedom(seed in 0u64..200, mu in 0usize..4) {
        // (1 ∓ γ_μ) applied twice equals 2 × (1 ∓ γ_μ) — projector up to
        // the conventional factor 2.
        let lat = Lattice::new([2, 2, 2, 2]);
        let f = FermionField::gaussian(lat, seed);
        let psi = *f.site(0);
        for sign in [ProjSign::Minus, ProjSign::Plus] {
            let once = qcdoc_lattice::spinor::Spinor::reconstruct(&psi.project(mu, sign), mu, sign);
            let twice = qcdoc_lattice::spinor::Spinor::reconstruct(&once.project(mu, sign), mu, sign);
            for s in 0..4 {
                for c in 0..3 {
                    let expect = once.0[s].0[c] * 2.0;
                    prop_assert!((twice.0[s].0[c] - expect).abs() < 1e-11);
                }
            }
        }
    }

    #[test]
    fn wilson_operator_is_gamma5_hermitian(seed in 0u64..50) {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let op = WilsonDirac::new(&gauge, 0.11);
        let u = FermionField::gaussian(lat, seed.wrapping_add(1));
        let v = FermionField::gaussian(lat, seed.wrapping_add(2));
        let mut mv = FermionField::zero(lat);
        op.apply(&mut mv, &v);
        let mut mdu = FermionField::zero(lat);
        op.apply_dagger(&mut mdu, &u);
        let a = u.dot(&mv);
        let b = mdu.dot(&v);
        prop_assert!((a - b).abs() < 1e-8 * a.abs().max(1.0));
    }

    #[test]
    fn cg_solves_arbitrary_rhs(seed in 0u64..20) {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let op = WilsonDirac::new(&gauge, 0.10);
        let b = FermionField::gaussian(lat, seed.wrapping_add(100));
        let mut x = FermionField::zero(lat);
        let report = solve_cgne(&op, &mut x, &b, CgParams::default());
        prop_assert!(report.converged);
        // Verify M x ≈ b.
        let mut mx = FermionField::zero(lat);
        op.apply(&mut mx, &x);
        mx.axpy(C64::real(-1.0), &b);
        prop_assert!((mx.norm_sqr() / b.norm_sqr()).sqrt() < 1e-6);
    }

    #[test]
    fn config_io_roundtrip_is_bit_exact(seed in 0u64..10_000) {
        let lat = Lattice::new([2, 2, 2, 2]);
        let g = GaugeField::hot(lat, seed);
        let bytes = qcdoc_lattice::io::write_config(&g);
        let back = qcdoc_lattice::io::read_config(&bytes).unwrap();
        prop_assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn config_io_never_accepts_a_flipped_payload_bit(
        seed in 0u64..1_000,
        word in 0usize..2 * 2 * 2 * 2 * 4 * 18,
        bit in 0usize..64,
    ) {
        let lat = Lattice::new([2, 2, 2, 2]);
        let g = GaugeField::hot(lat, seed);
        let mut bytes = qcdoc_lattice::io::write_config(&g);
        let payload_start = bytes.len() - 2 * 2 * 2 * 2 * 4 * 18 * 8;
        bytes[payload_start + word * 8 + bit / 8] ^= 1 << (bit % 8);
        // Whichever validator fires first (checksum, or plaquette for
        // sum-preserving flips), corruption must never read back as Ok.
        prop_assert!(qcdoc_lattice::io::read_config(&bytes).is_err());
    }

    #[test]
    fn checkpoint_io_roundtrip_is_bit_exact(seed in 0u64..10_000, iters in 0usize..40) {
        let ckpt = qcdoc_lattice::CgCheckpoint {
            operator: "wilson".into(),
            iterations: iters,
            converged: iters % 2 == 0,
            rsq: (seed as f64) * 1e-3 + 0.125,
            bref: (seed as f64 + 1.0) * 0.5,
            residuals: (0..iters).map(|i| 1.0 / (i as f64 + 2.0)).collect(),
            applications: 3 + 2 * iters,
            reductions: 2 + 2 * iters,
            x: (0..24).map(|i| seed.wrapping_add(i)).collect(),
            r: (0..24).map(|i| seed.wrapping_mul(3).wrapping_add(i)).collect(),
            p: (0..24).map(|i| seed.wrapping_mul(7).wrapping_add(i)).collect(),
        };
        let bytes = qcdoc_lattice::checkpoint::write_checkpoint(&ckpt);
        let back = qcdoc_lattice::checkpoint::read_checkpoint(&bytes).unwrap();
        prop_assert_eq!(back.digest(), ckpt.digest());
        prop_assert_eq!(back, ckpt);
    }

    #[test]
    fn site_rng_streams_do_not_collide(s1 in 0u64..100_000, s2 in 0u64..100_000) {
        prop_assume!(s1 != s2);
        let mut a = SiteRng::new(7, s1);
        let mut b = SiteRng::new(7, s2);
        // First draws differing is the practical non-collision property.
        prop_assert_ne!(a.next_u64(), b.next_u64());
    }
}

/// Relative L2 distance between a double-precision field and the promoted
/// single-precision result, `‖hi − promote(lo)‖ / ‖hi‖`.
fn rel_err(hi: &FermionField, lo: &FermionField<f32>) -> f64 {
    let mut diff = hi.clone();
    diff.axpy(C64::real(-1.0), &lo.to_f64());
    (diff.norm_sqr() / hi.norm_sqr().max(f64::MIN_POSITIVE)).sqrt()
}

// The f32 instantiation of each Dirac operator must agree with the f64
// one to single-precision rounding — ~1e-6 relative on random fields
// (asserted at 1e-5 to leave margin for accumulation across the stencil).
const PRECISION_AGREEMENT: f64 = 1e-5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wilson_f32_matches_f64(seed in 0u64..1000) {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let inp = FermionField::gaussian(lat, seed.wrapping_add(1));
        let op = WilsonDirac::new(&gauge, 0.12);
        let mut out = FermionField::zero(lat);
        op.apply(&mut out, &inp);
        let gauge32 = gauge.to_f32();
        let op32 = WilsonDirac::new(&gauge32, 0.12);
        let mut out32 = FermionField::<f32>::zero(lat);
        op32.apply(&mut out32, &inp.to_f32());
        prop_assert!(rel_err(&out, &out32) < PRECISION_AGREEMENT);
    }

    #[test]
    fn clover_f32_matches_f64(seed in 0u64..1000) {
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let inp = FermionField::gaussian(lat, seed.wrapping_add(1));
        let op = qcdoc_lattice::clover::CloverDirac::new(&gauge, 0.12, 1.0);
        let mut out = FermionField::zero(lat);
        op.apply(&mut out, &inp);
        let gauge32 = gauge.to_f32();
        let op32 = qcdoc_lattice::clover::CloverDirac::new(&gauge32, 0.12, 1.0);
        let mut out32 = FermionField::<f32>::zero(lat);
        op32.apply(&mut out32, &inp.to_f32());
        prop_assert!(rel_err(&out, &out32) < PRECISION_AGREEMENT);
    }

    #[test]
    fn asqtad_f32_matches_f64(seed in 0u64..1000) {
        use qcdoc_lattice::field::StaggeredField;
        use qcdoc_lattice::staggered::{AsqtadCoeffs, AsqtadDirac, AsqtadLinks};
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let inp = StaggeredField::gaussian(lat, seed.wrapping_add(1));
        let links = AsqtadLinks::new(&gauge, AsqtadCoeffs::default());
        let op = AsqtadDirac::new(&links, 0.2);
        let mut out = StaggeredField::zero(lat);
        op.apply(&mut out, &inp);
        let gauge32 = gauge.to_f32();
        let links32 = AsqtadLinks::new(&gauge32, AsqtadCoeffs::default());
        let op32 = AsqtadDirac::new(&links32, 0.2);
        let mut out32 = StaggeredField::<f32>::zero(lat);
        op32.apply(&mut out32, &inp.to_f32());
        let mut diff = out.clone();
        diff.axpy(C64::real(-1.0), &out32.to_f64());
        let rel = (diff.norm_sqr() / out.norm_sqr().max(f64::MIN_POSITIVE)).sqrt();
        prop_assert!(rel < PRECISION_AGREEMENT);
    }

    #[test]
    fn dwf_f32_matches_f64(seed in 0u64..1000) {
        use qcdoc_lattice::dwf::{DwfDirac, DwfField};
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let inp = DwfField::gaussian(lat, 4, seed.wrapping_add(1));
        let op = DwfDirac::new(&gauge, 1.8, 0.1, 4);
        let mut out = DwfField::zero(lat, 4);
        op.apply(&mut out, &inp);
        let gauge32 = gauge.to_f32();
        let op32 = DwfDirac::new(&gauge32, 1.8, 0.1, 4);
        let mut out32 = DwfField::<f32>::zero(lat, 4);
        op32.apply(&mut out32, &inp.to_f32());
        let mut diff = out.clone();
        diff.axpy(C64::real(-1.0), &out32.to_f64());
        let rel = (diff.norm_sqr() / out.norm_sqr().max(f64::MIN_POSITIVE)).sqrt();
        prop_assert!(rel < PRECISION_AGREEMENT);
    }

    #[test]
    fn mixed_cg_matches_f64_tolerance_deterministically(seed in 0u64..20) {
        use qcdoc_lattice::solver::{solve_cgne_mixed, MixedCgParams};
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::hot(lat, seed);
        let gauge32 = gauge.to_f32();
        let op = WilsonDirac::new(&gauge, 0.11);
        let op32 = WilsonDirac::new(&gauge32, 0.11);
        let b = FermionField::gaussian(lat, seed.wrapping_add(100));

        // The mixed solve reaches the same f64 tolerance as plain CGNE.
        let params = MixedCgParams::default();
        let mut x = FermionField::zero(lat);
        let mixed = solve_cgne_mixed(&op, &op32, &mut x, &b, params);
        prop_assert!(mixed.converged);
        let mut x_ref = FermionField::zero(lat);
        let plain = solve_cgne(&op, &mut x_ref, &b, CgParams::default());
        prop_assert!(plain.converged);
        prop_assert!(mixed.final_residual <= CgParams::default().tolerance);

        // Seeded rerun is bit-identical: same outer/inner iteration
        // schedule, same solution bits.
        let mut x2 = FermionField::zero(lat);
        let mixed2 = solve_cgne_mixed(&op, &op32, &mut x2, &b, params);
        prop_assert_eq!(&mixed.inner_iterations, &mixed2.inner_iterations);
        prop_assert_eq!(mixed.outer_iterations, mixed2.outer_iterations);
        prop_assert_eq!(x.fingerprint(), x2.fingerprint());
    }
}

// The AoSoA layout (`aosoa`) is a pure re-arrangement: converting a field
// into lane blocks and back must reproduce every byte, and the blocked
// Dslash must produce the scalar kernel's bits — at both precisions, on
// any lattice whose volume divides into lanes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn aosoa_roundtrip_is_bit_exact_both_precisions(
        seed in 0u64..1000,
        which in 0usize..5,
    ) {
        use qcdoc_lattice::aosoa::{FermionBlocks, GaugeBlocks};
        const SHAPES: [[usize; 4]; 5] =
            [[2, 2, 2, 2], [4, 2, 2, 2], [2, 2, 2, 4], [4, 4, 2, 2], [8, 2, 2, 2]];
        let lat = Lattice::new(SHAPES[which]);
        let psi = FermionField::gaussian(lat, seed);
        prop_assert_eq!(FermionBlocks::from_field(&psi).to_field(), psi.clone());
        let psi32 = psi.to_f32();
        prop_assert_eq!(FermionBlocks::from_field(&psi32).to_field(), psi32);
        let gauge = GaugeField::hot(lat, seed.wrapping_add(7));
        prop_assert_eq!(
            GaugeBlocks::from_field(&gauge).to_field().fingerprint(),
            gauge.fingerprint()
        );
        let gauge32 = gauge.to_f32();
        prop_assert_eq!(GaugeBlocks::from_field(&gauge32).to_field(), gauge32);
    }

    #[test]
    fn aosoa_dslash_reproduces_scalar_bits(seed in 0u64..1000) {
        use qcdoc_lattice::aosoa::{dslash_aosoa, FermionBlocks, GaugeBlocks};
        use qcdoc_lattice::field::NeighbourTable;
        let lat = Lattice::new([2, 2, 2, 4]);
        let hops = NeighbourTable::new(lat);
        let gauge = GaugeField::hot(lat, seed);
        let psi = FermionField::gaussian(lat, seed.wrapping_add(1));
        let op = WilsonDirac::new(&gauge, 0.12);
        let mut scalar = FermionField::zero(lat);
        op.dslash(&mut scalar, &psi);
        let mut blocked = FermionBlocks::zero(lat);
        dslash_aosoa(
            &mut blocked,
            &GaugeBlocks::from_field(&gauge),
            &FermionBlocks::from_field(&psi),
            &hops,
        );
        prop_assert_eq!(blocked.to_field().fingerprint(), scalar.fingerprint());

        let gauge32 = gauge.to_f32();
        let psi32 = psi.to_f32();
        let op32 = WilsonDirac::new(&gauge32, 0.12);
        let mut scalar32 = FermionField::<f32>::zero(lat);
        op32.dslash(&mut scalar32, &psi32);
        let mut blocked32 = FermionBlocks::<f32>::zero(lat);
        dslash_aosoa(
            &mut blocked32,
            &GaugeBlocks::from_field(&gauge32),
            &FermionBlocks::from_field(&psi32),
            &hops,
        );
        prop_assert_eq!(blocked32.to_field(), scalar32);
    }
}
