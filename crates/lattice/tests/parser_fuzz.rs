//! Storage-facing parser fuzz: the NERSC-archive readers meet hostile
//! bytes.
//!
//! The durable checkpoint store (PR 8) deliberately feeds these parsers
//! damaged input — torn prefixes from a mid-write server crash, single
//! rotted bits from the disk — and routes on the typed [`IoError`] that
//! comes back (`Truncated`/`BadHeader` → torn, `Checksum` → rot). That
//! only works if the parsers *never panic* and *never silently accept*
//! damaged payload, whatever the damage. These properties drive random
//! truncation points, random bit flips, and raw byte soup through
//! [`read_checkpoint`] and [`read_config`] and assert exactly that.

use proptest::prelude::*;
use qcdoc_lattice::checkpoint::{read_checkpoint, write_checkpoint, CgCheckpoint};
use qcdoc_lattice::field::{GaugeField, Lattice};
use qcdoc_lattice::io::{read_config, write_config, IoError};

/// A small but fully populated checkpoint, varied by seed.
fn sample_checkpoint(seed: u64, iters: usize) -> CgCheckpoint {
    CgCheckpoint {
        operator: "wilson".into(),
        iterations: iters,
        converged: iters.is_multiple_of(3),
        rsq: (seed as f64) * 1e-4 + 0.5,
        bref: (seed as f64) + 2.0,
        residuals: (0..iters).map(|i| 1.0 / (i as f64 + 2.0)).collect(),
        applications: 3 + 2 * iters,
        reductions: 2 + 2 * iters,
        x: (0..24)
            .map(|i| seed.wrapping_mul(11).wrapping_add(i))
            .collect(),
        r: (0..24)
            .map(|i| seed.wrapping_mul(13).wrapping_add(i))
            .collect(),
        p: (0..24)
            .map(|i| seed.wrapping_mul(17).wrapping_add(i))
            .collect(),
    }
}

fn header_end(bytes: &[u8], marker: &[u8]) -> usize {
    bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("writer emits the marker")
        + marker.len()
}

proptest! {
    /// Any truncation of a checkpoint archive is rejected with a typed
    /// error — a torn header reads as `BadHeader`, a torn payload as
    /// `Truncated` — and never panics, never parses.
    #[test]
    fn checkpoint_truncation_is_always_a_typed_error(
        seed in 0u64..10_000,
        iters in 1usize..20,
        cut in 0usize..100_000,
    ) {
        let bytes = write_checkpoint(&sample_checkpoint(seed, iters));
        let cut = cut % bytes.len(); // strictly shorter than the archive
        let hdr = header_end(&bytes, b"END_CKPT_HEADER\n");
        match read_checkpoint(&bytes[..cut]) {
            Err(IoError::BadHeader(_)) => prop_assert!(cut < hdr),
            Err(IoError::Truncated) => prop_assert!(cut >= hdr),
            other => prop_assert!(false, "truncation at {cut} parsed as {other:?}"),
        }
    }

    /// Every single-bit flip in the checkpoint *payload* is caught by
    /// the additive checksum — the flip perturbs exactly one 32-bit
    /// word by ±2^k, so the wrapping sum can never collide.
    #[test]
    fn checkpoint_payload_bit_flip_is_always_detected(
        seed in 0u64..10_000,
        iters in 0usize..20,
        pos in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let mut bytes = write_checkpoint(&sample_checkpoint(seed, iters));
        let hdr = header_end(&bytes, b"END_CKPT_HEADER\n");
        let pos = hdr + pos % (bytes.len() - hdr);
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            matches!(read_checkpoint(&bytes), Err(IoError::Checksum { .. })),
            "payload flip at byte {pos} bit {bit} not caught"
        );
    }

    /// A single-bit flip in the ASCII *header* may legitimately still
    /// parse (the checksum does not cover header scalars — the store
    /// closes that hole with the digest in the generation filename), but
    /// it must never panic, and whatever parses must re-serialize into
    /// an archive that round-trips bit-exactly. Rejections must carry a
    /// typed reason.
    #[test]
    fn checkpoint_header_bit_flip_never_panics_or_lies(
        seed in 0u64..10_000,
        iters in 1usize..20,
        pos in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let mut bytes = write_checkpoint(&sample_checkpoint(seed, iters));
        let hdr = header_end(&bytes, b"END_CKPT_HEADER\n");
        let pos = pos % hdr;
        bytes[pos] ^= 1 << bit;
        if let Ok(parsed) = read_checkpoint(&bytes) {
            let rewritten = write_checkpoint(&parsed);
            let back = read_checkpoint(&rewritten);
            prop_assert_eq!(back.as_ref(), Ok(&parsed), "accepted parse must round-trip");
            prop_assert_eq!(back.unwrap().digest(), parsed.digest());
        }
    }

    /// Raw byte soup — no structure at all — never panics either parser.
    #[test]
    fn byte_soup_never_panics_any_parser(
        soup in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        prop_assert!(read_checkpoint(&soup).is_err());
        prop_assert!(read_config(&soup).is_err());
    }

    /// Byte soup appended after a *valid* header end-marker exercises
    /// the payload-sizing paths with attacker-controlled lengths: still
    /// no panic, still a typed error (the soup cannot carry the right
    /// checksum except vanishingly rarely, and then the plaquette or
    /// digest layer above catches it).
    #[test]
    fn soup_behind_a_real_header_is_handled(
        seed in 0u64..1_000,
        soup in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let bytes = write_checkpoint(&sample_checkpoint(seed, 4));
        let hdr = header_end(&bytes, b"END_CKPT_HEADER\n");
        let mut patched = bytes[..hdr].to_vec();
        patched.extend_from_slice(&soup);
        match read_checkpoint(&patched) {
            Err(IoError::Truncated) | Err(IoError::Checksum { .. }) => {}
            other => prop_assert!(false, "expected Truncated/Checksum, got {other:?}"),
        }
    }
}

proptest! {
    // Gauge configs are bigger; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any truncation of a gauge-config archive is a typed error.
    #[test]
    fn config_truncation_is_always_a_typed_error(
        seed in 0u64..1_000,
        cut in 0usize..1_000_000,
    ) {
        let lat = Lattice::new([2, 2, 2, 2]);
        let bytes = write_config(&GaugeField::hot(lat, seed));
        let cut = cut % bytes.len();
        let hdr = header_end(&bytes, b"END_HEADER\n");
        match read_config(&bytes[..cut]) {
            Err(IoError::BadHeader(_)) => prop_assert!(cut < hdr),
            Err(IoError::Truncated) => prop_assert!(cut >= hdr),
            other => prop_assert!(false, "truncation at {cut} parsed as {other:?}"),
        }
    }

    /// A bit flip anywhere in a gauge-config archive — header *or*
    /// payload — never panics and never reads back as the original
    /// field. (Unlike checkpoints, every header scalar here is
    /// cross-checked: geometry sizes the payload, the checksum covers
    /// the bytes, the plaquette re-derives from the data.)
    #[test]
    fn config_bit_flip_never_returns_the_wrong_field(
        seed in 0u64..1_000,
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::hot(lat, seed);
        let mut bytes = write_config(&gauge);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(parsed) = read_config(&bytes) {
            // Only cosmetic header damage (e.g. a flipped bit inside an
            // ignored key's name or trailing zeros of the plaquette) can
            // parse; the field itself must be untouched.
            prop_assert_eq!(parsed.fingerprint(), gauge.fingerprint());
        }
    }
}
