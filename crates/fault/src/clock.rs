//! The compiled fault plan: deterministic, stateless draw machinery.

use crate::plan::{FaultKind, FaultPlan, LinkSelect, NodeSelect};
use qcdoc_scu::link::{WireFrame, WireTap, WireVerdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Number of wire directions per node (the 6-D mesh of the ASIC).
const LINKS: usize = 12;

/// SplitMix64 finalizer: the hash behind every stateless draw.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A [`FaultPlan`] compiled against a concrete machine.
///
/// Compilation resolves every `Random` target once, using a seeded
/// [`StdRng`]; after that the clock is immutable and every query is a pure
/// function of `(seed, node, link, sequence)`. Two clocks compiled from
/// equal plans against equal machines answer every query identically —
/// regardless of thread scheduling in the engine that asks.
#[derive(Debug, Clone)]
pub struct FaultClock {
    seed: u64,
    bit_flips: Vec<(u32, usize, u64, usize, usize)>,
    payload_bursts: Vec<(u32, usize, u64, usize, usize)>,
    error_rates: Vec<(u32, usize, f64)>,
    stalls: Vec<(u32, usize, usize, u64)>,
    dead_links: Vec<(u32, usize, u64)>,
    stuck_links: Vec<(u32, usize, u64)>,
    pauses: Vec<(u32, Option<usize>, u64)>,
    crashes: Vec<(u32, usize)>,
    mem_flips: Vec<(u32, u64, u32)>,
}

impl FaultClock {
    /// Compile `plan` for a machine of `node_count` nodes whose wired
    /// links are `0..wired_links` (twice the torus rank).
    pub fn resolve(plan: &FaultPlan, node_count: u32, wired_links: usize) -> FaultClock {
        assert!(node_count > 0, "empty machine");
        let wired = wired_links.clamp(1, LINKS);
        let mut rng = StdRng::seed_from_u64(plan.seed);
        let mut clock = FaultClock {
            seed: plan.seed,
            bit_flips: Vec::new(),
            payload_bursts: Vec::new(),
            error_rates: Vec::new(),
            stalls: Vec::new(),
            dead_links: Vec::new(),
            stuck_links: Vec::new(),
            pauses: Vec::new(),
            crashes: Vec::new(),
            mem_flips: Vec::new(),
        };
        for event in &plan.events {
            let node = match event.node {
                NodeSelect::Node(n) => n % node_count,
                NodeSelect::Random => rng.gen_range(0..node_count),
            };
            let link = match event.link {
                LinkSelect::Link(l) => l % LINKS,
                LinkSelect::Random => rng.gen_range(0..wired),
            };
            match event.kind {
                FaultKind::BitFlip {
                    seq,
                    first_bit,
                    burst,
                } => {
                    clock
                        .bit_flips
                        .push((node, link, seq, first_bit, burst.max(1)));
                }
                FaultKind::BitErrorRate { rate } => {
                    assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
                    clock.error_rates.push((node, link, rate));
                }
                FaultKind::Stall { iteration, cycles } => {
                    clock.stalls.push((node, link, iteration, cycles));
                }
                FaultKind::DeadLink { from_seq } => {
                    clock.dead_links.push((node, link, from_seq));
                }
                FaultKind::StuckLink { from_seq } => {
                    clock.stuck_links.push((node, link, from_seq));
                }
                FaultKind::NodePause { iteration, cycles } => {
                    clock.pauses.push((node, iteration, cycles));
                }
                FaultKind::NodeCrash { iteration } => clock.crashes.push((node, iteration)),
                FaultKind::MemBitFlip { addr, bit } => clock.mem_flips.push((node, addr, bit)),
                FaultKind::MemDoubleFlip { addr, bit, bit2 } => {
                    assert_ne!(bit, bit2, "a double flip needs two distinct bits");
                    // Two raw flips of the same word: the injection loop
                    // stays a plain (addr, bit) stream, and SEC-DED sees
                    // an uncorrectable word.
                    clock.mem_flips.push((node, addr, bit));
                    clock.mem_flips.push((node, addr, bit2));
                }
                FaultKind::PayloadBurst {
                    seq,
                    first_bit,
                    pairs,
                } => {
                    clock
                        .payload_bursts
                        .push((node, link, seq, first_bit, pairs.clamp(1, 16)));
                }
            }
        }
        clock
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn key(&self, tag: u64, node: u32, link: usize, seq: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix(tag))
            .wrapping_add(mix(node as u64 ^ 0xA5A5_0000))
            .wrapping_add(mix(link as u64 ^ 0x5A5A_0000))
            .wrapping_add(mix(seq)))
    }

    /// Whether the wire swallows this frame entirely: a dead link, or a
    /// node that crashed (its outgoing traffic stops).
    pub fn drop_frame(&self, node: u32, link: usize, seq: u64) -> bool {
        if self.crashes.iter().any(|&(n, _)| n == node) {
            return true;
        }
        self.dead_links
            .iter()
            .any(|&(n, l, from)| n == node && l == link && from <= seq)
    }

    /// Apply bit corruption to a *fresh* (first-transmission) data frame.
    /// Returns whether the frame was corrupted. Pure in `(node, link,
    /// seq)`: retransmissions must not be passed back in (see
    /// [`NodeTap`]), or they would be corrupted identically forever.
    pub fn corrupt_fresh(&self, node: u32, link: usize, wf: &mut WireFrame) -> bool {
        let mut hit = false;
        let bits = wf.frame.wire_bits() as usize;
        for &(n, l, seq, first_bit, burst) in &self.bit_flips {
            if n == node && l == link && seq == wf.seq {
                for b in 0..burst {
                    wf.frame.corrupt_bit((first_bit + b) % bits);
                }
                hit = true;
            }
        }
        for &(n, l, seq, first_bit, pairs) in &self.payload_bursts {
            if n == node && l == link && seq == wf.seq && bits >= 72 {
                // 2·pairs flips, all in the payload (frame bits 8..72) and
                // all in the same even/odd parity class (spacing 2): both
                // class parities flip an even number of times, so the
                // frame still decodes — carrying a wrong word.
                for k in 0..2 * pairs {
                    wf.frame.corrupt_bit(8 + (first_bit + 2 * k) % 64);
                }
                hit = true;
            }
        }
        for (i, &(n, l, rate)) in self.error_rates.iter().enumerate() {
            if n == node && l == link {
                let draw = self.key(0xE44 + i as u64, node, link, wf.seq);
                if unit(draw) < rate {
                    wf.frame.corrupt_bit((mix(draw) % bits as u64) as usize);
                    hit = true;
                }
            }
        }
        hit
    }

    /// Extra compute cycles for `node` at `iteration` (node pauses).
    pub fn pause_cycles(&self, node: u32, iteration: usize) -> u64 {
        self.pauses
            .iter()
            .filter(|&&(n, it, _)| n == node && it.is_none_or(|i| i == iteration))
            .map(|&(_, _, c)| c)
            .sum()
    }

    /// Extra cycles `node`'s `link` withholds its face at `iteration`.
    pub fn stall_cycles(&self, node: u32, link: usize, iteration: usize) -> u64 {
        self.stalls
            .iter()
            .filter(|&&(n, l, it, _)| n == node && l == link && it == iteration)
            .map(|&(_, _, _, c)| c)
            .sum()
    }

    /// Deterministic number of in-flight corruptions on `node`'s `link`
    /// during `iteration`, with `words` data words crossing it. Scheduled
    /// bit-flips whose sequence number falls in the iteration's word range
    /// count directly; sustained error rates contribute a Poisson draw
    /// keyed by `(node, link, iteration)`.
    pub fn wire_errors(&self, node: u32, link: usize, iteration: usize, words: u64) -> u64 {
        let lo = iteration as u64 * words;
        let hi = lo + words;
        let mut count = self
            .bit_flips
            .iter()
            .filter(|&&(n, l, seq, _, _)| n == node && l == link && seq >= lo && seq < hi)
            .count() as u64;
        for (i, &(n, l, rate)) in self.error_rates.iter().enumerate() {
            if n == node && l == link {
                let lambda = rate * words as f64;
                let u = unit(self.key(0xDE5 + i as u64, node, link, iteration as u64));
                // Inverse-CDF Poisson: cheap for the small λ of real BERs.
                let mut k = 0u64;
                let mut p = (-lambda).exp();
                let mut cdf = p;
                while u > cdf && k < words {
                    k += 1;
                    p *= lambda / k as f64;
                    cdf += p;
                }
                count += k;
            }
        }
        count
    }

    /// The iteration at which `node` goes dark, if it ever does.
    pub fn crash_iteration(&self, node: u32) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, it)| it)
            .min()
    }

    /// The first dropped sequence number of `node`'s `link`, if the wire
    /// is scheduled to die.
    pub fn link_dead_from(&self, node: u32, link: usize) -> Option<u64> {
        self.dead_links
            .iter()
            .filter(|&&(n, l, _)| n == node && l == link)
            .map(|&(_, _, from)| from)
            .min()
    }

    /// The first corrupted sequence number of `node`'s `link`, if the
    /// transmitter is scheduled to break.
    pub fn link_stuck_from(&self, node: u32, link: usize) -> Option<u64> {
        self.stuck_links
            .iter()
            .filter(|&&(n, l, _)| n == node && l == link)
            .map(|&(_, _, from)| from)
            .min()
    }

    /// Corrupt a frame crossing a stuck transmitter — resends included.
    /// Returns whether the frame was touched. The flipped bit is keyed by
    /// the sequence number alone, so every retransmission of a word is
    /// corrupted identically: the defining property of a broken driver,
    /// and the one the go-back-N resend cannot heal.
    pub fn corrupt_stuck(&self, node: u32, link: usize, wf: &mut WireFrame) -> bool {
        let Some(from) = self.link_stuck_from(node, link) else {
            return false;
        };
        if wf.seq < from {
            return false;
        }
        let bits = wf.frame.wire_bits();
        let draw = self.key(0x57C4, node, link, wf.seq);
        wf.frame.corrupt_bit((draw % bits) as usize);
        true
    }

    /// Whether the plan contains an unrecoverable fault (dead link, stuck
    /// transmitter, or node crash) anywhere in the machine.
    pub fn has_fatal(&self) -> bool {
        !self.dead_links.is_empty() || !self.stuck_links.is_empty() || !self.crashes.is_empty()
    }

    /// Memory soft errors scheduled for `node` (byte address, bit).
    pub fn mem_faults(&self, node: u32) -> Vec<(u64, u32)> {
        self.mem_flips
            .iter()
            .filter(|&&(n, _, _)| n == node)
            .map(|&(_, addr, bit)| (addr, bit))
            .collect()
    }
}

/// One node's wire tap, installable into an execution engine.
///
/// The tap distinguishes first transmissions from go-back-N resends by
/// tracking the highest data sequence seen per link: corruption draws
/// apply only to fresh frames, so an injected error is healed by exactly
/// one resend round instead of recurring forever, and the injected-fault
/// count is deterministic no matter how the engine's threads interleave.
#[derive(Debug)]
pub struct NodeTap {
    clock: Arc<FaultClock>,
    node: u32,
    fresh: [u64; LINKS],
    injected: [u64; LINKS],
    dropped: [u64; LINKS],
}

impl NodeTap {
    /// A tap for logical node `node`.
    pub fn new(clock: Arc<FaultClock>, node: u32) -> NodeTap {
        NodeTap {
            clock,
            node,
            fresh: [0; LINKS],
            injected: [0; LINKS],
            dropped: [0; LINKS],
        }
    }

    /// Frames corrupted so far, per link (deterministic across runs).
    pub fn injected(&self) -> &[u64; LINKS] {
        &self.injected
    }

    /// Frames swallowed by dead wires so far, per link.
    pub fn dropped(&self) -> &[u64; LINKS] {
        &self.dropped
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }
}

impl WireTap for NodeTap {
    fn on_frame(&mut self, link: usize, wf: &mut WireFrame) -> WireVerdict {
        if self.clock.drop_frame(self.node, link, wf.seq) {
            self.dropped[link] += 1;
            return WireVerdict::Drop;
        }
        // Partition interrupts travel outside the data sequence.
        if wf.seq == u64::MAX {
            return WireVerdict::Deliver;
        }
        // A stuck transmitter mangles every transmission, fresh or resent
        // (so the count below is per-attempt, not per-word).
        if self.clock.corrupt_stuck(self.node, link, wf) {
            self.injected[link] += 1;
            return WireVerdict::Deliver;
        }
        if wf.seq >= self.fresh[link] {
            self.fresh[link] = wf.seq + 1;
            if self.clock.corrupt_fresh(self.node, link, wf) {
                self.injected[link] += 1;
            }
        }
        WireVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;
    use qcdoc_scu::packet::{Frame, Packet};

    fn frame(seq: u64, word: u64) -> WireFrame {
        WireFrame {
            seq,
            frame: Frame::encode(Packet::Normal(word)),
        }
    }

    #[test]
    fn random_targets_resolve_deterministically() {
        let plan = FaultPlan::new(99)
            .with_event(FaultEvent::random_bit_error_rate(0.5))
            .with_event(FaultEvent::random_bit_error_rate(0.5));
        let a = FaultClock::resolve(&plan, 16, 8);
        let b = FaultClock::resolve(&plan, 16, 8);
        assert_eq!(a.error_rates, b.error_rates);
        // Wired-link constraint honoured.
        assert!(a.error_rates.iter().all(|&(n, l, _)| n < 16 && l < 8));
    }

    #[test]
    fn scheduled_flip_hits_exactly_its_frame() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::bit_flip(2, 0, 5, 20));
        let clock = FaultClock::resolve(&plan, 4, 2);
        let mut hit = frame(5, 42);
        assert!(clock.corrupt_fresh(2, 0, &mut hit));
        assert!(hit.frame.decode().is_err(), "single flip must break parity");
        let mut miss = frame(4, 42);
        assert!(!clock.corrupt_fresh(2, 0, &mut miss));
        let mut wrong_node = frame(5, 42);
        assert!(!clock.corrupt_fresh(1, 0, &mut wrong_node));
    }

    #[test]
    fn burst_flips_adjacent_bits() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::burst(0, 0, 0, 70, 4));
        let clock = FaultClock::resolve(&plan, 1, 2);
        let mut wf = frame(0, 7);
        let before = wf.frame.clone();
        assert!(clock.corrupt_fresh(0, 0, &mut wf));
        let differing: u32 = wf
            .frame
            .as_bytes()
            .iter()
            .zip(before.as_bytes())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 4, "burst of 4 must flip 4 bits (wrapping)");
    }

    #[test]
    fn error_rate_draws_are_stateless_and_seed_sensitive() {
        let plan = |seed| FaultPlan::new(seed).with_event(FaultEvent::bit_error_rate(0, 0, 0.25));
        let a = FaultClock::resolve(&plan(5), 2, 2);
        let b = FaultClock::resolve(&plan(5), 2, 2);
        let c = FaultClock::resolve(&plan(6), 2, 2);
        let pattern = |clock: &FaultClock| -> Vec<bool> {
            (0..200u64)
                .map(|seq| {
                    let mut wf = frame(seq, seq);
                    clock.corrupt_fresh(0, 0, &mut wf)
                })
                .collect()
        };
        assert_eq!(
            pattern(&a),
            pattern(&b),
            "same seed, same corruption stream"
        );
        assert_ne!(pattern(&a), pattern(&c), "different seed, different stream");
        let hits = pattern(&a).iter().filter(|&&h| h).count();
        assert!(
            (20..=80).contains(&hits),
            "rate 0.25 over 200 draws, got {hits}"
        );
    }

    #[test]
    fn tap_skips_resends_and_counts_injections() {
        let plan = FaultPlan::new(3).with_event(FaultEvent::bit_flip(0, 1, 2, 15));
        let clock = Arc::new(FaultClock::resolve(&plan, 2, 4));
        let mut tap = NodeTap::new(clock, 0);
        for seq in 0..4 {
            let mut wf = frame(seq, seq);
            assert_eq!(tap.on_frame(1, &mut wf), WireVerdict::Deliver);
        }
        assert_eq!(tap.injected()[1], 1);
        // The resend of seq 2 travels clean.
        let mut resend = frame(2, 2);
        tap.on_frame(1, &mut resend);
        assert!(
            resend.frame.decode().is_ok(),
            "retransmission must not be re-corrupted"
        );
        assert_eq!(tap.injected()[1], 1);
    }

    #[test]
    fn dead_link_drops_everything_from_cutoff() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 3));
        let clock = Arc::new(FaultClock::resolve(&plan, 2, 2));
        let mut tap = NodeTap::new(Arc::clone(&clock), 1);
        let mut early = frame(2, 0);
        assert_eq!(tap.on_frame(0, &mut early), WireVerdict::Deliver);
        let mut late = frame(3, 0);
        assert_eq!(tap.on_frame(0, &mut late), WireVerdict::Drop);
        let mut resend = frame(5, 0);
        assert_eq!(tap.on_frame(0, &mut resend), WireVerdict::Drop);
        assert_eq!(tap.dropped()[0], 2);
        // Other links unaffected.
        let mut other = frame(9, 0);
        assert_eq!(tap.on_frame(1, &mut other), WireVerdict::Deliver);
        assert_eq!(clock.link_dead_from(1, 0), Some(3));
        assert!(clock.has_fatal());
    }

    #[test]
    fn stuck_link_corrupts_resends_too() {
        let plan = FaultPlan::new(4).with_event(FaultEvent::stuck_link(0, 2, 1));
        let clock = Arc::new(FaultClock::resolve(&plan, 2, 4));
        let mut tap = NodeTap::new(Arc::clone(&clock), 0);
        let mut early = frame(0, 10);
        tap.on_frame(2, &mut early);
        assert!(early.frame.decode().is_ok(), "below the cutoff: clean");
        // Every transmission of seq 1 arrives corrupt — identically.
        let mut first = frame(1, 11);
        let mut resend = frame(1, 11);
        tap.on_frame(2, &mut first);
        tap.on_frame(2, &mut resend);
        assert!(first.frame.decode().is_err());
        assert_eq!(first.frame, resend.frame, "same word, same corruption");
        assert_eq!(tap.injected()[2], 2, "stuck injections count per attempt");
        // Other links unaffected; the fault is fatal for the run.
        let mut other = frame(1, 11);
        tap.on_frame(3, &mut other);
        assert!(other.frame.decode().is_ok());
        assert_eq!(clock.link_stuck_from(0, 2), Some(1));
        assert!(clock.has_fatal());
    }

    #[test]
    fn wire_errors_partition_by_iteration_and_stay_deterministic() {
        let plan = FaultPlan::new(11)
            .with_event(FaultEvent::bit_flip(0, 0, 150, 9))
            .with_event(FaultEvent::bit_error_rate(0, 0, 0.01));
        let clock = FaultClock::resolve(&plan, 1, 2);
        // The scheduled flip (seq 150) lands in iteration 1 of a
        // 100-word-per-iteration schedule.
        let base: u64 = clock.wire_errors(0, 0, 1, 100);
        assert!(base >= 1);
        assert_eq!(
            base,
            clock.wire_errors(0, 0, 1, 100),
            "draws must be stateless"
        );
        // Expected error mass over many iterations roughly matches λ.
        let total: u64 = (0..400).map(|it| clock.wire_errors(0, 0, it, 100)).sum();
        assert!(
            (150..=700).contains(&total),
            "λ=1/iter over 400 iters, got {total}"
        );
    }

    #[test]
    fn payload_burst_evades_frame_parity() {
        let plan = FaultPlan::new(2).with_event(FaultEvent::payload_burst(0, 0, 3, 12, 2));
        let clock = FaultClock::resolve(&plan, 1, 2);
        let mut wf = frame(3, 0xDEAD_BEEF_CAFE_F00D);
        assert!(clock.corrupt_fresh(0, 0, &mut wf));
        // The defining property: the frame parity does NOT catch it …
        let decoded = wf.frame.decode().expect("burst must evade frame parity");
        // … and the carried word is silently wrong.
        assert_ne!(decoded, Packet::Normal(0xDEAD_BEEF_CAFE_F00D));
        assert!(matches!(decoded, Packet::Normal(_)));
        // Other sequence numbers travel clean.
        let mut miss = frame(4, 1);
        assert!(!clock.corrupt_fresh(0, 0, &mut miss));
    }

    #[test]
    fn payload_bursts_of_every_width_evade_parity() {
        for pairs in 1..=16 {
            for first_bit in 0..64 {
                let plan = FaultPlan::new(0)
                    .with_event(FaultEvent::payload_burst(0, 0, 0, first_bit, pairs));
                let clock = FaultClock::resolve(&plan, 1, 2);
                let mut wf = frame(0, 0x0123_4567_89AB_CDEF);
                assert!(clock.corrupt_fresh(0, 0, &mut wf));
                assert!(
                    wf.frame.decode().is_ok(),
                    "burst pairs={pairs} first_bit={first_bit} tripped frame parity"
                );
            }
        }
    }

    #[test]
    fn mem_double_flip_yields_two_flips_of_one_word() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::mem_double_flip(1, 0x200, 3, 41));
        let clock = FaultClock::resolve(&plan, 4, 2);
        assert_eq!(clock.mem_faults(1), vec![(0x200, 3), (0x200, 41)]);
        assert!(clock.mem_faults(0).is_empty());
    }

    #[test]
    fn node_scoped_queries() {
        let plan = FaultPlan::new(0)
            .with_event(FaultEvent::node_pause(3, Some(2), 500))
            .with_event(FaultEvent::node_pause(3, None, 7))
            .with_event(FaultEvent::node_crash(1, 4))
            .with_event(FaultEvent::mem_bit_flip(2, 0x100, 63));
        let clock = FaultClock::resolve(&plan, 8, 8);
        assert_eq!(clock.pause_cycles(3, 2), 507);
        assert_eq!(clock.pause_cycles(3, 1), 7);
        assert_eq!(clock.pause_cycles(0, 2), 0);
        assert_eq!(clock.crash_iteration(1), Some(4));
        assert_eq!(clock.crash_iteration(3), None);
        assert_eq!(clock.mem_faults(2), vec![(0x100, 63)]);
        assert!(clock.mem_faults(0).is_empty());
        assert!(clock.drop_frame(1, 5, 0), "a crashed node's wires go dark");
    }
}
