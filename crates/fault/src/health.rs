//! The machine-health ledger: what the host's diagnostics path reads out.

use qcdoc_geometry::{Axis, NodeId, TorusShape};
use qcdoc_telemetry::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Number of wire directions per node.
const LINKS: usize = 12;

/// Whether a node survived the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Liveness {
    /// The node ran to completion.
    #[default]
    Alive,
    /// The node went dark at `iteration` (scheduled crash).
    Crashed {
        /// Iteration the node stopped responding.
        iteration: usize,
    },
    /// The node never completed — its run wedged waiting on a wire.
    Wedged,
}

/// End-of-run health of one wire direction of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkHealth {
    /// Data words this node pushed into the send unit.
    pub sent_words: u64,
    /// Data words accepted by this node's receive unit.
    pub received_words: u64,
    /// Go-back-N retransmissions the send unit performed.
    pub resends: u64,
    /// Frames the receive unit rejected (parity or type-code damage).
    pub rejects: u64,
    /// Frames the fault machinery corrupted on this wire (deterministic).
    pub injected: u64,
    /// Extra cycles the wire withheld traffic (timing engine only).
    pub stall_cycles: u64,
    /// Whether the wire was scheduled dead at any point.
    pub dead: bool,
    /// End-of-run checksum of everything sent on this wire.
    pub send_checksum: u64,
    /// End-of-run checksum of everything received on this wire.
    pub recv_checksum: u64,
    /// Verdict after pairing with the neighbour's opposite wire; `None`
    /// until [`HealthLedger::finalize`] runs or when the wire is unwired.
    pub checksum_ok: Option<bool>,
    /// Pump rounds the send unit held the wire in retry backoff.
    pub backoff_waits: u64,
    /// Whether the send unit exhausted its retry budget and went silent —
    /// the link-level escalation verdict (`LinkVerdict::Dead`).
    pub retry_exhausted: bool,
    /// Checked DMA blocks whose end-to-end checksum failed at the receive
    /// unit (corruption that evaded the per-frame parity).
    pub block_rejects: u64,
    /// Whole-block replays the send unit performed after a block reject.
    pub block_resends: u64,
}

/// End-of-run health of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// Logical node rank.
    pub node: u32,
    /// Whether the node survived.
    pub liveness: Liveness,
    /// Per-wire health, indexed by `Direction::link_index` (0..12).
    pub links: Vec<LinkHealth>,
    /// Memory soft-error bits injected into this node (raw injection
    /// count, before the ECC verdict splits them into corrected vs
    /// machine-checked).
    pub mem_flips: u64,
    /// Single-bit memory errors the SEC-DED code corrected (on read or
    /// scrub). Corrected errors are *not* casualty evidence: the paper's
    /// ECC exists precisely so these never take a node down.
    pub ecc_corrected: u64,
    /// Uncorrectable memory words the node latched machine checks for.
    /// Any nonzero value condemns the node like a crash.
    pub machine_checks: u64,
}

impl NodeHealth {
    fn new(node: u32) -> NodeHealth {
        NodeHealth {
            node,
            liveness: Liveness::Alive,
            links: vec![LinkHealth::default(); LINKS],
            mem_flips: 0,
            ecc_corrected: 0,
            machine_checks: 0,
        }
    }
}

/// Machine-wide health report, aggregated from every node's SCU counters.
///
/// This is the software analogue of the paper's end-of-run diagnostics
/// sweep: the host walks the Ethernet/JTAG tree, reads each node's link
/// checksums and error counters, and pairs each send checksum with the
/// receiving neighbour's. A mismatch means a corruption slipped past the
/// per-frame parity — exactly the failure the paper's checksums exist to
/// catch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthLedger {
    /// Per-node reports, indexed by rank.
    pub nodes: Vec<NodeHealth>,
}

impl HealthLedger {
    /// An empty ledger for `node_count` nodes.
    pub fn new(node_count: usize) -> HealthLedger {
        HealthLedger {
            nodes: (0..node_count as u32).map(NodeHealth::new).collect(),
        }
    }

    /// Mutable access to one node's report.
    pub fn node_mut(&mut self, node: u32) -> &mut NodeHealth {
        &mut self.nodes[node as usize]
    }

    /// Pair every wired send checksum with the receiving neighbour's
    /// checksum on the opposite wire, filling in `checksum_ok`. A wire
    /// whose axis is outside `shape.rank()` stays `None` (unwired).
    pub fn finalize(&mut self, shape: &TorusShape) {
        assert_eq!(
            self.nodes.len(),
            shape.node_count(),
            "ledger/shape size mismatch"
        );
        let verdicts: Vec<(usize, usize, bool)> = self
            .nodes
            .iter()
            .flat_map(|nh| {
                let coord = shape.coord_of(NodeId(nh.node));
                (0..shape.rank())
                    .flat_map(move |a| [Axis(a as u8).plus(), Axis(a as u8).minus()])
                    .map(move |d| (nh, coord, d))
            })
            .map(|(nh, coord, d)| {
                let nb = shape.rank_of(shape.neighbour(coord, d)).index();
                let sent = nh.links[d.link_index()].send_checksum;
                let got = self.nodes[nb].links[d.opposite().link_index()].recv_checksum;
                (nh.node as usize, d.link_index(), sent == got)
            })
            .collect();
        for (node, link, ok) in verdicts {
            self.nodes[node].links[link].checksum_ok = Some(ok);
        }
    }

    /// Total go-back-N retransmissions across the machine.
    pub fn total_resends(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.links)
            .map(|l| l.resends)
            .sum()
    }

    /// Total frames the fault machinery corrupted (deterministic).
    pub fn total_injected(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.links)
            .map(|l| l.injected)
            .sum()
    }

    /// Every wire scheduled dead, as `(node, link_index)`.
    pub fn dead_links(&self) -> Vec<(u32, usize)> {
        self.nodes
            .iter()
            .flat_map(|n| {
                n.links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.dead)
                    .map(|(i, _)| (n.node, i))
            })
            .collect()
    }

    /// Nodes that did not finish healthy: crashed, wedged, any dead or
    /// retry-exhausted wire, a failed checksum pairing, or an
    /// uncorrectable memory error (machine check). A soft error the ECC
    /// *corrected* leaves the node healthy — that is the point of the
    /// code.
    pub fn unhealthy_nodes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| {
                n.liveness != Liveness::Alive
                    || n.machine_checks > 0
                    || n.links
                        .iter()
                        .any(|l| l.dead || l.retry_exhausted || l.checksum_ok == Some(false))
            })
            .map(|n| n.node)
            .collect()
    }

    /// Nodes with *hardware evidence* of their own failure: a scheduled
    /// crash, a dead or retry-exhausted wire, or a latched machine check
    /// (uncorrectable memory error).
    ///
    /// This is the quarantine set. [`HealthLedger::unhealthy_nodes`] also
    /// flags collateral damage — in a tightly coupled calculation one dead
    /// wire wedges *every* node at the next global sum and breaks checksum
    /// pairings machine-wide, so quarantining all unhealthy nodes would
    /// condemn the whole partition. Wedged liveness and checksum
    /// mismatches alone are symptoms, not evidence of local fault.
    pub fn culprit_nodes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(n.liveness, Liveness::Crashed { .. })
                    || n.machine_checks > 0
                    || n.links.iter().any(|l| l.dead || l.retry_exhausted)
            })
            .map(|n| n.node)
            .collect()
    }

    /// Total single-bit memory corrections across the machine — the
    /// `ecc_corrections` figure of the host's hardware status readout.
    pub fn total_ecc_corrected(&self) -> u64 {
        self.nodes.iter().map(|n| n.ecc_corrected).sum()
    }

    /// Total latched machine checks across the machine.
    pub fn total_machine_checks(&self) -> u64 {
        self.nodes.iter().map(|n| n.machine_checks).sum()
    }

    /// Total checked-DMA block checksum failures across the machine.
    pub fn total_block_rejects(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.links)
            .map(|l| l.block_rejects)
            .sum()
    }

    /// Whether every finalized checksum pairing agreed.
    pub fn all_checksums_ok(&self) -> bool {
        self.nodes
            .iter()
            .flat_map(|n| &n.links)
            .all(|l| l.checksum_ok != Some(false))
    }

    /// Publish the ledger into a [`MetricsRegistry`] — the single view the
    /// host daemon serves from `Qdaemon::scrape()`.
    ///
    /// Everything is exported as *gauges* holding absolute end-of-run
    /// values (the same convention as `ScuStats::export_metrics` in
    /// `qcdoc-scu`, with identical `scu_link_*` series names), so
    /// re-ingesting the same ledger is idempotent and per-wire counters
    /// are never double-counted between the two sources.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        for n in &self.nodes {
            let node_labels = [("node", n.node.to_string())];
            reg.gauge_set(
                "node_liveness",
                &node_labels,
                match n.liveness {
                    Liveness::Alive => 0.0,
                    Liveness::Crashed { .. } => 1.0,
                    Liveness::Wedged => 2.0,
                },
            );
            reg.gauge_set("node_mem_flips", &node_labels, n.mem_flips as f64);
            reg.gauge_set("node_ecc_corrected", &node_labels, n.ecc_corrected as f64);
            reg.gauge_set("node_machine_checks", &node_labels, n.machine_checks as f64);
            for (link, l) in n.links.iter().enumerate() {
                let active = l.sent_words > 0
                    || l.received_words > 0
                    || l.resends > 0
                    || l.rejects > 0
                    || l.injected > 0
                    || l.stall_cycles > 0
                    || l.dead
                    || l.backoff_waits > 0
                    || l.retry_exhausted
                    || l.block_rejects > 0
                    || l.block_resends > 0;
                if !active {
                    continue;
                }
                let labels = [("node", n.node.to_string()), ("link", link.to_string())];
                reg.gauge_set("scu_link_sent_words", &labels, l.sent_words as f64);
                reg.gauge_set("scu_link_received_words", &labels, l.received_words as f64);
                reg.gauge_set("scu_link_resends", &labels, l.resends as f64);
                reg.gauge_set("scu_link_rejects", &labels, l.rejects as f64);
                reg.gauge_set("scu_link_injected", &labels, l.injected as f64);
                reg.gauge_set("scu_link_stall_cycles", &labels, l.stall_cycles as f64);
                reg.gauge_set("scu_link_dead", &labels, u64::from(l.dead) as f64);
                if l.backoff_waits > 0 {
                    reg.gauge_set("scu_link_backoff_waits", &labels, l.backoff_waits as f64);
                }
                if l.retry_exhausted {
                    reg.gauge_set("scu_link_retry_exhausted", &labels, 1.0);
                }
                if l.block_rejects > 0 {
                    reg.gauge_set("scu_link_block_rejects", &labels, l.block_rejects as f64);
                }
                if l.block_resends > 0 {
                    reg.gauge_set("scu_link_block_resends", &labels, l.block_resends as f64);
                }
                if let Some(ok) = l.checksum_ok {
                    reg.gauge_set("scu_link_checksum_ok", &labels, u64::from(ok) as f64);
                }
            }
        }
        let mismatches = self
            .nodes
            .iter()
            .flat_map(|n| &n.links)
            .filter(|l| l.checksum_ok == Some(false))
            .count();
        reg.gauge_set("machine_total_resends", &[], self.total_resends() as f64);
        reg.gauge_set("machine_total_injected", &[], self.total_injected() as f64);
        reg.gauge_set("machine_dead_links", &[], self.dead_links().len() as f64);
        reg.gauge_set("machine_checksum_mismatches", &[], mismatches as f64);
        reg.gauge_set(
            "machine_ecc_corrected",
            &[],
            self.total_ecc_corrected() as f64,
        );
        reg.gauge_set(
            "machine_machine_checks",
            &[],
            self.total_machine_checks() as f64,
        );
        reg.gauge_set(
            "machine_block_rejects",
            &[],
            self.total_block_rejects() as f64,
        );
        reg.gauge_set(
            "machine_unhealthy_nodes",
            &[],
            self.unhealthy_nodes().len() as f64,
        );
    }

    /// FNV-1a digest of the ledger's *deterministic* fields: word counts,
    /// injected-fault counts, stall time, dead flags, checksums, liveness,
    /// memory flips and their ECC verdicts, and checked-block rejects and
    /// replays. Resend/reject counters are excluded — with a threaded
    /// execution engine they depend on scheduling (an ack that arrives a
    /// frame later causes an extra, harmless rewind) while everything
    /// hashed here does not. Backoff waits and retry-budget verdicts are
    /// excluded for the same reason: they are functions of the resend
    /// count. Block rejects *are* hashed: the payload bursts that cause
    /// them strike fresh transmissions only, so their count is a pure
    /// function of the fault plan. Two same-seed runs must produce equal
    /// fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01B3);
            }
        };
        for n in &self.nodes {
            eat(u64::from(n.node));
            eat(match n.liveness {
                Liveness::Alive => 0,
                Liveness::Crashed { iteration } => 1 + ((iteration as u64) << 8),
                Liveness::Wedged => 2,
            });
            eat(n.mem_flips);
            eat(n.ecc_corrected);
            eat(n.machine_checks);
            for l in &n.links {
                eat(l.sent_words);
                eat(l.received_words);
                eat(l.injected);
                eat(l.stall_cycles);
                eat(u64::from(l.dead));
                eat(l.send_checksum);
                eat(l.recv_checksum);
                eat(l.block_rejects);
                eat(l.block_resends);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape2() -> TorusShape {
        TorusShape::new(&[2])
    }

    #[test]
    fn finalize_pairs_opposite_wires() {
        // Two nodes on a 1-D ring of 2: node 0's +x wire (link 0) feeds
        // node 1's -x receive wire (link 1), and vice versa.
        let shape = shape2();
        let mut ledger = HealthLedger::new(2);
        ledger.node_mut(0).links[0].send_checksum = 0xAAAA;
        ledger.node_mut(1).links[1].recv_checksum = 0xAAAA;
        ledger.node_mut(1).links[0].send_checksum = 0xBBBB;
        ledger.node_mut(0).links[1].recv_checksum = 0xBEEF; // mismatch
        ledger.finalize(&shape);
        assert_eq!(ledger.nodes[0].links[0].checksum_ok, Some(true));
        assert_eq!(ledger.nodes[1].links[0].checksum_ok, Some(false));
        assert_eq!(
            ledger.nodes[0].links[2].checksum_ok, None,
            "unwired axis stays None"
        );
        assert!(!ledger.all_checksums_ok());
        assert_eq!(ledger.unhealthy_nodes(), vec![1]);
    }

    #[test]
    fn fingerprint_ignores_resends_but_sees_everything_else() {
        let mut a = HealthLedger::new(2);
        a.node_mut(0).links[0].sent_words = 100;
        a.node_mut(0).links[0].injected = 3;
        let mut b = a.clone();
        b.node_mut(1).links[5].resends = 40;
        b.node_mut(0).links[0].rejects = 2;
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "resends/rejects are scheduling noise"
        );
        b.node_mut(0).links[0].injected = 4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.node_mut(1).liveness = Liveness::Wedged;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn export_metrics_is_idempotent_and_sparse() {
        let mut ledger = HealthLedger::new(2);
        ledger.node_mut(0).links[0].sent_words = 10;
        ledger.node_mut(0).links[0].resends = 3;
        ledger.node_mut(1).liveness = Liveness::Wedged;
        ledger.node_mut(1).mem_flips = 2;
        ledger.node_mut(1).ecc_corrected = 2;
        let mut reg = MetricsRegistry::new();
        ledger.export_metrics(&mut reg);
        let once = reg.clone();
        ledger.export_metrics(&mut reg); // re-ingest must not double-count
        assert_eq!(reg, once);
        let l0 = [("node", "0".to_string()), ("link", "0".to_string())];
        assert_eq!(reg.gauge("scu_link_resends", &l0), Some(3.0));
        assert_eq!(
            reg.gauge("node_liveness", &[("node", "1".to_string())]),
            Some(2.0)
        );
        assert_eq!(
            reg.gauge("node_mem_flips", &[("node", "1".to_string())]),
            Some(2.0)
        );
        assert_eq!(
            reg.gauge("node_ecc_corrected", &[("node", "1".to_string())]),
            Some(2.0)
        );
        assert_eq!(reg.gauge("machine_ecc_corrected", &[]), Some(2.0));
        assert_eq!(reg.gauge("machine_machine_checks", &[]), Some(0.0));
        assert_eq!(reg.gauge("machine_total_resends", &[]), Some(3.0));
        assert_eq!(reg.gauge("machine_unhealthy_nodes", &[]), Some(1.0));
        // Idle wires are skipped: only node 0 link 0 has scu_link_ series.
        let l5 = [("node", "1".to_string()), ("link", "5".to_string())];
        assert_eq!(reg.gauge("scu_link_sent_words", &l5), None);
    }

    #[test]
    fn rollups() {
        let mut ledger = HealthLedger::new(3);
        ledger.node_mut(0).links[0].resends = 2;
        ledger.node_mut(2).links[7].resends = 5;
        ledger.node_mut(1).links[3].dead = true;
        ledger.node_mut(2).links[7].injected = 9;
        // A corrected soft error is NOT a casualty; a machine check is.
        ledger.node_mut(2).mem_flips = 1;
        ledger.node_mut(2).ecc_corrected = 1;
        assert_eq!(ledger.total_resends(), 7);
        assert_eq!(ledger.total_injected(), 9);
        assert_eq!(ledger.total_ecc_corrected(), 1);
        assert_eq!(ledger.dead_links(), vec![(1, 3)]);
        assert_eq!(ledger.unhealthy_nodes(), vec![1]);
        ledger.node_mut(2).machine_checks = 1;
        assert_eq!(ledger.unhealthy_nodes(), vec![1, 2]);
        assert_eq!(ledger.total_machine_checks(), 1);
    }

    #[test]
    fn corrected_errors_are_not_culprit_evidence_but_machine_checks_are() {
        let mut ledger = HealthLedger::new(4);
        ledger.node_mut(1).mem_flips = 3;
        ledger.node_mut(1).ecc_corrected = 3;
        assert!(ledger.culprit_nodes().is_empty());
        assert!(ledger.unhealthy_nodes().is_empty());
        ledger.node_mut(2).mem_flips = 2;
        ledger.node_mut(2).machine_checks = 1;
        assert_eq!(ledger.culprit_nodes(), vec![2]);
        assert_eq!(ledger.unhealthy_nodes(), vec![2]);
    }

    #[test]
    fn block_counters_export_and_fingerprint() {
        let mut ledger = HealthLedger::new(2);
        ledger.node_mut(0).links[2].block_rejects = 1;
        ledger.node_mut(0).links[2].block_resends = 1;
        // Block activity alone makes the wire active in the export …
        let mut reg = MetricsRegistry::new();
        ledger.export_metrics(&mut reg);
        let l = [("node", "0".to_string()), ("link", "2".to_string())];
        assert_eq!(reg.gauge("scu_link_block_rejects", &l), Some(1.0));
        assert_eq!(reg.gauge("scu_link_block_resends", &l), Some(1.0));
        assert_eq!(reg.gauge("machine_block_rejects", &[]), Some(1.0));
        // … a caught-and-healed block does not condemn anyone …
        assert!(ledger.unhealthy_nodes().is_empty());
        // … and the counters are deterministic, so the fingerprint sees
        // them.
        let mut clean = ledger.clone();
        clean.node_mut(0).links[2].block_rejects = 0;
        assert_ne!(ledger.fingerprint(), clean.fingerprint());
    }

    #[test]
    fn culprits_exclude_collateral_damage() {
        // The dead-wire-in-a-collective picture: node 1 owns the broken
        // hardware; every node wedged waiting on the stalled global sum
        // and half the checksum pairings broke. Only node 1 is a culprit.
        let mut ledger = HealthLedger::new(4);
        for n in 0..4 {
            ledger.node_mut(n).liveness = Liveness::Wedged;
        }
        ledger.node_mut(1).links[2].dead = true;
        ledger.node_mut(3).links[0].checksum_ok = Some(false);
        assert_eq!(ledger.unhealthy_nodes(), vec![0, 1, 2, 3]);
        assert_eq!(ledger.culprit_nodes(), vec![1]);
    }

    #[test]
    fn retry_exhaustion_is_hardware_evidence() {
        let mut ledger = HealthLedger::new(3);
        ledger.node_mut(2).links[4].retry_exhausted = true;
        ledger.node_mut(2).links[4].backoff_waits = 77;
        ledger.node_mut(0).liveness = Liveness::Crashed { iteration: 1 };
        assert_eq!(ledger.unhealthy_nodes(), vec![0, 2]);
        assert_eq!(ledger.culprit_nodes(), vec![0, 2]);
        // Exported sparsely, and excluded from the fingerprint.
        let mut reg = MetricsRegistry::new();
        ledger.export_metrics(&mut reg);
        let l = [("node", "2".to_string()), ("link", "4".to_string())];
        assert_eq!(reg.gauge("scu_link_retry_exhausted", &l), Some(1.0));
        assert_eq!(reg.gauge("scu_link_backoff_waits", &l), Some(77.0));
        let mut bare = ledger.clone();
        bare.node_mut(2).links[4].retry_exhausted = false;
        bare.node_mut(2).links[4].backoff_waits = 0;
        assert_eq!(ledger.fingerprint(), bare.fingerprint());
    }
}
