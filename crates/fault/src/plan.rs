//! The declarative fault schedule: what breaks, where, and when.

use serde::{Deserialize, Serialize};

/// Which node an event strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSelect {
    /// A fixed logical node rank.
    Node(u32),
    /// Drawn from the plan's seed when the plan is compiled.
    Random,
}

/// Which of a node's 12 wire directions an event strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSelect {
    /// A fixed link index (`Direction::link_index`, 0..12).
    Link(usize),
    /// Drawn from the plan's seed among the machine's wired links.
    Random,
}

/// The failure mode of one scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip `burst` adjacent bits starting at `first_bit` of the frame
    /// carrying data word `seq`, on its first transmission.
    BitFlip {
        /// Data sequence number of the corrupted word.
        seq: u64,
        /// First flipped bit (taken modulo the frame's wire bits).
        first_bit: usize,
        /// Number of adjacent bits flipped (1 = a single-bit error).
        burst: usize,
    },
    /// Corrupt each fresh data word with probability `rate` (one random
    /// bit per corrupted word) — a sustained per-word bit-error rate.
    BitErrorRate {
        /// Per-word corruption probability.
        rate: f64,
    },
    /// The link withholds its traffic for `cycles` extra at `iteration`
    /// (observed by the timing engine).
    Stall {
        /// Iteration the stall strikes.
        iteration: usize,
        /// Extra cycles the link's face transfer takes.
        cycles: u64,
    },
    /// The wire drops every frame from data word `from_seq` on, forever.
    DeadLink {
        /// First dropped data sequence number (0 = dead from the start).
        from_seq: u64,
    },
    /// A broken transmitter: every data frame leaving on this wire —
    /// resends included — arrives corrupt, from data word `from_seq` on.
    /// Unlike [`FaultKind::BitErrorRate`], the go-back-N resend cannot
    /// heal this; only a bounded retry budget stops the storm.
    StuckLink {
        /// First corrupted data sequence number (0 = stuck from the
        /// start).
        from_seq: u64,
    },
    /// The node computes for `cycles` extra — a memory refresh, an
    /// interrupt, a slow part (observed by the timing engine).
    NodePause {
        /// Iteration the pause strikes (`None` = every iteration).
        iteration: Option<usize>,
        /// Extra compute cycles.
        cycles: u64,
    },
    /// The node goes dark at `iteration`: nothing more leaves any of its
    /// wires, and the timing engine sees it stop.
    NodeCrash {
        /// Iteration the crash strikes.
        iteration: usize,
    },
    /// Flip `bit` of the 64-bit word at byte address `addr` in the node's
    /// EDRAM/DDR before the run starts — a *correctable* memory soft
    /// error: the SEC-DED code fixes it on the next read or scrub.
    MemBitFlip {
        /// Byte address of the afflicted word.
        addr: u64,
        /// Bit within the word (0..64).
        bit: u32,
    },
    /// Flip two distinct bits of the *same* word — an *uncorrectable*
    /// memory soft error. SEC-DED detects it (nonzero syndrome, even
    /// overall parity) but cannot fix it: the node latches a machine check
    /// and the health machinery treats it like a casualty.
    MemDoubleFlip {
        /// Byte address of the afflicted word.
        addr: u64,
        /// First flipped bit (0..64).
        bit: u32,
        /// Second flipped bit (0..64, distinct from `bit`).
        bit2: u32,
    },
    /// A multi-bit burst inside one data frame's *payload*, engineered to
    /// evade the per-frame parity: `2 * pairs` flips all land in the same
    /// even/odd parity class (positions spaced 2 apart), so both class
    /// parities are flipped an even number of times and the frame decodes
    /// clean — with a wrong word. Only the end-to-end DMA block checksum
    /// catches it. Applied to the first transmission only.
    PayloadBurst {
        /// Data sequence number of the corrupted word.
        seq: u64,
        /// First flipped payload bit (taken modulo 64).
        first_bit: usize,
        /// Number of *pairs* of same-class flips (1..=16; 2·pairs bits).
        pairs: usize,
    },
}

/// One scheduled fault: a failure mode aimed at a node and wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Target node.
    pub node: NodeSelect,
    /// Target wire direction (ignored by node-scoped kinds).
    pub link: LinkSelect,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A single-bit flip of data word `seq` leaving `node` on `link`.
    pub fn bit_flip(node: u32, link: usize, seq: u64, bit: usize) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::BitFlip {
                seq,
                first_bit: bit,
                burst: 1,
            },
        }
    }

    /// A burst of `burst` adjacent flipped bits in one frame.
    pub fn burst(node: u32, link: usize, seq: u64, first_bit: usize, burst: usize) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::BitFlip {
                seq,
                first_bit,
                burst,
            },
        }
    }

    /// A sustained per-word bit-error rate on one wire.
    pub fn bit_error_rate(node: u32, link: usize, rate: f64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::BitErrorRate { rate },
        }
    }

    /// A sustained bit-error rate on a wire drawn from the seed.
    pub fn random_bit_error_rate(rate: f64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Random,
            link: LinkSelect::Random,
            kind: FaultKind::BitErrorRate { rate },
        }
    }

    /// A one-iteration link stall.
    pub fn stall(node: u32, link: usize, iteration: usize, cycles: u64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::Stall { iteration, cycles },
        }
    }

    /// A permanently dead wire from data word `from_seq` on.
    pub fn dead_link(node: u32, link: usize, from_seq: u64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::DeadLink { from_seq },
        }
    }

    /// A broken transmitter corrupting every frame from `from_seq` on.
    pub fn stuck_link(node: u32, link: usize, from_seq: u64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::StuckLink { from_seq },
        }
    }

    /// A node pause (`iteration = None` slows the node every iteration).
    pub fn node_pause(node: u32, iteration: Option<usize>, cycles: u64) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(0),
            kind: FaultKind::NodePause { iteration, cycles },
        }
    }

    /// A node crash at `iteration`.
    pub fn node_crash(node: u32, iteration: usize) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(0),
            kind: FaultKind::NodeCrash { iteration },
        }
    }

    /// A correctable (single-bit) memory soft error in `node`'s address
    /// space.
    pub fn mem_bit_flip(node: u32, addr: u64, bit: u32) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(0),
            kind: FaultKind::MemBitFlip { addr, bit },
        }
    }

    /// An uncorrectable (double-bit) memory soft error: both flips strike
    /// the same word, defeating SEC-DED correction.
    pub fn mem_double_flip(node: u32, addr: u64, bit: u32, bit2: u32) -> FaultEvent {
        assert_ne!(bit, bit2, "a double flip needs two distinct bits");
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(0),
            kind: FaultKind::MemDoubleFlip { addr, bit, bit2 },
        }
    }

    /// A parity-evading payload burst in the frame carrying data word
    /// `seq` on `node`'s `link`.
    pub fn payload_burst(
        node: u32,
        link: usize,
        seq: u64,
        first_bit: usize,
        pairs: usize,
    ) -> FaultEvent {
        FaultEvent {
            node: NodeSelect::Node(node),
            link: LinkSelect::Link(link),
            kind: FaultKind::PayloadBurst {
                seq,
                first_bit,
                pairs,
            },
        }
    }
}

/// A seeded, declarative schedule of faults.
///
/// The plan is pure data; nothing random happens until it is compiled
/// into a [`crate::FaultClock`] against a concrete machine, at which point
/// every `Random` target is resolved from `seed`. Two plans with the same
/// seed and events always produce the same injected fault stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every random draw the plan implies.
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Add an event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new(7)
            .with_event(FaultEvent::bit_flip(1, 0, 2, 30))
            .with_event(FaultEvent::dead_link(3, 1, 0));
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
