//! Failure classification: from raw health evidence to a scheduling verdict.
//!
//! When a managed job dies mid-run, the autonomic layer (the scheduler's
//! detect-and-requeue loop) needs one deterministic word for *why* — the
//! class drives the retry charge, the hold-off, and the placement
//! conviction. The evidence is the same [`HealthLedger`] the host's
//! diagnostics sweep reads out; [`classify_ledger`] folds it with a fixed
//! precedence so the same ledger always yields the same class, whatever
//! order the counters were written in.
//!
//! Two classes have no ledger evidence at all and are charged directly by
//! the layer that observed them: [`FailureClass::Storage`] (the durable
//! checkpoint store errored mid-park) and [`FailureClass::HostRestart`]
//! (the qdaemon died under the job).

use crate::health::{HealthLedger, Liveness};
use crate::plan::FaultKind;
use serde::{Deserialize, Serialize};

/// Why a managed job stopped making progress.
///
/// Ordered by evidence precedence: when a ledger shows several kinds of
/// damage at once (a dead wire wedges the whole partition and breaks
/// checksum pairings machine-wide), [`classify_ledger`] charges the most
/// specific hardware evidence, top first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureClass {
    /// A node latched an uncorrectable memory error (machine check).
    MachineCheck,
    /// A node went dark mid-run (scheduled or real crash).
    NodeCrash,
    /// A wire died or its send unit exhausted the retry budget.
    DeadLink,
    /// A node never finished — wedged waiting on a silent wire, with no
    /// link-level conviction to pin it on.
    Wedge,
    /// An end-of-run checksum pairing disagreed: corruption slipped past
    /// the per-frame parity but was caught end-to-end.
    LinkCorruption,
    /// Errors happened and were healed in place (resends, corrected ECC);
    /// the machine finished healthy. Not a casualty class — a job only
    /// carries it if something *else* killed it.
    Transient,
    /// The durable checkpoint store failed while parking the job's blob.
    Storage,
    /// The qdaemon restarted under the job; its partition evaporated.
    HostRestart,
    /// No evidence at all.
    Unknown,
}

impl FailureClass {
    /// Stable lowercase label for metrics, `qjobs` columns and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailureClass::MachineCheck => "machine_check",
            FailureClass::NodeCrash => "node_crash",
            FailureClass::DeadLink => "dead_link",
            FailureClass::Wedge => "wedge",
            FailureClass::LinkCorruption => "link_corruption",
            FailureClass::Transient => "transient",
            FailureClass::Storage => "storage",
            FailureClass::HostRestart => "host_restart",
            FailureClass::Unknown => "unknown",
        }
    }

    /// Stable small integer for flight-recorder arguments.
    pub fn code(&self) -> u64 {
        match self {
            FailureClass::MachineCheck => 0,
            FailureClass::NodeCrash => 1,
            FailureClass::DeadLink => 2,
            FailureClass::Wedge => 3,
            FailureClass::LinkCorruption => 4,
            FailureClass::Transient => 5,
            FailureClass::Storage => 6,
            FailureClass::HostRestart => 7,
            FailureClass::Unknown => 8,
        }
    }

    /// Inverse of [`FailureClass::code`], for decoding persisted state.
    pub fn from_code(code: u64) -> Option<FailureClass> {
        Some(match code {
            0 => FailureClass::MachineCheck,
            1 => FailureClass::NodeCrash,
            2 => FailureClass::DeadLink,
            3 => FailureClass::Wedge,
            4 => FailureClass::LinkCorruption,
            5 => FailureClass::Transient,
            6 => FailureClass::Storage,
            7 => FailureClass::HostRestart,
            8 => FailureClass::Unknown,
            _ => return None,
        })
    }

    /// The class a fault of this kind is charged as when it proves fatal
    /// to the job running over it — the deterministic mapping the
    /// classification property test pins. Healed kinds (parity-caught
    /// flips, stalls, correctable memory errors) map to
    /// [`FailureClass::Transient`]: they leave counters, not casualties.
    pub fn from_fault_kind(kind: &FaultKind) -> FailureClass {
        match kind {
            FaultKind::BitFlip { .. } => FailureClass::Transient,
            FaultKind::BitErrorRate { .. } => FailureClass::Transient,
            FaultKind::Stall { .. } => FailureClass::Transient,
            FaultKind::NodePause { .. } => FailureClass::Transient,
            FaultKind::MemBitFlip { .. } => FailureClass::Transient,
            FaultKind::DeadLink { .. } => FailureClass::DeadLink,
            FaultKind::StuckLink { .. } => FailureClass::DeadLink,
            FaultKind::NodeCrash { .. } => FailureClass::NodeCrash,
            FaultKind::MemDoubleFlip { .. } => FailureClass::MachineCheck,
            FaultKind::PayloadBurst { .. } => FailureClass::LinkCorruption,
        }
    }
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classify a health ledger into one [`FailureClass`] with a fixed
/// evidence precedence:
///
/// 1. any latched machine check → [`FailureClass::MachineCheck`];
/// 2. any crashed node → [`FailureClass::NodeCrash`];
/// 3. any dead or retry-exhausted wire → [`FailureClass::DeadLink`];
/// 4. any wedged node (with no link conviction) → [`FailureClass::Wedge`];
/// 5. any failed checksum pairing or checked-block reject →
///    [`FailureClass::LinkCorruption`];
/// 6. healed traffic only (resends, injected corruption, corrected ECC) →
///    [`FailureClass::Transient`];
/// 7. a clean ledger → [`FailureClass::Unknown`].
///
/// The walk reads every node, so the verdict is independent of *which*
/// node carries the evidence — two ledgers with the same damage classify
/// identically regardless of node order.
pub fn classify_ledger(ledger: &HealthLedger) -> FailureClass {
    let mut crashed = false;
    let mut dead_link = false;
    let mut wedged = false;
    let mut checksum_bad = false;
    let mut healed = false;
    for n in &ledger.nodes {
        if n.machine_checks > 0 {
            return FailureClass::MachineCheck;
        }
        match n.liveness {
            Liveness::Crashed { .. } => crashed = true,
            Liveness::Wedged => wedged = true,
            Liveness::Alive => {}
        }
        for l in &n.links {
            dead_link |= l.dead || l.retry_exhausted;
            checksum_bad |= l.checksum_ok == Some(false) || l.block_rejects > 0;
            healed |= l.resends > 0 || l.injected > 0;
        }
        healed |= n.ecc_corrected > 0;
    }
    if crashed {
        FailureClass::NodeCrash
    } else if dead_link {
        FailureClass::DeadLink
    } else if wedged {
        FailureClass::Wedge
    } else if checksum_bad {
        FailureClass::LinkCorruption
    } else if healed {
        FailureClass::Transient
    } else {
        FailureClass::Unknown
    }
}

/// The placement conviction of a failed run: the nodes a requeued job
/// must avoid. This is the ledger's full unhealthy set — culprits *and*
/// collateral — because the requeue decision is about risk, not blame:
/// until the repair pipeline clears a region, a job that just died there
/// should not be put back on any node the failure touched.
pub fn convicted_nodes(ledger: &HealthLedger) -> Vec<u32> {
    ledger.unhealthy_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_charges_the_most_specific_evidence() {
        let mut ledger = HealthLedger::new(4);
        // A dead wire wedges a neighbour and breaks pairings — but the
        // verdict is the wire.
        ledger.node_mut(1).links[3].dead = true;
        ledger.node_mut(2).liveness = Liveness::Wedged;
        ledger.node_mut(0).links[0].checksum_ok = Some(false);
        assert_eq!(classify_ledger(&ledger), FailureClass::DeadLink);
        // A machine check outranks everything.
        ledger.node_mut(3).machine_checks = 1;
        assert_eq!(classify_ledger(&ledger), FailureClass::MachineCheck);
    }

    #[test]
    fn healed_traffic_is_transient_and_clean_is_unknown() {
        let mut ledger = HealthLedger::new(2);
        assert_eq!(classify_ledger(&ledger), FailureClass::Unknown);
        ledger.node_mut(0).links[5].resends = 3;
        ledger.node_mut(0).links[5].injected = 3;
        ledger.node_mut(1).ecc_corrected = 2;
        assert_eq!(classify_ledger(&ledger), FailureClass::Transient);
    }

    #[test]
    fn conviction_includes_collateral() {
        let mut ledger = HealthLedger::new(4);
        ledger.node_mut(1).links[3].dead = true;
        ledger.node_mut(2).liveness = Liveness::Wedged;
        assert_eq!(convicted_nodes(&ledger), vec![1, 2]);
    }

    #[test]
    fn labels_and_codes_are_distinct() {
        let all = [
            FailureClass::MachineCheck,
            FailureClass::NodeCrash,
            FailureClass::DeadLink,
            FailureClass::Wedge,
            FailureClass::LinkCorruption,
            FailureClass::Transient,
            FailureClass::Storage,
            FailureClass::HostRestart,
            FailureClass::Unknown,
        ];
        for (i, a) in all.iter().enumerate() {
            assert_eq!(FailureClass::from_code(a.code()), Some(*a));
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
                assert_ne!(a.code(), b.code());
            }
        }
        assert_eq!(FailureClass::from_code(99), None);
    }
}
