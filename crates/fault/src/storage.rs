//! Seeded, deterministic **storage** faults: the host-disk half of the
//! reliability story.
//!
//! The companion paper (hep-lat/0306023) splits reliability into the
//! machine half — SCU links, ECC, checksums, already covered by
//! [`crate::plan`] — and the *host-system* half: the RAID the nodes write
//! to over NFS (§3.2, §4). A week-long campaign's checkpoints live there,
//! and disks fail in their own ways: a server crash tears a write in
//! half, media rots a bit years (or seconds, here) after it was verified,
//! a reboot staled every open handle, a congested net drops a call, a
//! full disk refuses new bytes.
//!
//! Like the machine-side plans, a [`StorageFaultPlan`] is pure data;
//! compiling it into a [`StorageClock`] resolves every seeded draw up
//! front, so the injected fault stream is a pure function of the plan and
//! the server's operation counters — identical across runs.

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: the hash behind the seeded torn-write draw.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduled storage failure.
///
/// Write-scoped kinds ([`StorageFault::TornWrite`],
/// [`StorageFault::DiskFull`]) are keyed by the server's *write-call*
/// counter; the rest by its global operation counter. Both counters are
/// deterministic functions of the workload, so a plan aimed at "the 3rd
/// write" strikes the same byte stream every run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageFault {
    /// The server crashes partway through the `write_op`-th write call:
    /// only a prefix of the call's bytes reaches the platter, every open
    /// handle dies with the server, and the caller sees
    /// a server-crash error. `keep` is the number of bytes that land;
    /// `None` draws it from the plan's seed (strictly less than the
    /// call's length, so the write is genuinely torn).
    TornWrite {
        /// Index into the server's write-call counter.
        write_op: u64,
        /// Bytes of the call that land before the crash (`None` = seeded
        /// draw in `0..len`).
        keep: Option<usize>,
    },
    /// Transient I/O errors: operations `op..op + count` fail without
    /// touching any state (a congested network, a briefly-unreachable
    /// server). Retryable by construction.
    Transient {
        /// First failing operation index.
        op: u64,
        /// Number of consecutive failing operations.
        count: u64,
    },
    /// The disk reports itself full on the `write_op`-th write call,
    /// whatever the real capacity says — an operator filled the RAID
    /// with someone else's configurations.
    DiskFull {
        /// Index into the server's write-call counter.
        write_op: u64,
    },
    /// The server reboots between calls at operation `op`: every handle
    /// opened before it is stale afterwards. Stored bytes survive.
    StaleHandles {
        /// Operation index at which the reboot becomes visible.
        op: u64,
    },
    /// Bit rot at rest: from operation `from_op` on, the stored bytes of
    /// `path` carry one flipped bit (applied on next access, `byte`
    /// taken modulo the file length). The write that stored the bytes
    /// succeeded and verified clean — the decay happens on the platter.
    BitRot {
        /// Path of the afflicted file.
        path: String,
        /// Operation index from which the rot is manifest.
        from_op: u64,
        /// Afflicted byte offset (modulo file length at strike time).
        byte: u64,
        /// Bit within the byte (0..8).
        bit: u8,
    },
}

/// A seeded, declarative schedule of storage faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    /// Seed for every random draw the plan implies.
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<StorageFault>,
}

impl StorageFaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Add an event (builder style).
    pub fn with_event(mut self, event: StorageFault) -> StorageFaultPlan {
        self.events.push(event);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A [`StorageFaultPlan`] compiled for querying by the NFS server.
///
/// Every query is a pure function of `(plan, operation counter)`; the
/// clock itself is immutable. The *server* tracks which one-shot rot
/// events it has already applied — the clock only says what is due.
#[derive(Debug, Clone)]
pub struct StorageClock {
    seed: u64,
    torn: Vec<(u64, Option<usize>)>,
    transients: Vec<(u64, u64)>,
    full: Vec<u64>,
    stale: Vec<u64>,
    rot: Vec<(String, u64, u64, u8)>,
}

impl StorageClock {
    /// Compile a plan.
    pub fn resolve(plan: &StorageFaultPlan) -> StorageClock {
        let mut clock = StorageClock {
            seed: plan.seed,
            torn: Vec::new(),
            transients: Vec::new(),
            full: Vec::new(),
            stale: Vec::new(),
            rot: Vec::new(),
        };
        for event in &plan.events {
            match event {
                StorageFault::TornWrite { write_op, keep } => {
                    clock.torn.push((*write_op, *keep));
                }
                StorageFault::Transient { op, count } => {
                    clock.transients.push((*op, (*count).max(1)));
                }
                StorageFault::DiskFull { write_op } => clock.full.push(*write_op),
                StorageFault::StaleHandles { op } => clock.stale.push(*op),
                StorageFault::BitRot {
                    path,
                    from_op,
                    byte,
                    bit,
                } => {
                    clock.rot.push((path.clone(), *from_op, *byte, *bit % 8));
                }
            }
        }
        clock
    }

    /// If the `write_op`-th write call is torn: how many of its `len`
    /// bytes land before the server dies (always `< len` for `len > 0`).
    pub fn torn_keep(&self, write_op: u64, len: usize) -> Option<usize> {
        self.torn
            .iter()
            .find(|(w, _)| *w == write_op)
            .map(|(_, k)| {
                let keep = match k {
                    Some(keep) => *keep,
                    None => (mix(self.seed ^ write_op) % len.max(1) as u64) as usize,
                };
                keep.min(len.saturating_sub(1))
            })
    }

    /// Whether operation `op` fails transiently.
    pub fn transient(&self, op: u64) -> bool {
        self.transients
            .iter()
            .any(|(from, count)| op >= *from && op < from + count)
    }

    /// Whether the `write_op`-th write call sees a full disk.
    pub fn disk_full(&self, write_op: u64) -> bool {
        self.full.contains(&write_op)
    }

    /// Whether a server reboot staled the handles at exactly `op`.
    pub fn handles_stale_at(&self, op: u64) -> bool {
        self.stale.contains(&op)
    }

    /// Bit-rot events due against `path` by operation `op`: plan indices
    /// (for the server's applied-once bookkeeping) with `(byte, bit)`.
    pub fn rot_due(&self, path: &str, op: u64) -> Vec<(usize, u64, u8)> {
        self.rot
            .iter()
            .enumerate()
            .filter(|(_, (p, from, _, _))| p == path && op >= *from)
            .map(|(i, (_, _, byte, bit))| (i, *byte, *bit))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_compiles() {
        let plan = StorageFaultPlan::new(5)
            .with_event(StorageFault::TornWrite {
                write_op: 3,
                keep: Some(100),
            })
            .with_event(StorageFault::Transient { op: 7, count: 2 })
            .with_event(StorageFault::DiskFull { write_op: 9 })
            .with_event(StorageFault::StaleHandles { op: 11 })
            .with_event(StorageFault::BitRot {
                path: "/data/a".into(),
                from_op: 4,
                byte: 17,
                bit: 3,
            });
        assert!(!plan.is_empty());
        let clock = StorageClock::resolve(&plan);
        assert_eq!(clock.torn_keep(3, 500), Some(100));
        assert_eq!(clock.torn_keep(2, 500), None);
        assert!(clock.transient(7) && clock.transient(8) && !clock.transient(9));
        assert!(clock.disk_full(9) && !clock.disk_full(3));
        assert!(clock.handles_stale_at(11) && !clock.handles_stale_at(10));
        assert_eq!(clock.rot_due("/data/a", 3), vec![]);
        assert_eq!(clock.rot_due("/data/a", 4), vec![(0, 17, 3)]);
        assert_eq!(clock.rot_due("/data/b", 99), vec![]);
    }

    #[test]
    fn seeded_torn_keep_is_deterministic_and_strictly_torn() {
        let plan = StorageFaultPlan::new(42).with_event(StorageFault::TornWrite {
            write_op: 1,
            keep: None,
        });
        let a = StorageClock::resolve(&plan);
        let b = StorageClock::resolve(&plan);
        for len in [1usize, 2, 100, 65536] {
            let ka = a.torn_keep(1, len).unwrap();
            assert_eq!(Some(ka), b.torn_keep(1, len), "seeded draw must replay");
            assert!(ka < len, "a torn write must lose at least one byte");
        }
        // A different seed draws a different prefix (for any useful len).
        let other = StorageClock::resolve(&StorageFaultPlan::new(43).with_event(
            StorageFault::TornWrite {
                write_op: 1,
                keep: None,
            },
        ));
        assert_ne!(a.torn_keep(1, 65536), other.torn_keep(1, 65536));
    }

    #[test]
    fn explicit_keep_is_clamped_below_len() {
        let plan = StorageFaultPlan::new(0).with_event(StorageFault::TornWrite {
            write_op: 0,
            keep: Some(10_000),
        });
        let clock = StorageClock::resolve(&plan);
        assert_eq!(clock.torn_keep(0, 8), Some(7));
    }
}
