//! Deterministic fault injection and machine health for the QCDOC twin.
//!
//! The paper's reliability story has two halves. §2.2 describes the
//! *hardware* defences — low bit-error-rate serial links, distance-3 type
//! codes and payload parity with automatic resend, end-of-run link
//! checksums — and §4 reports the *operational* outcome: a five-day
//! 128-node run reproduced bit-identically with "no hardware errors on
//! the SCU links". To test the twin's protocol machinery the way the
//! designers tested the machine, we need to be able to *break* it on
//! purpose, reproducibly.
//!
//! This crate provides:
//!
//! * [`FaultPlan`] — a seeded, declarative schedule of faults: single and
//!   burst bit-flips on a link, a sustained bit-error rate, link stalls,
//!   permanently dead links, node pauses, node crashes, and memory soft
//!   errors, each targeted at a fixed node/wire or drawn at random;
//! * [`FaultClock`] — the plan compiled against a machine: every random
//!   choice is resolved up front from the seed, and all per-frame and
//!   per-iteration draws are *stateless* (keyed by node, link, and
//!   sequence number), so the injected fault stream is identical across
//!   runs and thread interleavings;
//! * [`NodeTap`] — a [`qcdoc_scu::WireTap`] implementation the execution
//!   engines install on the simulated wires;
//! * [`HealthLedger`] — the machine-wide aggregation of per-link resend
//!   counts, checksum verdicts, stall time, and node liveness that the
//!   host's Ethernet/JTAG diagnostics path reads out;
//! * [`StorageFaultPlan`] / [`StorageClock`] — the same seeded idiom for
//!   the *host-disk* half of reliability (hep-lat/0306023 §4): torn
//!   writes, bit rot at rest, stale handles, transient I/O errors, and
//!   disk-full, injected into the host's NFS server.

#![warn(missing_docs)]

pub mod classify;
pub mod clock;
pub mod health;
pub mod plan;
pub mod storage;

pub use classify::{classify_ledger, convicted_nodes, FailureClass};
pub use clock::{FaultClock, NodeTap};
pub use health::{HealthLedger, LinkHealth, Liveness, NodeHealth};
pub use plan::{FaultEvent, FaultKind, FaultPlan, LinkSelect, NodeSelect};
pub use storage::{StorageClock, StorageFault, StorageFaultPlan};
