//! Property-based tests: the link protocol delivers exactly-once in-order
//! under arbitrary corruption, and packets survive framing.

use proptest::prelude::*;
use qcdoc_asic::memory::NodeMemory;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::{RecvOutcome, RecvUnit, SendUnit};
use qcdoc_scu::packet::{Frame, Packet};

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        any::<u64>().prop_map(Packet::Normal),
        any::<u64>().prop_map(Packet::Supervisor),
        any::<u8>().prop_map(Packet::PartitionIrq),
        Just(Packet::Ack),
        Just(Packet::Idle),
        any::<u8>().prop_map(Packet::Train),
    ]
}

proptest! {
    #[test]
    fn frame_roundtrip(pkt in arb_packet()) {
        let f = Frame::encode(pkt);
        prop_assert_eq!(f.decode().unwrap(), pkt);
    }

    #[test]
    fn single_bit_corruption_never_misdelivers(pkt in arb_packet(), bit in 0usize..72) {
        let f0 = Frame::encode(pkt);
        let bits = f0.wire_bits() as usize;
        let bit = bit % bits;
        let mut f = f0.clone();
        f.corrupt_bit(bit);
        match f.decode() {
            // Detection is the requirement: a corrupted frame must never
            // decode to a *different* packet.
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, pkt, "bit {} re-typed the packet", bit),
        }
    }

    #[test]
    fn transfer_survives_random_corruption(
        words in prop::collection::vec(any::<u64>(), 1..40),
        corrupt in prop::collection::vec((0usize..200, 0usize..72), 0..6),
    ) {
        // Corrupt selected (frame_index, bit) pairs on the wire; the
        // go-back-N resend must still deliver every word exactly once, in
        // order, with matching checksums.
        let mut s = SendUnit::new();
        let mut r = RecvUnit::new();
        s.train();
        r.train();
        let mut mem = NodeMemory::with_128mb_dimm();
        r.arm(DmaDescriptor::contiguous(0x4000, words.len() as u32), &mut mem).unwrap();
        for &w in &words {
            s.enqueue_word(w);
        }
        let mut frame_no = 0usize;
        let mut guard = 0usize;
        loop {
            guard += 1;
            prop_assert!(guard < 100_000, "protocol livelock");
            let Some(mut wf) = s.next_frame().unwrap() else { break };
            if let Some(&(_, bit)) = corrupt.iter().find(|&&(idx, _)| idx == frame_no) {
                let wire_bits = wf.frame.wire_bits() as usize;
                wf.frame.corrupt_bit(bit % wire_bits);
            }
            frame_no += 1;
            match r.on_frame(&wf, &mut mem).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                other => prop_assert!(false, "unexpected outcome {:?}", other),
            }
        }
        prop_assert!(r.complete());
        prop_assert_eq!(mem.read_block(0x4000, words.len()).unwrap(), words);
        prop_assert_eq!(s.checksum(), r.checksum());
    }

    #[test]
    fn strided_descriptor_addresses_are_unique_and_ordered(
        start_word in 0u64..1000,
        block in 1u32..8,
        extra_stride in 0u32..8,
        blocks in 1u32..8,
    ) {
        let d = DmaDescriptor {
            start: start_word * 8,
            block_words: block,
            stride_words: block + extra_stride,
            blocks,
        };
        let addrs: Vec<u64> = d.addresses().collect();
        prop_assert_eq!(addrs.len() as u64, d.total_words());
        for w in addrs.windows(2) {
            prop_assert!(w[0] < w[1], "addresses must strictly increase");
        }
    }

    #[test]
    fn checksums_agree_on_any_clean_transfer(words in prop::collection::vec(any::<u64>(), 1..60)) {
        let mut s = SendUnit::new();
        let mut r = RecvUnit::new();
        s.train();
        r.train();
        let mut mem = NodeMemory::with_128mb_dimm();
        r.arm(DmaDescriptor::contiguous(0x8000, words.len() as u32), &mut mem).unwrap();
        for &w in &words {
            s.enqueue_word(w);
        }
        while let Some(wf) = s.next_frame().unwrap() {
            match r.on_frame(&wf, &mut mem).unwrap() {
                RecvOutcome::Accepted => s.on_ack(wf.seq),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert_eq!(s.checksum(), r.checksum());
        prop_assert_eq!(r.received_words(), words.len() as u64);
        prop_assert_eq!(r.rejects(), 0);
    }
}
