//! Link timing constants and closed-form transfer times.
//!
//! The physical link is bit-serial at the processor clock (§2.2). A framed
//! normal word is 72 bits (8-bit header + 64-bit payload), so at the 500 MHz
//! design clock:
//!
//! * one direction moves `64/72 × 500 Mbit/s ≈ 55.6 MB/s` of payload;
//! * all 24 channels together move `24 × 55.6 ≈ 1.33 GB/s` — the paper's
//!   "total bandwidth is 1.3 GBytes/second at 500 MHz";
//! * the 23 words after the first of a 24-word transfer take
//!   `23 × 72 × 2 ns = 3.3 µs` — the paper's figure exactly;
//! * the fixed memory-to-memory path (send DMA fetch, SCU pipeline,
//!   serialization of the first word, receiver synchronization, receive DMA
//!   store) totals 300 cycles = **600 ns** at 500 MHz.

use crate::packet::Packet;
use qcdoc_asic::clock::{Clock, Cycles};
use serde::{Deserialize, Serialize};

/// Wire bits of a framed normal data word.
pub const WORD_WIRE_BITS: u64 = 72;

/// Fixed per-transfer pipeline costs, in link cycles. The split is a model
/// choice; the sum (300 cycles) is calibrated to the paper's 600 ns at
/// 500 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTimingConfig {
    /// Send-side DMA fetch from local memory + SCU injection.
    pub send_dma_cycles: u64,
    /// Receiver bit synchronization and SCU pipeline.
    pub sync_cycles: u64,
    /// Receive-side DMA store to local memory.
    pub recv_dma_cycles: u64,
}

impl Default for LinkTimingConfig {
    fn default() -> Self {
        LinkTimingConfig {
            send_dma_cycles: 75,
            sync_cycles: 78,
            recv_dma_cycles: 75,
        }
    }
}

impl LinkTimingConfig {
    /// Total fixed path in cycles, excluding first-word serialization.
    pub fn fixed_cycles(&self) -> u64 {
        self.send_dma_cycles + self.sync_cycles + self.recv_dma_cycles
    }

    /// Memory-to-memory latency of a single-word nearest-neighbour
    /// transfer.
    pub fn first_word_cycles(&self) -> Cycles {
        Cycles(self.fixed_cycles() + WORD_WIRE_BITS)
    }

    /// Memory-to-memory time for a transfer of `words` 64-bit words: the
    /// first word pays the full path; later words stream behind it at the
    /// serialization rate.
    pub fn transfer_cycles(&self, words: u64) -> Cycles {
        if words == 0 {
            return Cycles::ZERO;
        }
        self.first_word_cycles() + Cycles((words - 1) * WORD_WIRE_BITS)
    }

    /// Transfer time in nanoseconds at a given clock.
    pub fn transfer_ns(&self, words: u64, clock: Clock) -> f64 {
        clock.cycles_to_ns(self.transfer_cycles(words))
    }

    /// Payload bandwidth of one uni-directional channel, bytes/second.
    pub fn channel_bandwidth(&self, clock: Clock) -> f64 {
        8.0 * clock.hz() as f64 / WORD_WIRE_BITS as f64
    }

    /// Aggregate payload bandwidth of all 24 channels, bytes/second.
    pub fn node_bandwidth(&self, clock: Clock) -> f64 {
        24.0 * self.channel_bandwidth(clock)
    }
}

/// Baseline: a commodity-cluster network of the era, the paper's explicit
/// comparison — "times of 5-10 µs just to begin a transfer when using
/// standard networks like Ethernet" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthernetBaseline {
    /// Start-up (software + NIC) latency in nanoseconds.
    pub startup_ns: f64,
    /// Payload bandwidth in bytes/second (gigabit Ethernet).
    pub bytes_per_sec: f64,
}

impl Default for EthernetBaseline {
    fn default() -> Self {
        // Mid-band of the paper's 5-10 us, gigabit wire rate.
        EthernetBaseline {
            startup_ns: 7_500.0,
            bytes_per_sec: 125.0e6,
        }
    }
}

impl EthernetBaseline {
    /// Transfer time in nanoseconds for `bytes` of payload.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.startup_ns + bytes as f64 / self.bytes_per_sec * 1e9
    }
}

/// Serialization cycles for an arbitrary packet.
pub fn wire_cycles(pkt: Packet) -> Cycles {
    Cycles(pkt.wire_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: LinkTimingConfig = LinkTimingConfig {
        send_dma_cycles: 75,
        sync_cycles: 78,
        recv_dma_cycles: 75,
    };

    #[test]
    fn first_word_is_600ns_at_design_clock() {
        let ns = Clock::DESIGN.cycles_to_ns(T.first_word_cycles());
        assert!((ns - 600.0).abs() < 1e-9, "first word latency {ns} ns");
    }

    #[test]
    fn twenty_four_word_transfer_matches_paper() {
        // §2.2: "for transfers as small as 24, 64 bit words … the latency of
        // 600 ns for the first word is still small compared to the 3.3 µs
        // time for the remaining 23 words."
        let total = T.transfer_ns(24, Clock::DESIGN);
        let first = Clock::DESIGN.cycles_to_ns(T.first_word_cycles());
        let tail = total - first;
        assert!((tail - 3_312.0).abs() < 1.0, "23-word tail {tail} ns");
    }

    #[test]
    fn aggregate_bandwidth_is_1_3_gbytes() {
        let bw = T.node_bandwidth(Clock::DESIGN);
        assert!((bw - 1.333e9).abs() < 0.01e9, "aggregate {bw} B/s");
    }

    #[test]
    fn qcdoc_beats_ethernet_on_small_transfers() {
        // The crossover the mesh was designed for: a 24-word (192-byte)
        // message takes ~3.9 us on QCDOC but the Ethernet baseline pays
        // 7.5 us before the first byte moves.
        let eth = EthernetBaseline::default();
        let qcdoc = T.transfer_ns(24, Clock::DESIGN);
        assert!(qcdoc < eth.transfer_ns(192));
        assert!(qcdoc < eth.startup_ns);
    }

    #[test]
    fn ethernet_wins_on_huge_transfers() {
        // Per-channel QCDOC bandwidth is ~55 MB/s; gigabit Ethernet is
        // 125 MB/s, so single-link bulk transfers eventually favour the
        // commodity network — latency, not bandwidth, is QCDOC's edge.
        let eth = EthernetBaseline::default();
        let words = 1_000_000u64;
        assert!(T.transfer_ns(words, Clock::DESIGN) > eth.transfer_ns(words * 8));
    }

    #[test]
    fn zero_word_transfer_is_free() {
        assert_eq!(T.transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn slower_clock_stretches_latency() {
        let at_360 = T.transfer_ns(1, Clock::SAFE_360);
        let at_500 = T.transfer_ns(1, Clock::DESIGN);
        assert!((at_360 / at_500 - 500.0 / 360.0).abs() < 1e-9);
    }

    #[test]
    fn wire_cycles_by_packet_kind() {
        assert_eq!(wire_cycles(Packet::Normal(0)), Cycles(72));
        assert_eq!(wire_cycles(Packet::PartitionIrq(0)), Cycles(16));
        assert_eq!(wire_cycles(Packet::Ack), Cycles(8));
    }
}
