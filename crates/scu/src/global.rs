//! Global sums and broadcasts: the SCU's pass-through global mode.
//!
//! §2.2 "Global operations": in global mode the SCU routes incoming link
//! data straight out to any combination of the other 11 links (and to local
//! memory), forwarding after only **8 bits** have arrived instead of
//! assembling the full 64-bit word — cutting per-hop latency by almost an
//! order of magnitude relative to store-and-forward. The global
//! functionality is **doubled**: two disjoint link sets can run concurrent
//! global operations, which lets a sum travel both ways round each ring and
//! halves the hop count, "effectively halving the size of the machine".
//!
//! A 4-D global sum is dimension-ordered: every node sends its word around
//! the x ring and accumulates the `Nx − 1` words it receives; then the same
//! along y, z, t. Total hops `Nx+Ny+Nz+Nt−4`, or `Nx/2+Ny/2+Nz/2+Nt/2` in
//! doubled mode — both formulas straight from the paper.
//!
//! [`dimension_ordered_sum`] is the *functional* algorithm with a fixed,
//! node-independent accumulation order, so every node computes bitwise the
//! same result — the property behind the machine-wide bit-reproducibility
//! of §4.

use qcdoc_asic::clock::Cycles;
use qcdoc_geometry::TorusShape;
use serde::{Deserialize, Serialize};

/// Hop count of a dimension-ordered global sum or broadcast over a logical
/// torus with the given extents.
///
/// Single mode: `Σ (N_i − 1)`. Doubled mode (two disjoint global link
/// sets, words travelling both ways round each ring): `Σ ⌈N_i / 2⌉`,
/// clamped below the single-mode count for tiny extents.
pub fn dimension_sum_hops(dims: &[usize], doubled: bool) -> usize {
    if doubled {
        dims.iter().map(|&n| (n / 2).max(usize::from(n > 1))).sum()
    } else {
        dims.iter().map(|&n| n - 1).sum()
    }
}

/// Timing parameters of the global pass-through path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalTimingConfig {
    /// SCU pipeline cycles added per hop on top of the forwarding
    /// granularity.
    pub hop_pipeline_cycles: u64,
    /// Bits that must arrive before a pass-through hop forwards (8 on the
    /// ASIC).
    pub passthrough_bits: u64,
}

impl Default for GlobalTimingConfig {
    fn default() -> Self {
        GlobalTimingConfig {
            hop_pipeline_cycles: 4,
            passthrough_bits: 8,
        }
    }
}

impl GlobalTimingConfig {
    /// Per-hop latency with pass-through forwarding.
    pub fn passthrough_hop_cycles(&self) -> u64 {
        self.passthrough_bits + self.hop_pipeline_cycles
    }

    /// Per-hop latency if each node assembled the whole 72-bit frame before
    /// forwarding (the ablation case the paper argues against).
    pub fn store_forward_hop_cycles(&self) -> u64 {
        crate::timing::WORD_WIRE_BITS + self.hop_pipeline_cycles
    }

    /// Latency of a global operation spanning `hops` hops: the leading
    /// edge pays the per-hop latency at each hop, and the tail of the
    /// 72-bit frame drains behind it at the serial rate.
    pub fn operation_cycles(&self, hops: usize, passthrough: bool) -> Cycles {
        let per_hop = if passthrough {
            self.passthrough_hop_cycles()
        } else {
            self.store_forward_hop_cycles()
        };
        let tail = if passthrough {
            crate::timing::WORD_WIRE_BITS - self.passthrough_bits
        } else {
            0
        };
        Cycles(hops as u64 * per_hop + tail)
    }

    /// Latency of a dimension-ordered global sum over `dims`.
    pub fn global_sum_cycles(&self, dims: &[usize], doubled: bool, passthrough: bool) -> Cycles {
        // Each axis is a separate pass: leading-edge latency per axis.
        let mut total = Cycles::ZERO;
        for &n in dims {
            let hops = dimension_sum_hops(&[n], doubled);
            total += self.operation_cycles(hops, passthrough);
        }
        total
    }
}

/// The dimension-ordered global sum as the hardware performs it, with the
/// canonical accumulation order (ascending coordinate along each axis).
///
/// `values[rank]` is node `rank`'s contribution. Returns the per-node
/// results, which are bitwise identical across nodes — see
/// [`all_nodes_agree`].
pub fn dimension_ordered_sum(shape: &TorusShape, values: &[f64]) -> Vec<f64> {
    assert_eq!(
        values.len(),
        shape.node_count(),
        "one contribution per node"
    );
    let mut current = values.to_vec();
    for axis in 0..shape.rank() {
        let mut next = vec![0.0f64; current.len()];
        for c in shape.coords() {
            // Accumulate over the whole ring through `c` along `axis`, in
            // ascending-coordinate order — the same order on every node of
            // the ring, which is what makes the result node-independent.
            let mut acc = 0.0f64;
            let mut probe = c;
            for x in 0..shape.extent(axis) {
                probe.set(axis, x);
                acc += current[shape.rank_of(probe).index()];
            }
            next[shape.rank_of(c).index()] = acc;
        }
        current = next;
    }
    current
}

/// Broadcast from `root`: every node ends with the root's word. Functional
/// model of the pass-through broadcast tree.
pub fn broadcast(shape: &TorusShape, values: &[u64], root: usize) -> Vec<u64> {
    assert_eq!(values.len(), shape.node_count());
    vec![values[root]; values.len()]
}

/// Whether all per-node results of a global operation agree bitwise.
pub fn all_nodes_agree(results: &[f64]) -> bool {
    results.windows(2).all(|w| w[0].to_bits() == w[1].to_bits())
}

/// The two disjoint link sets of the doubled global mode: along each axis,
/// set 0 uses the plus links and set 1 the minus links. Returns the link
/// indices (0..12) in each set for a machine of the given rank.
pub fn doubled_link_sets(rank: usize) -> (Vec<usize>, Vec<usize>) {
    let plus = (0..rank).map(|a| 2 * a).collect();
    let minus = (0..rank).map(|a| 2 * a + 1).collect();
    (plus, minus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hop_formulas() {
        // 4-D machine Nx=Ny=Nz=8, Nt=16: single mode Nx+Ny+Nz+Nt-4 = 36.
        assert_eq!(dimension_sum_hops(&[8, 8, 8, 16], false), 36);
        // Doubled mode: Nx/2+Ny/2+Nz/2+Nt/2 = 20.
        assert_eq!(dimension_sum_hops(&[8, 8, 8, 16], true), 20);
    }

    #[test]
    fn doubled_mode_halves_hops_for_even_extents() {
        for dims in [vec![4usize, 4, 4, 4], vec![8, 4, 4, 2, 2, 2]] {
            let single = dimension_sum_hops(&dims, false);
            let doubled = dimension_sum_hops(&dims, true);
            assert!(doubled < single);
            let expect: usize = dims.iter().map(|&n| n / 2).sum();
            assert_eq!(doubled, expect);
        }
    }

    #[test]
    fn passthrough_beats_store_and_forward() {
        let cfg = GlobalTimingConfig::default();
        assert!(cfg.passthrough_hop_cycles() < cfg.store_forward_hop_cycles());
        let hops = 36;
        let fast = cfg.operation_cycles(hops, true);
        let slow = cfg.operation_cycles(hops, false);
        assert!(
            fast.count() * 4 < slow.count(),
            "pass-through {fast} vs store-and-forward {slow}"
        );
    }

    #[test]
    fn sum_equals_total_on_every_node() {
        let shape = TorusShape::new(&[4, 2, 2]);
        let values: Vec<f64> = (0..16).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let result = dimension_ordered_sum(&shape, &values);
        let expect: f64 = values.iter().sum();
        // Dimension-ordered association may differ from linear summation
        // for general floats; for these values both are exact.
        for (i, &r) in result.iter().enumerate() {
            assert_eq!(r, expect, "node {i}");
        }
        assert!(all_nodes_agree(&result));
    }

    #[test]
    fn sum_is_bitwise_identical_across_nodes_for_rough_floats() {
        // Values chosen so rounding *does* occur: agreement must still be
        // bitwise because every node accumulates in the same order.
        let shape = TorusShape::new(&[4, 4]);
        let values: Vec<f64> = (0..16)
            .map(|i| 1.0e16 / (i as f64 + 1.0) + 1.0e-3 * i as f64)
            .collect();
        let result = dimension_ordered_sum(&shape, &values);
        assert!(all_nodes_agree(&result), "nodes disagree bitwise");
    }

    #[test]
    fn sum_is_deterministic_across_runs() {
        let shape = TorusShape::new(&[2, 4, 2]);
        let values: Vec<f64> = (0..16).map(|i| (i as f64).sin() * 1e10).collect();
        let a = dimension_ordered_sum(&shape, &values);
        let b = dimension_ordered_sum(&shape, &values);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn broadcast_replicates_root() {
        let shape = TorusShape::new(&[2, 2]);
        let values = vec![10, 20, 30, 40];
        assert_eq!(broadcast(&shape, &values, 2), vec![30, 30, 30, 30]);
    }

    #[test]
    fn doubled_link_sets_are_disjoint_and_cover_axes() {
        let (plus, minus) = doubled_link_sets(6);
        assert_eq!(plus.len(), 6);
        assert_eq!(minus.len(), 6);
        for p in &plus {
            assert!(!minus.contains(p));
        }
        let mut all: Vec<usize> = plus.iter().chain(minus.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn global_sum_latency_scales_with_machine_size() {
        let cfg = GlobalTimingConfig::default();
        let small = cfg.global_sum_cycles(&[4, 4, 4, 4], true, true);
        let big = cfg.global_sum_cycles(&[8, 8, 8, 16], true, true);
        assert!(big > small);
    }
}
