//! HSSL link bring-up: the bit-serial training protocol.
//!
//! §2.2: "When powered on and released from reset, these HSSL controllers
//! transmit a known byte sequence between the sender and receiver on the
//! link, establishing optimal times for sampling the incoming bit stream
//! and determining where the byte boundaries are. Once trained, the HSSL
//! controllers exchange so-called idle bytes when data transmission is not
//! being done."
//!
//! The model: the transmitter repeats a training byte whose eight
//! rotations are pairwise distinct, so a receiver watching the raw bit
//! stream can identify the byte boundary unambiguously from any phase.
//! After a run of consecutive aligned pattern bytes the receiver locks;
//! from then on it delivers framed bytes (idle bytes are consumed
//! silently).

use serde::{Deserialize, Serialize};

/// The training byte. Its eight rotations are pairwise distinct (see
/// tests), making the byte boundary unambiguous.
pub const TRAINING_PATTERN: u8 = 0b0001_1101;

/// The idle byte exchanged after training when no data flows.
pub const IDLE_BYTE: u8 = 0b0000_0000;

/// Consecutive aligned pattern bytes required to declare lock.
pub const LOCK_THRESHOLD: u32 = 4;

/// Receiver training state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HsslState {
    /// Searching the bit stream for the training pattern.
    Hunting,
    /// Locked to a byte boundary; delivering framed bytes.
    Locked,
}

/// The transmitter side: emits training bits until told to go live.
#[derive(Debug, Clone)]
pub struct HsslTransmitter {
    bit_index: u32,
}

impl Default for HsslTransmitter {
    fn default() -> Self {
        HsslTransmitter::new()
    }
}

impl HsslTransmitter {
    /// Fresh out of reset.
    pub fn new() -> HsslTransmitter {
        HsslTransmitter { bit_index: 0 }
    }

    /// Next training bit (MSB first).
    pub fn next_training_bit(&mut self) -> bool {
        let bit = (TRAINING_PATTERN >> (7 - (self.bit_index % 8))) & 1 == 1;
        self.bit_index += 1;
        bit
    }

    /// Serialize one byte of live data into bits (MSB first).
    pub fn serialize_byte(byte: u8) -> [bool; 8] {
        std::array::from_fn(|i| (byte >> (7 - i)) & 1 == 1)
    }
}

/// The receiver side: consumes a raw bit stream, finds the byte boundary,
/// then frames bytes.
#[derive(Debug, Clone)]
pub struct HsslReceiver {
    window: u8,
    bits_in_window: u32,
    consecutive: u32,
    state: HsslState,
    bits_to_lock: Option<u64>,
    bits_seen: u64,
}

impl Default for HsslReceiver {
    fn default() -> Self {
        HsslReceiver::new()
    }
}

impl HsslReceiver {
    /// Fresh out of reset, hunting.
    pub fn new() -> HsslReceiver {
        HsslReceiver {
            window: 0,
            bits_in_window: 0,
            consecutive: 0,
            state: HsslState::Hunting,
            bits_to_lock: None,
            bits_seen: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HsslState {
        self.state
    }

    /// How many raw bits it took to achieve lock.
    pub fn bits_to_lock(&self) -> Option<u64> {
        self.bits_to_lock
    }

    /// Feed one raw bit. While hunting, returns `None`; once locked,
    /// returns a byte every eighth bit (idle bytes filtered out).
    pub fn on_bit(&mut self, bit: bool) -> Option<u8> {
        self.bits_seen += 1;
        self.window = (self.window << 1) | u8::from(bit);
        match self.state {
            HsslState::Hunting => {
                // Slide bit by bit until the window holds the pattern,
                // then demand LOCK_THRESHOLD whole aligned repeats.
                self.bits_in_window += 1;
                if self.bits_in_window >= 8 && self.window == TRAINING_PATTERN {
                    self.consecutive += 1;
                    self.bits_in_window = 0; // aligned: count whole bytes now
                    if self.consecutive >= LOCK_THRESHOLD {
                        self.state = HsslState::Locked;
                        self.bits_to_lock = Some(self.bits_seen);
                        self.bits_in_window = 0;
                    }
                } else if self.bits_in_window >= 8 && self.bits_in_window.is_multiple_of(8) {
                    // A whole misaligned/corrupt byte: restart the run but
                    // keep sliding.
                    self.consecutive = 0;
                }
                None
            }
            HsslState::Locked => {
                self.bits_in_window += 1;
                if self.bits_in_window == 8 {
                    self.bits_in_window = 0;
                    let byte = self.window;
                    if byte == IDLE_BYTE || byte == TRAINING_PATTERN {
                        None // idles and residual training bytes are consumed
                    } else {
                        Some(byte)
                    }
                } else {
                    None
                }
            }
        }
    }
}

/// Bring up one direction of a link: run the transmitter's training
/// sequence through a wire with `phase_offset` bits of skew until the
/// receiver locks. Returns bits consumed.
pub fn train_link(phase_offset: u32) -> u64 {
    let mut tx = HsslTransmitter::new();
    let mut rx = HsslReceiver::new();
    // Skew: the receiver misses the first `phase_offset` bits.
    for _ in 0..phase_offset {
        let _ = tx.next_training_bit();
    }
    for _ in 0..10_000 {
        let bit = tx.next_training_bit();
        rx.on_bit(bit);
        if rx.state() == HsslState::Locked {
            return rx.bits_to_lock().unwrap();
        }
    }
    panic!("link failed to train");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_pattern_rotations_are_distinct() {
        let rotations: Vec<u8> = (0..8).map(|r| TRAINING_PATTERN.rotate_left(r)).collect();
        for (i, a) in rotations.iter().enumerate() {
            for b in &rotations[i + 1..] {
                assert_ne!(a, b, "pattern is rotation-ambiguous");
            }
        }
    }

    #[test]
    fn locks_at_any_phase_offset() {
        for phase in 0..8 {
            let bits = train_link(phase);
            assert!(
                bits <= 8 * (LOCK_THRESHOLD as u64 + 2),
                "phase {phase}: {bits} bits"
            );
        }
    }

    #[test]
    fn delivers_data_bytes_after_lock() {
        let mut tx = HsslTransmitter::new();
        let mut rx = HsslReceiver::new();
        while rx.state() != HsslState::Locked {
            rx.on_bit(tx.next_training_bit());
        }
        // Go live: send 0xA7 then an idle then 0x3C.
        let mut out = Vec::new();
        for byte in [0xA7u8, IDLE_BYTE, 0x3C] {
            for bit in HsslTransmitter::serialize_byte(byte) {
                if let Some(b) = rx.on_bit(bit) {
                    out.push(b);
                }
            }
        }
        assert_eq!(out, vec![0xA7, 0x3C], "idle byte must be consumed silently");
    }

    #[test]
    fn garbage_does_not_lock() {
        let mut rx = HsslReceiver::new();
        // A stuck-at-zero wire never locks.
        for _ in 0..10_000 {
            assert_eq!(rx.on_bit(false), None);
        }
        assert_eq!(rx.state(), HsslState::Hunting);
    }

    #[test]
    fn noise_then_training_still_locks() {
        let mut rx = HsslReceiver::new();
        // Some noise first (alternating bits), then the proper sequence.
        for i in 0..37 {
            rx.on_bit(i % 2 == 0);
        }
        let mut tx = HsslTransmitter::new();
        let mut locked = false;
        for _ in 0..10_000 {
            rx.on_bit(tx.next_training_bit());
            if rx.state() == HsslState::Locked {
                locked = true;
                break;
            }
        }
        assert!(locked);
    }

    #[test]
    fn serialize_byte_msb_first() {
        let bits = HsslTransmitter::serialize_byte(0b1000_0001);
        assert!(bits[0]);
        assert!(bits[7]);
        assert!(!bits[1] && !bits[6]);
    }
}
