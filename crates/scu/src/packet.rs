//! Packet and frame formats of the mesh link protocol.
//!
//! Every transmission on a link is a *frame*: an 8-bit header followed by a
//! payload. The header is a 6-bit type code — codes chosen with pairwise
//! Hamming distance ≥ 3 so "a single bit error will not cause a packet to
//! be misinterpreted" (§2.2) — plus two parity bits covering the payload
//! (even-position and odd-position bit parities). A parity mismatch at the
//! receiver triggers an automatic hardware resend.

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// 6-bit frame type codes. Pairwise Hamming distance ≥ 3 (see tests).
mod code {
    pub const IDLE: u8 = 0b000000;
    pub const NORMAL: u8 = 0b000111;
    pub const SUPERVISOR: u8 = 0b011001;
    pub const PART_IRQ: u8 = 0b101010;
    pub const ACK: u8 = 0b110100;
    pub const TRAIN: u8 = 0b111111;
}

/// A logical packet, before framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// A normal 64-bit data word moved by the DMA engines.
    Normal(u64),
    /// A supervisor word: lands in the neighbour SCU's register and raises a
    /// CPU interrupt. Takes priority over normal data.
    Supervisor(u64),
    /// An 8-bit partition-interrupt packet, flood-forwarded.
    PartitionIrq(u8),
    /// Acknowledgement of one received data packet.
    Ack,
    /// Idle byte exchanged when no data flows (post-training).
    Idle,
    /// Training sequence byte (HSSL link bring-up).
    Train(u8),
}

impl Packet {
    fn type_code(self) -> u8 {
        match self {
            Packet::Normal(_) => code::NORMAL,
            Packet::Supervisor(_) => code::SUPERVISOR,
            Packet::PartitionIrq(_) => code::PART_IRQ,
            Packet::Ack => code::ACK,
            Packet::Idle => code::IDLE,
            Packet::Train(_) => code::TRAIN,
        }
    }

    /// Payload length in bytes.
    pub fn payload_bytes(self) -> usize {
        match self {
            Packet::Normal(_) | Packet::Supervisor(_) => 8,
            Packet::PartitionIrq(_) | Packet::Train(_) => 1,
            Packet::Ack | Packet::Idle => 0,
        }
    }

    /// Size of the framed packet on the wire, in bits (8-bit header plus
    /// payload). A framed normal word is 72 bits — the origin of the
    /// paper's 1.3 GB/s aggregate bandwidth and 3.3 µs 23-word tail.
    pub fn wire_bits(self) -> u64 {
        8 + 8 * self.payload_bytes() as u64
    }

    /// Whether this packet class carries user data that enters the link
    /// checksum.
    pub fn checksummed(self) -> bool {
        matches!(self, Packet::Normal(_) | Packet::Supervisor(_))
    }
}

/// Parity of the even- and odd-position bits of a payload.
fn payload_parity(payload: &[u8]) -> u8 {
    let mut even = 0u8;
    let mut odd = 0u8;
    for &b in payload {
        // Even-position bits: mask 0b01010101; odd: 0b10101010.
        even ^= (b & 0x55).count_ones() as u8 & 1;
        odd ^= (b & 0xAA).count_ones() as u8 & 1;
    }
    (odd << 1) | even
}

/// A framed packet as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    bytes: Vec<u8>,
}

/// Frame decode failures — all of them trigger the hardware resend path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The 6-bit type code is not one of the defined codes (a corrupted
    /// header, caught by the distance-3 code set).
    BadTypeCode(u8),
    /// Payload parity mismatch.
    Parity,
    /// The frame is shorter than its type requires.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadTypeCode(c) => write!(f, "invalid type code {c:#08b}"),
            FrameError::Parity => write!(f, "payload parity mismatch"),
            FrameError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Frame a packet for transmission.
    pub fn encode(pkt: Packet) -> Frame {
        let mut payload = BytesMut::with_capacity(8);
        match pkt {
            Packet::Normal(w) | Packet::Supervisor(w) => payload.put_u64(w),
            Packet::PartitionIrq(b) | Packet::Train(b) => payload.put_u8(b),
            Packet::Ack | Packet::Idle => {}
        }
        let header = (pkt.type_code() << 2) | payload_parity(&payload);
        let mut bytes = Vec::with_capacity(1 + payload.len());
        bytes.push(header);
        bytes.extend_from_slice(&payload);
        Frame { bytes }
    }

    /// Decode and validate a received frame.
    pub fn decode(&self) -> Result<Packet, FrameError> {
        let header = *self.bytes.first().ok_or(FrameError::Truncated)?;
        let type_code = header >> 2;
        let parity = header & 0b11;
        let mut payload = &self.bytes[1..];
        let pkt = match type_code {
            code::NORMAL => Packet::Normal(read_u64(&mut payload)?),
            code::SUPERVISOR => Packet::Supervisor(read_u64(&mut payload)?),
            code::PART_IRQ => Packet::PartitionIrq(read_u8(&mut payload)?),
            code::ACK => Packet::Ack,
            code::IDLE => Packet::Idle,
            code::TRAIN => Packet::Train(read_u8(&mut payload)?),
            other => return Err(FrameError::BadTypeCode(other)),
        };
        if payload_parity(&self.bytes[1..]) != parity {
            return Err(FrameError::Parity);
        }
        Ok(pkt)
    }

    /// Size on the wire in bits.
    pub fn wire_bits(&self) -> u64 {
        8 * self.bytes.len() as u64
    }

    /// Raw frame bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Flip bit `bit` of the frame — the fault-injection hook used by the
    /// E7/E10 experiments to exercise the hardware resend path.
    pub fn corrupt_bit(&mut self, bit: usize) {
        let byte = bit / 8;
        assert!(byte < self.bytes.len(), "bit {bit} outside frame");
        self.bytes[byte] ^= 1 << (bit % 8);
    }
}

fn read_u64(buf: &mut &[u8]) -> Result<u64, FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::Truncated);
    }
    Ok(buf.get_u64())
}

fn read_u8(buf: &mut &[u8]) -> Result<u8, FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Truncated);
    }
    Ok(buf.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_codes() -> [u8; 6] {
        [
            code::IDLE,
            code::NORMAL,
            code::SUPERVISOR,
            code::PART_IRQ,
            code::ACK,
            code::TRAIN,
        ]
    }

    #[test]
    fn type_codes_have_hamming_distance_at_least_3() {
        let codes = all_codes();
        for (i, &a) in codes.iter().enumerate() {
            for &b in &codes[i + 1..] {
                let d = (a ^ b).count_ones();
                assert!(d >= 3, "codes {a:#08b} and {b:#08b} have distance {d}");
            }
        }
    }

    #[test]
    fn roundtrip_all_packet_kinds() {
        for pkt in [
            Packet::Normal(0x0123_4567_89AB_CDEF),
            Packet::Supervisor(u64::MAX),
            Packet::PartitionIrq(0x5A),
            Packet::Ack,
            Packet::Idle,
            Packet::Train(0xA5),
        ] {
            let f = Frame::encode(pkt);
            assert_eq!(f.decode().unwrap(), pkt, "{pkt:?}");
        }
    }

    #[test]
    fn normal_frame_is_72_bits() {
        // 8-bit header + 64-bit word: the unit behind 1.3 GB/s and 3.3 us.
        assert_eq!(Packet::Normal(0).wire_bits(), 72);
        assert_eq!(Frame::encode(Packet::Normal(7)).wire_bits(), 72);
    }

    #[test]
    fn single_payload_bit_error_is_detected() {
        // Any single-bit corruption of the payload flips exactly one of the
        // two parity classes.
        let f0 = Frame::encode(Packet::Normal(0xDEAD_BEEF_0BAD_F00D));
        for bit in 8..72 {
            let mut f = f0.clone();
            f.corrupt_bit(bit);
            assert!(
                f.decode().is_err(),
                "payload bit {bit} corruption undetected"
            );
        }
    }

    #[test]
    fn single_header_type_bit_error_is_detected() {
        // Corrupting any of the 6 type-code bits yields an invalid code
        // (distance >= 3), so the packet cannot be re-typed.
        let f0 = Frame::encode(Packet::Supervisor(42));
        for bit in 2..8 {
            let mut f = f0.clone();
            f.corrupt_bit(bit);
            match f.decode() {
                Err(_) => {}
                Ok(pkt) => panic!("header bit {bit} corruption decoded as {pkt:?}"),
            }
        }
    }

    #[test]
    fn header_parity_bit_error_is_detected() {
        let f0 = Frame::encode(Packet::Normal(123));
        for bit in 0..2 {
            let mut f = f0.clone();
            f.corrupt_bit(bit);
            assert_eq!(f.decode(), Err(FrameError::Parity));
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let f = Frame {
            bytes: vec![code::NORMAL << 2, 1, 2, 3],
        };
        assert_eq!(f.decode(), Err(FrameError::Truncated));
        let empty = Frame { bytes: vec![] };
        assert_eq!(empty.decode(), Err(FrameError::Truncated));
    }

    #[test]
    fn checksummed_classification() {
        assert!(Packet::Normal(1).checksummed());
        assert!(Packet::Supervisor(1).checksummed());
        assert!(!Packet::Ack.checksummed());
        assert!(!Packet::PartitionIrq(0).checksummed());
        assert!(!Packet::Idle.checksummed());
    }

    #[test]
    fn parity_covers_both_bit_classes() {
        assert_eq!(payload_parity(&[0b0000_0001]), 0b01);
        assert_eq!(payload_parity(&[0b0000_0010]), 0b10);
        assert_eq!(payload_parity(&[0b0000_0011]), 0b11);
        assert_eq!(payload_parity(&[0b0000_0101]), 0b00);
    }
}
