//! The per-node Serial Communications Unit: 12 send and 12 receive units,
//! the supervisor mailbox, and the partition-interrupt forwarding logic.
//!
//! Each uni-directional wire leaving the node multiplexes three things:
//! data frames produced by the send unit of that direction, and
//! acknowledgements / rejects for the data arriving on the paired opposite
//! wire. The functional execution engine (in `qcdoc-core`) moves
//! [`WireMsg`]s between paired SCUs; everything protocol-level lives here.

use crate::dma::{DmaDescriptor, DmaEngine, StoredInstructions};
use crate::link::{
    LinkChecksum, LinkError, RecvOutcome, RecvUnit, RetryPolicy, SendUnit, WireFrame,
};
use qcdoc_asic::memory::NodeMemory;
use std::collections::VecDeque;

/// Number of link directions per node.
pub const LINKS: usize = 12;

/// One message on a uni-directional wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// A framed data/supervisor/interrupt packet.
    Data(WireFrame),
    /// Acknowledgement of every data word up to and including `seq` on
    /// the reverse direction (cumulative, so a duplicate ack is a no-op).
    Ack(u64),
    /// Reject: ask the sender to rewind to sequence `seq`.
    Reject(u64),
    /// The checked block whose trailing checksum word carried sequence
    /// `seq` verified end to end; the sender may retire the transfer.
    BlockAck(u64),
    /// The checked block whose trailer carried sequence `seq` failed its
    /// end-to-end checksum (a burst evaded the per-frame parity): the
    /// sender must replay the whole block with fresh sequence numbers.
    BlockReject(u64),
}

/// Events the SCU raises to the node's CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScuEvent {
    /// A supervisor packet arrived (§2.2: "the arrival of the supervisor
    /// packet causes an interrupt to be received by the neighbor's CPU").
    SupervisorInterrupt(u64),
    /// A partition interrupt with these bits was newly observed.
    PartitionInterrupt(u8),
}

/// Sender-side state of one end-to-end checked block transfer.
#[derive(Debug, Clone, Copy)]
struct BlockSend {
    /// Descriptor to replay from on a [`WireMsg::BlockReject`].
    desc: DmaDescriptor,
    /// Send-unit end-of-run checksum at the block boundary, restored on a
    /// replay so the healed run's checksums agree with the receiver's.
    snapshot: LinkChecksum,
    /// Running checksum over the payload words fed so far this attempt.
    sum: LinkChecksum,
    /// Whether the trailing checksum word has been enqueued.
    trailer_fed: bool,
    /// Whether the receiver's block acknowledgement arrived.
    acked: bool,
}

/// The SCU of one node.
#[derive(Debug)]
pub struct Scu {
    send: Vec<SendUnit>,
    recv: Vec<RecvUnit>,
    send_dma: Vec<Option<DmaEngine>>,
    /// Checked-block state per direction (`None` = plain send).
    block_send: Vec<Option<BlockSend>>,
    /// Block verdict `(trailer_seq, ok)` owed to the reverse wire.
    outgoing_block: [Option<(u64, bool)>; LINKS],
    stored: StoredInstructions,
    supervisor_inbox: VecDeque<u64>,
    /// Bits of partition interrupts already seen (forwarded once each,
    /// §2.2: "its SCU forwards this packet on to all of its neighbors if
    /// the packet contains an interrupt which had not been previously
    /// sent").
    irq_seen: u8,
    outgoing_acks: [VecDeque<u64>; LINKS],
    outgoing_rejects: [Option<u64>; LINKS],
}

impl Default for Scu {
    fn default() -> Self {
        Scu::new()
    }
}

impl Scu {
    /// A fresh SCU with all links untrained.
    pub fn new() -> Scu {
        Scu {
            send: (0..LINKS).map(|_| SendUnit::new()).collect(),
            recv: (0..LINKS).map(|_| RecvUnit::new()).collect(),
            send_dma: (0..LINKS).map(|_| None).collect(),
            block_send: (0..LINKS).map(|_| None).collect(),
            outgoing_block: [None; LINKS],
            stored: StoredInstructions::default(),
            supervisor_inbox: VecDeque::new(),
            irq_seen: 0,
            outgoing_acks: std::array::from_fn(|_| VecDeque::new()),
            outgoing_rejects: [None; LINKS],
        }
    }

    /// Complete HSSL training on every link (run-kernel initialization).
    pub fn train_all(&mut self) {
        for s in &mut self.send {
            s.train();
        }
        for r in &mut self.recv {
            r.train();
        }
    }

    /// Access the send unit of a direction (for statistics/checksums).
    pub fn send_unit(&self, link: usize) -> &SendUnit {
        &self.send[link]
    }

    /// Mutable access to the send unit of a direction (retry policy,
    /// diagnostics).
    pub fn send_unit_mut(&mut self, link: usize) -> &mut SendUnit {
        &mut self.send[link]
    }

    /// Install one retry discipline on every send unit.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for s in &mut self.send {
            s.set_retry_policy(policy);
        }
    }

    /// Access the receive unit of a direction.
    pub fn recv_unit(&self, link: usize) -> &RecvUnit {
        &self.recv[link]
    }

    /// The stored-DMA-instruction bank.
    pub fn stored_instructions(&mut self) -> &mut StoredInstructions {
        &mut self.stored
    }

    /// Begin a send: the DMA engine walks `desc` and feeds the send unit.
    /// Words are fetched from memory by the DMA as the link drains them
    /// (zero-copy: the descriptor points straight at the physics arrays).
    pub fn start_send(&mut self, link: usize, desc: DmaDescriptor) {
        debug_assert!(
            self.send_dma[link].as_ref().is_none_or(|d| d.done()),
            "send DMA busy"
        );
        self.block_send[link] = None;
        self.send_dma[link] = Some(DmaEngine::start(desc));
    }

    /// Begin an end-to-end *checked* send: after the descriptor's payload
    /// the DMA feeds one trailing checksum word, and the transfer is only
    /// complete once the receiver's [`WireMsg::BlockAck`] confirms the
    /// whole block landed intact. A [`WireMsg::BlockReject`] replays the
    /// block with fresh sequence numbers, charged against the send unit's
    /// retry budget. The receive side must be armed with
    /// [`Scu::start_recv_checked`].
    pub fn start_send_checked(&mut self, link: usize, desc: DmaDescriptor) {
        self.start_send(link, desc);
        self.block_send[link] = Some(BlockSend {
            desc,
            snapshot: self.send[link].checksum(),
            sum: LinkChecksum::default(),
            trailer_fed: false,
            acked: false,
        });
    }

    /// Restart the stored send descriptor for `link` — the single-write
    /// restart of §3.3.
    pub fn restart_send(&mut self, link: usize) {
        let desc = self.stored.send(link).expect("no stored send descriptor");
        self.start_send(link, desc);
    }

    /// Arm a receive: drains any idle-receive words and releases their
    /// acknowledgements onto the reverse wire.
    pub fn start_recv(
        &mut self,
        link: usize,
        desc: DmaDescriptor,
        mem: &mut NodeMemory,
    ) -> Result<(), LinkError> {
        self.recv[link].arm(desc, mem)?;
        self.outgoing_acks[link].extend(self.recv[link].take_pending_acks());
        Ok(())
    }

    /// Arm a *checked* receive matching a [`Scu::start_send_checked`] on
    /// the neighbour: the payload is checksummed as it lands and verified
    /// against the sender's trailing checksum word before the block is
    /// retired. If the whole block (trailer included) was already parked
    /// in the idle-receive hold, the verdict is queued immediately.
    pub fn start_recv_checked(
        &mut self,
        link: usize,
        desc: DmaDescriptor,
        mem: &mut NodeMemory,
    ) -> Result<(), LinkError> {
        self.recv[link].arm_checked(desc, mem)?;
        self.outgoing_acks[link].extend(self.recv[link].take_pending_acks());
        if let Some(verdict) = self.recv[link].take_pending_block() {
            self.outgoing_block[link] = Some(verdict);
        }
        Ok(())
    }

    /// Restart the stored receive descriptor for `link`.
    pub fn restart_recv(&mut self, link: usize, mem: &mut NodeMemory) -> Result<(), LinkError> {
        let desc = self.stored.recv(link).expect("no stored recv descriptor");
        self.start_recv(link, desc, mem)
    }

    /// Send a supervisor word to the neighbour in direction `link`.
    pub fn send_supervisor(&mut self, link: usize, word: u64) {
        self.send[link].enqueue_supervisor(word);
    }

    /// Raise a partition interrupt originating at this node: mark it seen
    /// and forward on every link.
    pub fn raise_partition_irq(&mut self, bits: u8) {
        let new = bits & !self.irq_seen;
        if new == 0 {
            return;
        }
        self.irq_seen |= new;
        for s in &mut self.send {
            s.enqueue_irq(new);
        }
    }

    /// Partition-interrupt bits observed so far.
    pub fn partition_irq_state(&self) -> u8 {
        self.irq_seen
    }

    /// Clear partition-interrupt state (new global-clock epoch).
    pub fn clear_partition_irq(&mut self) {
        self.irq_seen = 0;
    }

    /// Pop the oldest supervisor word, if any.
    pub fn take_supervisor(&mut self) -> Option<u64> {
        self.supervisor_inbox.pop_front()
    }

    /// Produce the next message to transmit toward direction `link`.
    /// Control traffic (rejects, then acks) outranks data.
    pub fn tx_next(
        &mut self,
        link: usize,
        mem: &mut NodeMemory,
    ) -> Result<Option<WireMsg>, LinkError> {
        if let Some(seq) = self.outgoing_rejects[link].take() {
            return Ok(Some(WireMsg::Reject(seq)));
        }
        if let Some(seq) = self.outgoing_acks[link].pop_front() {
            return Ok(Some(WireMsg::Ack(seq)));
        }
        // Block verdicts go out after the trailer's own ack so the sender
        // drains its window before deciding to retire or replay the block.
        if let Some((seq, ok)) = self.outgoing_block[link].take() {
            return Ok(Some(if ok {
                WireMsg::BlockAck(seq)
            } else {
                WireMsg::BlockReject(seq)
            }));
        }
        // Feed the send unit from its DMA engine: stage exactly one word,
        // and only when it can go straight onto the wire (queue empty and
        // window not full) — the DMA fetches lazily as the link drains.
        if self.send[link].queue_empty() && self.send[link].window_len() < crate::link::WINDOW {
            if let Some(engine) = self.send_dma[link].as_mut() {
                if let Some(addr) = engine.peek() {
                    let word = mem
                        .read_word(addr)
                        .map_err(|e| LinkError::Memory(e.to_string()))?;
                    engine.next_address();
                    if let Some(bs) = &mut self.block_send[link] {
                        bs.sum.update(word);
                    }
                    self.send[link].enqueue_word(word);
                } else if let Some(bs) = &mut self.block_send[link] {
                    // Payload exhausted: a checked send appends its
                    // trailing checksum word exactly once per attempt.
                    if !bs.trailer_fed && !bs.acked {
                        bs.trailer_fed = true;
                        let trailer = bs.sum.value();
                        self.send[link].enqueue_word(trailer);
                    }
                }
            }
        }
        self.send[link].next_frame().map(|f| f.map(WireMsg::Data))
    }

    /// Whether this direction has anything left to transmit.
    pub fn tx_pending(&self, link: usize) -> bool {
        self.outgoing_rejects[link].is_some()
            || !self.outgoing_acks[link].is_empty()
            || self.outgoing_block[link].is_some()
            || !self.send[link].drained()
            || self.send_dma[link].as_ref().is_some_and(|d| !d.done())
            || self.block_send[link]
                .as_ref()
                .is_some_and(|b| !b.trailer_fed)
    }

    /// Handle a message arriving *from* direction `link`.
    pub fn rx(
        &mut self,
        link: usize,
        msg: WireMsg,
        mem: &mut NodeMemory,
    ) -> Result<Option<ScuEvent>, LinkError> {
        match msg {
            WireMsg::Ack(seq) => {
                self.send[link].on_ack(seq);
                Ok(None)
            }
            WireMsg::Reject(seq) => {
                self.send[link].on_reject(seq);
                Ok(None)
            }
            WireMsg::BlockAck(_) => {
                if let Some(bs) = &mut self.block_send[link] {
                    bs.acked = true;
                    self.send[link].block_progress();
                }
                Ok(None)
            }
            WireMsg::BlockReject(_) => {
                if let Some(bs) = &mut self.block_send[link] {
                    if !bs.acked {
                        // Whole-block replay: restore the end-of-run
                        // checksum to the block boundary, charge the retry
                        // budget, and (budget permitting) walk the
                        // descriptor again with fresh sequence numbers.
                        self.send[link].restore_checksum(bs.snapshot);
                        self.send[link].charge_block_retry();
                        if !self.send[link].retry_exhausted() {
                            bs.sum = LinkChecksum::default();
                            bs.trailer_fed = false;
                            self.send_dma[link] = Some(DmaEngine::start(bs.desc));
                        }
                    }
                }
                Ok(None)
            }
            WireMsg::Data(wf) => match self.recv[link].on_frame(&wf, mem)? {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => {
                    // Out-of-band frames (partition irqs ride seq u64::MAX)
                    // never enter the data window and must not be acked.
                    if wf.seq != u64::MAX {
                        self.outgoing_acks[link].push_back(wf.seq);
                    }
                    Ok(None)
                }
                RecvOutcome::Held => Ok(None),
                RecvOutcome::BlockOk => {
                    self.outgoing_acks[link].push_back(wf.seq);
                    self.outgoing_block[link] = Some((wf.seq, true));
                    Ok(None)
                }
                RecvOutcome::BlockCorrupt => {
                    self.outgoing_acks[link].push_back(wf.seq);
                    self.outgoing_block[link] = Some((wf.seq, false));
                    Ok(None)
                }
                RecvOutcome::Rejected { seq } => {
                    self.outgoing_rejects[link] = Some(seq);
                    Ok(None)
                }
                RecvOutcome::Supervisor(word) => {
                    self.outgoing_acks[link].push_back(wf.seq);
                    self.supervisor_inbox.push_back(word);
                    Ok(Some(ScuEvent::SupervisorInterrupt(word)))
                }
                RecvOutcome::PartitionIrq(bits) => {
                    let new = bits & !self.irq_seen;
                    if new == 0 {
                        return Ok(None);
                    }
                    self.irq_seen |= new;
                    // Forward to every link except the one it came from.
                    for (i, s) in self.send.iter_mut().enumerate() {
                        if i != link {
                            s.enqueue_irq(new);
                        }
                    }
                    Ok(Some(ScuEvent::PartitionInterrupt(new)))
                }
            },
        }
    }

    /// Whether the send side of `link` has delivered and acked everything
    /// (and, for a checked send, the block acknowledgement arrived).
    pub fn send_complete(&self, link: usize) -> bool {
        self.send[link].drained()
            && self.send_dma[link].as_ref().is_none_or(|d| d.done())
            && self.block_send[link].as_ref().is_none_or(|b| b.acked)
    }

    /// Whole-block replays performed on `link` (checked sends only).
    pub fn block_resends(&self, link: usize) -> u64 {
        self.send[link].block_replays()
    }

    /// Distribution of retry backoff delays across all 12 send units —
    /// the per-node series the flight/judge pipeline gates tail latency
    /// on. Empty on a clean wire.
    pub fn backoff_delay_histogram(&self) -> qcdoc_telemetry::Histogram {
        let mut merged = qcdoc_telemetry::Histogram::default();
        for unit in &self.send {
            merged.merge(unit.backoff_delays());
        }
        merged
    }

    /// Whether the armed receive of `link` has fully landed in memory.
    pub fn recv_complete(&self, link: usize) -> bool {
        self.recv[link].complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> (Scu, NodeMemory) {
        let mut s = Scu::new();
        s.train_all();
        (s, NodeMemory::with_128mb_dimm())
    }

    /// Shuttle messages between two SCUs over the paired directions
    /// `a_to_b` (on node A) and its reverse `b_to_a` (on node B) until both
    /// sides go quiet. Returns the number of wire messages moved.
    fn pump_pair(
        a: &mut Scu,
        am: &mut NodeMemory,
        b: &mut Scu,
        bm: &mut NodeMemory,
        a_dir: usize,
        b_dir: usize,
    ) -> usize {
        let mut moved = 0;
        loop {
            let mut progressed = false;
            if let Some(msg) = a.tx_next(a_dir, am).unwrap() {
                b.rx(b_dir, msg, bm).unwrap();
                moved += 1;
                progressed = true;
            }
            if let Some(msg) = b.tx_next(b_dir, bm).unwrap() {
                a.rx(a_dir, msg, am).unwrap();
                moved += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        moved
    }

    #[test]
    fn dma_to_dma_transfer() {
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x1000, &[11, 22, 33, 44]).unwrap();
        a.start_send(0, DmaDescriptor::contiguous(0x1000, 4));
        b.start_recv(1, DmaDescriptor::contiguous(0x2000, 4), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert!(a.send_complete(0));
        assert!(b.recv_complete(1));
        assert_eq!(bm.read_block(0x2000, 4).unwrap(), vec![11, 22, 33, 44]);
        assert_eq!(
            a.send_unit(0).checksum(),
            b.recv_unit(1).checksum(),
            "link checksums must agree at end of run"
        );
    }

    #[test]
    fn send_before_recv_is_fine_idle_receive() {
        // §2.2: "there need be no temporal ordering between software
        // issuing a send on one node and a receive on another."
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x0, &[1, 2, 3, 4, 5, 6]).unwrap();
        a.start_send(4, DmaDescriptor::contiguous(0x0, 6));
        // Pump without a receive armed: sender stalls after 3 held words.
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 4, 5);
        assert!(!a.send_complete(4));
        // Now the receiver posts its buffer; everything drains.
        b.start_recv(5, DmaDescriptor::contiguous(0x8000, 6), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 4, 5);
        assert!(a.send_complete(4));
        assert!(b.recv_complete(5));
        assert_eq!(bm.read_block(0x8000, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn strided_gather_scatter() {
        // Gather every other word on the sender, land contiguously on the
        // receiver — the lattice face-exchange pattern.
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        for i in 0..8u64 {
            am.write_word(0x100 + i * 8, 100 + i).unwrap();
        }
        let gather = DmaDescriptor {
            start: 0x100,
            block_words: 1,
            stride_words: 2,
            blocks: 4,
        };
        a.start_send(2, gather);
        b.start_recv(3, DmaDescriptor::contiguous(0x900, 4), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 2, 3);
        assert_eq!(bm.read_block(0x900, 4).unwrap(), vec![100, 102, 104, 106]);
    }

    #[test]
    fn supervisor_interrupt_delivery() {
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        a.send_supervisor(7, 0xCAFE);
        let mut event = None;
        while let Some(msg) = a.tx_next(7, &mut am).unwrap() {
            if let Some(e) = b.rx(6, msg, &mut bm).unwrap() {
                event = Some(e);
            }
            while let Some(back) = b.tx_next(6, &mut bm).unwrap() {
                a.rx(7, back, &mut am).unwrap();
            }
        }
        assert_eq!(event, Some(ScuEvent::SupervisorInterrupt(0xCAFE)));
        assert_eq!(b.take_supervisor(), Some(0xCAFE));
        assert_eq!(b.take_supervisor(), None);
    }

    #[test]
    fn partition_irq_forwards_once() {
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        a.raise_partition_irq(0b0000_0100);
        // Deliver on one wire; B should see the event once and mark it.
        let mut events = 0;
        while let Some(msg) = a.tx_next(0, &mut am).unwrap() {
            if b.rx(1, msg, &mut bm).unwrap().is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 1);
        assert_eq!(b.partition_irq_state(), 0b100);
        // B now forwards on all links except link 1 (where it came from).
        assert!(!b.tx_pending(1) || b.tx_pending(0));
        let mut fwd_dirs = 0;
        for d in 0..LINKS {
            if d == 1 {
                continue;
            }
            if b.tx_next(d, &mut bm).unwrap().is_some() {
                fwd_dirs += 1;
            }
        }
        assert_eq!(fwd_dirs, 11, "forward on all links except the arrival one");
        // A second identical interrupt is suppressed.
        a.raise_partition_irq(0b100);
        assert!(a.tx_next(0, &mut am).unwrap().is_none());
    }

    #[test]
    fn stored_instruction_restart_repeats_transfer() {
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        a.stored_instructions()
            .store_send(0, DmaDescriptor::contiguous(0x40, 2));
        b.stored_instructions()
            .store_recv(1, DmaDescriptor::contiguous(0x80, 2));
        for round in 0..3u64 {
            am.write_block(0x40, &[round * 10, round * 10 + 1]).unwrap();
            a.restart_send(0);
            b.restart_recv(1, &mut bm).unwrap();
            pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
            assert_eq!(
                bm.read_block(0x80, 2).unwrap(),
                vec![round * 10, round * 10 + 1],
                "round {round}"
            );
        }
    }

    #[test]
    fn tx_pending_tracks_all_traffic_classes() {
        let (mut a, mut am) = trained();
        assert!(!a.tx_pending(0), "fresh SCU is quiet");
        // Data pending via DMA.
        am.write_word(0x0, 1).unwrap();
        a.start_send(0, DmaDescriptor::contiguous(0x0, 1));
        assert!(a.tx_pending(0));
        // Drain it against an armed peer.
        let (mut b, mut bm) = trained();
        b.start_recv(1, DmaDescriptor::contiguous(0x100, 1), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert!(!a.tx_pending(0));
        // Supervisor word makes it pending again.
        a.send_supervisor(0, 5);
        assert!(a.tx_pending(0));
    }

    #[test]
    fn checked_transfer_clean_path_delivers_and_retires() {
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x1000, &[11, 22, 33, 44]).unwrap();
        a.start_send_checked(0, DmaDescriptor::contiguous(0x1000, 4));
        b.start_recv_checked(1, DmaDescriptor::contiguous(0x2000, 4), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert!(a.send_complete(0));
        assert!(b.recv_complete(1));
        assert_eq!(bm.read_block(0x2000, 4).unwrap(), vec![11, 22, 33, 44]);
        assert_eq!(a.send_unit(0).checksum(), b.recv_unit(1).checksum());
        // Exactly one extra word on the wire: the trailing checksum.
        assert_eq!(a.send_unit(0).sent_words(), 5);
        assert_eq!(b.recv_unit(1).received_words(), 5);
        assert_eq!(b.recv_unit(1).block_rejects(), 0);
        assert_eq!(a.block_resends(0), 0);
    }

    #[test]
    fn parity_evading_burst_is_caught_and_healed_by_block_checksum() {
        // The "after" counterpart of the link-level
        // `undetected_double_flip_is_caught_only_by_end_of_run_checksums`
        // test: the same two same-parity-class payload flips now trip the
        // end-to-end block checksum mid-run, the block replays, and the
        // right data lands — nothing silently wrong survives.
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x1000, &[1000, 2000, 3000, 4000]).unwrap();
        a.start_send_checked(0, DmaDescriptor::contiguous(0x1000, 4));
        b.start_recv_checked(1, DmaDescriptor::contiguous(0x2000, 4), &mut bm)
            .unwrap();
        let mut corrupted = false;
        loop {
            let mut progressed = false;
            if let Some(mut msg) = a.tx_next(0, &mut am).unwrap() {
                if let WireMsg::Data(wf) = &mut msg {
                    if !corrupted && wf.seq == 1 {
                        wf.frame.corrupt_bit(8);
                        wf.frame.corrupt_bit(10);
                        assert!(wf.frame.decode().is_ok(), "flips must evade parity");
                        corrupted = true;
                    }
                }
                b.rx(1, msg, &mut bm).unwrap();
                progressed = true;
            }
            if let Some(msg) = b.tx_next(1, &mut bm).unwrap() {
                a.rx(0, msg, &mut am).unwrap();
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert!(corrupted);
        assert!(a.send_complete(0));
        assert!(b.recv_complete(1));
        assert_eq!(
            bm.read_block(0x2000, 4).unwrap(),
            vec![1000, 2000, 3000, 4000]
        );
        assert_eq!(b.recv_unit(1).rejects(), 0, "frame parity never fired");
        assert_eq!(b.recv_unit(1).block_rejects(), 1);
        assert_eq!(a.block_resends(0), 1);
        assert_eq!(
            a.send_unit(0).checksum(),
            b.recv_unit(1).checksum(),
            "healed replay must leave end-of-run checksums agreeing"
        );
    }

    #[test]
    fn checked_block_smaller_than_hold_verifies_on_late_arm() {
        // A two-word block plus its trailer fits in the idle-receive hold,
        // so the whole checked block can arrive before the receive is
        // armed; the late arm must drain, verify, and retire it.
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x40, &[5, 6]).unwrap();
        a.start_send_checked(0, DmaDescriptor::contiguous(0x40, 2));
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert!(!a.send_complete(0), "no acks before the arm");
        b.start_recv_checked(1, DmaDescriptor::contiguous(0x80, 2), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert!(a.send_complete(0));
        assert!(b.recv_complete(1));
        assert_eq!(bm.read_block(0x80, 2).unwrap(), vec![5, 6]);
        assert_eq!(a.send_unit(0).checksum(), b.recv_unit(1).checksum());
        assert_eq!(b.recv_unit(1).block_rejects(), 0);
    }

    #[test]
    fn persistent_block_corruption_exhausts_the_retry_budget() {
        // A wire that corrupts every data frame with a parity-evading flip
        // pair defeats the frame-level defence entirely (every word is
        // individually acked, so the go-back-N budget keeps resetting).
        // The block-level retry count must bound the replay storm and kill
        // the link deterministically.
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        a.set_retry_policy(RetryPolicy::bounded(2, 0, 0));
        am.write_block(0x0, &[7, 8, 9]).unwrap();
        a.start_send_checked(0, DmaDescriptor::contiguous(0x0, 3));
        b.start_recv_checked(1, DmaDescriptor::contiguous(0x100, 3), &mut bm)
            .unwrap();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 1000, "replay storm must be bounded");
            let mut progressed = false;
            if let Some(mut msg) = a.tx_next(0, &mut am).unwrap() {
                if let WireMsg::Data(wf) = &mut msg {
                    wf.frame.corrupt_bit(8);
                    wf.frame.corrupt_bit(10);
                }
                b.rx(1, msg, &mut bm).unwrap();
                progressed = true;
            }
            if let Some(msg) = b.tx_next(1, &mut bm).unwrap() {
                a.rx(0, msg, &mut am).unwrap();
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert!(a.send_unit(0).retry_exhausted());
        assert_eq!(a.send_unit(0).verdict(), crate::link::LinkVerdict::Dead);
        assert!(!a.send_complete(0), "the block was never delivered intact");
        // Budget 2: two replays were allowed, the third reject kills.
        assert_eq!(a.block_resends(0), 2);
        assert_eq!(b.recv_unit(1).block_rejects(), 3);
    }

    #[test]
    fn bidirectional_concurrent_transfers() {
        // QCDOC supports concurrent sends and receives to each neighbour
        // (§2.2): run both directions of the same axis at once.
        let (mut a, mut am) = trained();
        let (mut b, mut bm) = trained();
        am.write_block(0x0, &[1, 2, 3]).unwrap();
        bm.write_block(0x0, &[9, 8, 7]).unwrap();
        a.start_send(0, DmaDescriptor::contiguous(0x0, 3));
        b.start_send(1, DmaDescriptor::contiguous(0x0, 3));
        a.start_recv(0, DmaDescriptor::contiguous(0x500, 3), &mut am)
            .unwrap();
        b.start_recv(1, DmaDescriptor::contiguous(0x500, 3), &mut bm)
            .unwrap();
        pump_pair(&mut a, &mut am, &mut b, &mut bm, 0, 1);
        assert_eq!(am.read_block(0x500, 3).unwrap(), vec![9, 8, 7]);
        assert_eq!(bm.read_block(0x500, 3).unwrap(), vec![1, 2, 3]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any even-count burst confined to one parity class — the
            /// exact family of errors the Hamming-distance-3 frame code
            /// cannot see — is caught by the end-to-end block checksum and
            /// healed by a whole-block replay, for every burst width and
            /// position and any payload.
            #[test]
            fn any_parity_evading_burst_is_healed_by_the_block_checksum(
                words in prop::collection::vec(any::<u64>(), 4..=4),
                seq in 0u64..4,
                first_bit in 0usize..64,
                pairs in 1usize..=16,
            ) {
                let (mut a, mut am) = trained();
                let (mut b, mut bm) = trained();
                am.write_block(0x1000, &words).unwrap();
                a.start_send_checked(0, DmaDescriptor::contiguous(0x1000, 4));
                b.start_recv_checked(1, DmaDescriptor::contiguous(0x2000, 4), &mut bm)
                    .unwrap();
                let mut corrupted = false;
                loop {
                    let mut progressed = false;
                    if let Some(mut msg) = a.tx_next(0, &mut am).unwrap() {
                        if let WireMsg::Data(wf) = &mut msg {
                            if !corrupted && wf.seq == seq {
                                // 2·pairs flips spaced two apart: same
                                // parity class, even count — invisible to
                                // the frame parity.
                                for k in 0..2 * pairs {
                                    wf.frame.corrupt_bit(8 + (first_bit + 2 * k) % 64);
                                }
                                prop_assert!(
                                    wf.frame.decode().is_ok(),
                                    "burst must evade the frame parity"
                                );
                                corrupted = true;
                            }
                        }
                        b.rx(1, msg, &mut bm).unwrap();
                        progressed = true;
                    }
                    if let Some(msg) = b.tx_next(1, &mut bm).unwrap() {
                        a.rx(0, msg, &mut am).unwrap();
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
                prop_assert!(corrupted);
                prop_assert!(a.send_complete(0));
                prop_assert!(b.recv_complete(1));
                prop_assert_eq!(bm.read_block(0x2000, 4).unwrap(), words);
                prop_assert_eq!(b.recv_unit(1).rejects(), 0);
                prop_assert_eq!(b.recv_unit(1).block_rejects(), 1);
                prop_assert_eq!(a.block_resends(0), 1);
                prop_assert_eq!(
                    a.send_unit(0).checksum(),
                    b.recv_unit(1).checksum()
                );
            }
        }
    }
}
