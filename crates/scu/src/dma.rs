//! SCU DMA engines with block-strided descriptors.
//!
//! §2.2: "The SCU's have DMA engines allowing block strided access to local
//! memory … the SCUs are told the address of the starting word of a
//! transfer and the SCU DMA engines handle the data from there." This
//! zero-copy path — the DMA reads the words straight out of the physics
//! arrays — is where QCDOC's low latency comes from.
//!
//! §3.3: "for repetitive transfers over the same link, the SCU's can store
//! DMA instructions internally, so that only a single write (start
//! transfer) is needed to start up to 24 communications" — modelled by
//! [`StoredInstructions`].

use serde::{Deserialize, Serialize};

/// Word size in bytes, fixed by the 64-bit transfer unit.
pub const WORD_BYTES: u64 = 8;

/// A block-strided DMA descriptor.
///
/// The engine walks `blocks` blocks of `block_words` consecutive 64-bit
/// words; successive blocks start `stride_words` apart. A face of a 4-D
/// local volume is exactly such a pattern.
///
/// ```
/// use qcdoc_scu::dma::DmaDescriptor;
///
/// // Gather every fourth word, three times: the shape of a lattice face.
/// let d = DmaDescriptor { start: 0, block_words: 1, stride_words: 4, blocks: 3 };
/// assert_eq!(d.addresses().collect::<Vec<_>>(), vec![0, 32, 64]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaDescriptor {
    /// Byte address of the first word.
    pub start: u64,
    /// Words per contiguous block.
    pub block_words: u32,
    /// Distance between block starts, in words (may exceed `block_words`).
    pub stride_words: u32,
    /// Number of blocks.
    pub blocks: u32,
}

impl DmaDescriptor {
    /// A simple contiguous transfer of `words` 64-bit words.
    pub fn contiguous(start: u64, words: u32) -> DmaDescriptor {
        DmaDescriptor {
            start,
            block_words: words,
            stride_words: words,
            blocks: 1,
        }
    }

    /// Total number of words the descriptor covers.
    pub fn total_words(&self) -> u64 {
        self.block_words as u64 * self.blocks as u64
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * WORD_BYTES
    }

    /// Byte address of word `i` in descriptor order.
    pub fn address_of(&self, i: u64) -> u64 {
        debug_assert!(i < self.total_words());
        let block = i / self.block_words as u64;
        let within = i % self.block_words as u64;
        self.start + (block * self.stride_words as u64 + within) * WORD_BYTES
    }

    /// Iterate over every word address in order.
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.total_words()).map(|i| self.address_of(i))
    }
}

/// A running DMA engine: a descriptor plus a cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    desc: DmaDescriptor,
    cursor: u64,
}

impl DmaEngine {
    /// Start an engine on a descriptor.
    pub fn start(desc: DmaDescriptor) -> DmaEngine {
        DmaEngine { desc, cursor: 0 }
    }

    /// The descriptor being walked.
    pub fn descriptor(&self) -> DmaDescriptor {
        self.desc
    }

    /// Address of the next word, or `None` when complete.
    pub fn peek(&self) -> Option<u64> {
        (self.cursor < self.desc.total_words()).then(|| self.desc.address_of(self.cursor))
    }

    /// Consume and return the next word address.
    pub fn next_address(&mut self) -> Option<u64> {
        let a = self.peek()?;
        self.cursor += 1;
        Some(a)
    }

    /// Words already transferred.
    pub fn transferred(&self) -> u64 {
        self.cursor
    }

    /// Words remaining.
    pub fn remaining(&self) -> u64 {
        self.desc.total_words() - self.cursor
    }

    /// Whether the transfer is complete.
    pub fn done(&self) -> bool {
        self.cursor >= self.desc.total_words()
    }
}

/// The SCU's internal store of DMA instructions: one send and one receive
/// slot per direction, restartable with a single "start transfer" write.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StoredInstructions {
    send: [Option<DmaDescriptor>; 12],
    recv: [Option<DmaDescriptor>; 12],
}

impl StoredInstructions {
    /// Store the send descriptor for a direction.
    pub fn store_send(&mut self, link: usize, desc: DmaDescriptor) {
        self.send[link] = Some(desc);
    }

    /// Store the receive descriptor for a direction.
    pub fn store_recv(&mut self, link: usize, desc: DmaDescriptor) {
        self.recv[link] = Some(desc);
    }

    /// The stored send descriptor, if any.
    pub fn send(&self, link: usize) -> Option<DmaDescriptor> {
        self.send[link]
    }

    /// The stored receive descriptor, if any.
    pub fn recv(&self, link: usize) -> Option<DmaDescriptor> {
        self.recv[link]
    }

    /// Number of stored instructions (≤ 24).
    pub fn stored_count(&self) -> usize {
        self.send.iter().flatten().count() + self.recv.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_addresses() {
        let d = DmaDescriptor::contiguous(0x1000, 4);
        let addrs: Vec<u64> = d.addresses().collect();
        assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010, 0x1018]);
    }

    #[test]
    fn strided_addresses_walk_blocks() {
        // 3 blocks of 2 words, stride 8 words: the pattern of a lattice
        // face gather.
        let d = DmaDescriptor {
            start: 0,
            block_words: 2,
            stride_words: 8,
            blocks: 3,
        };
        let addrs: Vec<u64> = d.addresses().collect();
        assert_eq!(addrs, vec![0, 8, 64, 72, 128, 136]);
        assert_eq!(d.total_words(), 6);
        assert_eq!(d.total_bytes(), 48);
    }

    #[test]
    fn engine_cursor_tracks_progress() {
        let d = DmaDescriptor::contiguous(0, 3);
        let mut e = DmaEngine::start(d);
        assert_eq!(e.remaining(), 3);
        assert_eq!(e.next_address(), Some(0));
        assert_eq!(e.next_address(), Some(8));
        assert_eq!(e.transferred(), 2);
        assert!(!e.done());
        assert_eq!(e.next_address(), Some(16));
        assert!(e.done());
        assert_eq!(e.next_address(), None);
    }

    #[test]
    fn stored_instructions_cap_24() {
        let mut s = StoredInstructions::default();
        let d = DmaDescriptor::contiguous(0, 1);
        for link in 0..12 {
            s.store_send(link, d);
            s.store_recv(link, d);
        }
        assert_eq!(s.stored_count(), 24);
        assert_eq!(s.send(3), Some(d));
        assert_eq!(s.recv(11), Some(d));
    }

    #[test]
    fn restored_descriptor_restarts_identical_engine() {
        // The "single write restarts the transfer" path: engines built from
        // the same stored descriptor walk identical addresses.
        let mut s = StoredInstructions::default();
        let d = DmaDescriptor {
            start: 0x40,
            block_words: 3,
            stride_words: 5,
            blocks: 2,
        };
        s.store_send(7, d);
        let a: Vec<u64> = DmaEngine::start(s.send(7).unwrap())
            .descriptor()
            .addresses()
            .collect();
        let b: Vec<u64> = DmaEngine::start(s.send(7).unwrap())
            .descriptor()
            .addresses()
            .collect();
        assert_eq!(a, b);
    }
}
